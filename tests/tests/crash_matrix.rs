//! Systematic fail-stop matrix: every crash pattern of up to n − 1
//! processors at every early crash time, for the three-processor protocols.
//!
//! The paper tolerates "fail/stop type errors of up to all but one of the
//! system processors"; survivors must decide, consistently and
//! nontrivially, no matter when the others die.

use cil_core::n_unbounded::NUnbounded;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::TwoProcessor;
use cil_sim::{CrashPlan, Protocol, RandomScheduler, Runner, Val};

fn crash_sweep<P: Protocol>(protocol: &P, inputs: &[Val], label: &str) {
    let n = protocol.processes();
    // Every non-empty proper subset of processors crashes.
    for mask in 1u32..(1 << n) - 1 {
        let victims: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        if victims.len() == n {
            continue;
        }
        // Stagger crash times over a few early offsets.
        for offset in [0u64, 1, 2, 5, 9] {
            let mut plan = CrashPlan::none();
            for (j, &pid) in victims.iter().enumerate() {
                plan = plan.crash(pid, offset + 2 * j as u64);
            }
            for seed in 0..5u64 {
                let out = Runner::new(protocol, inputs, RandomScheduler::new(seed))
                    .seed(seed.wrapping_mul(31) ^ u64::from(mask) ^ offset)
                    .crashes(plan.clone())
                    .max_steps(2_000_000)
                    .run();
                assert!(
                    out.consistent(),
                    "{label}: inconsistent, mask {mask:b} offset {offset} seed {seed}"
                );
                assert!(
                    out.nontrivial(),
                    "{label}: trivial, mask {mask:b} offset {offset} seed {seed}"
                );
                for pid in 0..n {
                    if !victims.contains(&pid) {
                        assert!(
                            out.decisions[pid].is_some(),
                            "{label}: survivor P{pid} stuck, mask {mask:b} offset {offset} seed {seed}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn two_processor_crash_matrix() {
    crash_sweep(&TwoProcessor::new(), &[Val::A, Val::B], "two-proc");
}

#[test]
fn three_unbounded_crash_matrix() {
    crash_sweep(
        &NUnbounded::three(),
        &[Val::A, Val::B, Val::A],
        "three-unbounded",
    );
}

#[test]
fn three_bounded_crash_matrix() {
    crash_sweep(
        &ThreeBounded::new(),
        &[Val::B, Val::A, Val::B],
        "three-bounded",
    );
}

#[test]
fn five_processor_crash_matrix_sampled() {
    // For n = 5 sweep only the all-but-one patterns (the paper's t = n − 1).
    let p = NUnbounded::new(5);
    let inputs: Vec<Val> = (0..5).map(|i| Val((i % 2) as u64)).collect();
    for survivor in 0..5usize {
        for seed in 0..10u64 {
            let mut plan = CrashPlan::none();
            let mut j = 0u64;
            for pid in 0..5 {
                if pid != survivor {
                    plan = plan.crash(pid, 1 + 2 * j);
                    j += 1;
                }
            }
            let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                .seed(seed ^ survivor as u64)
                .crashes(plan)
                .max_steps(5_000_000)
                .run();
            assert!(
                out.decisions[survivor].is_some(),
                "survivor {survivor} stuck"
            );
            assert!(out.consistent() && out.nontrivial());
        }
    }
}
