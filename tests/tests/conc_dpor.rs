//! Exhaustive DPOR exploration, end to end: the native explorer's
//! enumerated outcome sets must match the simulator's configuration graph
//! config-for-config, the partitioned parallel mode must be invariant in
//! `--jobs` for every built-in protocol, the planted mutant must be caught
//! deterministically with the golden solo-sprint minimal repro, and a
//! truncated capture must be rejected as a usage error (exit 2) — not
//! mistaken for a failed verification (exit 1).

use cil_cli::CliFailure;
use cil_conc::{
    classify, cross_validate, ddmin_schedule, explore, explore_with_codec, ControlledRun,
    DporConfig, RacyTwo, ReplaySchedule,
};
use cil_core::kvalued::KValued;
use cil_core::two::TwoProcessor;
use cil_core::KRegCodec;
use cil_mc::Explorer;
use cil_sim::{PackCodec, TrialOutcome, Val};
use proptest::prelude::*;

/// An exhaustive-pass config (no hunt prelude) at the given depth bound.
fn no_hunt(depth: u64) -> DporConfig {
    DporConfig {
        depth_bound: depth,
        hunt_preemptions: None,
        ..DporConfig::default()
    }
}

fn dispatch(tokens: &[&str]) -> Result<String, CliFailure> {
    cil_cli::dispatch_full(tokens.iter().map(|s| s.to_string()))
}

// ---------------------------------------------------------------------------
// Cross-validation against the simulator
// ---------------------------------------------------------------------------

#[test]
fn dpor_outcomes_match_the_simulator_for_the_two_processor_protocol() {
    let p = TwoProcessor::new();
    let inputs = [Val::A, Val::B];

    // Sleep-set-reduced pass: decision vectors, terminal configurations and
    // their depths must equal the simulator DP's, config-for-config.
    let reduced = explore(&p, &inputs, &no_hunt(8), None);
    assert!(reduced.exhaustive && reduced.violations == 0);
    let check = cross_validate(&p, &inputs, &PackCodec, &reduced).expect("reduced cross-check");
    assert_eq!(check.decision_vectors, reduced.decision_vectors.len());
    assert_eq!(check.terminal_configs, reduced.terminal_configs.len());

    // Naive pass: additionally the per-depth path counts, the truncated
    // count and the total execution count are checked exactly.
    let naive = explore(
        &p,
        &inputs,
        &DporConfig {
            naive: true,
            ..no_hunt(8)
        },
        None,
    );
    let check = cross_validate(&p, &inputs, &PackCodec, &naive).expect("naive cross-check");
    assert_eq!(check.sim_executions, Some(naive.executions));

    // Both enumerations agree with the BFS model checker's safety verdict.
    let report = Explorer::new(&p, &inputs).max_depth(8).run();
    assert!(report.safe());
    assert_eq!(naive.decision_vectors, reduced.decision_vectors);
    assert_eq!(naive.terminal_configs, reduced.terminal_configs);
}

#[test]
fn dpor_outcomes_match_the_simulator_for_kvalued_protocols() {
    for k in [2, 3] {
        let p = KValued::new(TwoProcessor::new(), k);
        let codec = KRegCodec::for_protocol(&p);
        let inputs = [Val::A, Val::B];
        let reduced = explore_with_codec(&p, &inputs, &codec, &no_hunt(6), None);
        assert!(reduced.exhaustive, "k={k}");
        assert_eq!(reduced.violations, 0, "k={k}");
        let check =
            cross_validate(&p, &inputs, &codec, &reduced).unwrap_or_else(|e| panic!("k={k}: {e}"));
        assert_eq!(check.decision_vectors, reduced.decision_vectors.len());
        assert_eq!(check.terminal_configs, reduced.terminal_configs.len());

        let naive = explore_with_codec(
            &p,
            &inputs,
            &codec,
            &DporConfig {
                naive: true,
                ..no_hunt(6)
            },
            None,
        );
        let check =
            cross_validate(&p, &inputs, &codec, &naive).unwrap_or_else(|e| panic!("k={k}: {e}"));
        assert_eq!(check.sim_executions, Some(naive.executions), "k={k}");
        assert_eq!(naive.decision_vectors, reduced.decision_vectors, "k={k}");
        assert_eq!(naive.terminal_configs, reduced.terminal_configs, "k={k}");
        assert!(
            reduced.executions < naive.executions,
            "k={k}: sleep sets must prune ({} vs {})",
            reduced.executions,
            naive.executions
        );
    }
}

#[test]
fn cli_cross_check_certifies_the_clean_protocol() {
    let out = dispatch(&[
        "conc",
        "explore",
        "two",
        "--inputs",
        "a,b",
        "--depth-bound",
        "8",
        "--cross-check",
    ])
    .expect("clean protocol explores to a certificate");
    assert!(out.contains("0 violations ✓ (certificate)"), "{out}");
    assert!(
        out.contains("cross-check vs the simulator configuration graph: OK"),
        "{out}"
    );
}

// ---------------------------------------------------------------------------
// Jobs-invariance of the partitioned parallel mode
// ---------------------------------------------------------------------------

#[test]
fn explore_is_jobs_invariant_for_every_builtin_protocol() {
    // (protocol spec, inputs) for all nine built-in conc protocol specs.
    let protocols: &[(&str, &str)] = &[
        ("two", "a,b"),
        ("fig2", "a,b,a"),
        ("fig2-literal", "a,b,a"),
        ("fig2-1w1r", "a,b,a"),
        ("fig3", "a,b,a"),
        ("naive", "a,b"),
        ("mutant:racy", "a,b"),
        ("det:always-adopt", "a,b"),
        ("kvalued:3", "a,b"),
    ];
    for (spec, inputs) in protocols {
        let run = |jobs: &str| {
            let r = dispatch(&[
                "conc",
                "explore",
                spec,
                "--inputs",
                inputs,
                "--depth-bound",
                "6",
                "--no-hunt",
                "--jobs",
                jobs,
            ]);
            // Violations exit via Audit with the full report as the
            // message; either way the report text is what must be invariant
            // (modulo the echoed jobs count).
            let text = match r {
                Ok(s) => s,
                Err(CliFailure::Audit(s)) => s,
                Err(CliFailure::Usage(e)) => panic!("{spec}: {e}"),
            };
            text.lines()
                .filter(|l| !l.starts_with("depth bound:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let baseline = run("1");
        assert!(baseline.contains("execution digest:"), "{spec}: {baseline}");
        for jobs in ["2", "8"] {
            assert_eq!(run(jobs), baseline, "{spec} diverges at --jobs {jobs}");
        }
    }
}

// ---------------------------------------------------------------------------
// Golden minimal repro for the planted mutant
// ---------------------------------------------------------------------------

#[test]
fn explore_catches_the_racy_mutant_with_the_golden_minimal_repro() {
    // Default config: the bounded-preemption hunt must find the bug on
    // every run (the acceptance bar is 64/64; a handful here keeps the
    // suite fast, the determinism is seeded-and-coinless by construction).
    let mut first: Option<String> = None;
    for _ in 0..8 {
        let err = dispatch(&["conc", "explore", "mutant:racy", "--inputs", "a,b"])
            .expect_err("the mutant must be caught");
        let CliFailure::Audit(report) = err else {
            panic!("expected an Audit failure, got {err:?}");
        };
        assert!(report.contains("VIOLATION (Inconsistent)"), "{report}");
        assert!(
            report.contains("schedule: [1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1]"),
            "ddmin must land on the 12-step solo sprint:\n{report}"
        );
        assert!(report.contains("still fails — true"), "{report}");
        match &first {
            None => first = Some(report),
            Some(f) => assert_eq!(&report, f, "explore must be deterministic"),
        }
    }
}

#[test]
fn library_hunt_violation_shrinks_to_the_solo_sprint() {
    let p = RacyTwo::default();
    let inputs = [Val::A, Val::B];
    let report = explore(&p, &inputs, &DporConfig::default(), None);
    assert!(report.violations >= 1);
    let v = &report.violation_samples[0];
    assert_eq!(v.kind, TrialOutcome::Inconsistent);
    let still_fails = |candidate: &[usize]| {
        let out = ControlledRun::new(&p, &inputs)
            .seed(0)
            .budget(report.depth_bound)
            .run(Box::new(ReplaySchedule::best_effort(candidate.to_vec())));
        classify(&out).outcome == TrialOutcome::Inconsistent
    };
    assert!(still_fails(&v.schedule), "{:?}", v.schedule);
    assert_eq!(ddmin_schedule(&v.schedule, still_fails), vec![1usize; 12]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any failing schedule variant shrinks to a schedule that still fails —
    /// and the shrunk run's *executed* schedule, replayed strictly, must
    /// reproduce the inconsistency step for step.
    #[test]
    fn shrunk_schedules_replay_to_failure_under_strict_replay(
        prefix in proptest::collection::vec(0usize..2, 0..8)
    ) {
        let p = RacyTwo::default();
        let inputs = [Val::A, Val::B];
        let run_best_effort = |sched: Vec<usize>| {
            ControlledRun::new(&p, &inputs)
                .seed(0)
                .budget(64)
                .run(Box::new(ReplaySchedule::best_effort(sched)))
        };
        let fails = |candidate: &[usize]| {
            classify(&run_best_effort(candidate.to_vec())).outcome == TrialOutcome::Inconsistent
        };
        // Perturb the known failing core with an arbitrary prefix; only
        // variants that still fail are interesting.
        let mut candidate = prefix;
        candidate.extend(std::iter::repeat_n(1usize, 12));
        prop_assume!(fails(&candidate));

        let minimal = ddmin_schedule(&candidate, fails);
        prop_assert!(fails(&minimal), "shrunk schedule must still fail: {minimal:?}");

        // Re-execute the shrunk schedule and strictly replay what actually
        // ran: same decisions, same inconsistency.
        let executed = run_best_effort(minimal.clone());
        let strict = ControlledRun::new(&p, &inputs)
            .seed(0)
            .budget(64)
            .run(Box::new(ReplaySchedule::strict(executed.schedule.clone())));
        prop_assert_eq!(
            classify(&strict).outcome,
            TrialOutcome::Inconsistent,
            "strict replay of {:?}",
            executed.schedule
        );
        prop_assert_eq!(strict.decisions, executed.decisions);
    }
}

// ---------------------------------------------------------------------------
// Exit-code contract for corrupt captures
// ---------------------------------------------------------------------------

#[test]
fn truncated_capture_exits_2_not_1() {
    let dir = std::env::temp_dir();
    let cap = dir.join("cil_conc_dpor_trunc_cap.jsonl");
    dispatch(&[
        "conc",
        "stress",
        "--protocol",
        "two",
        "--inputs",
        "a,b",
        "--trials",
        "4",
        "--trace-json",
        cap.to_str().unwrap(),
    ])
    .expect("stress runs");
    let body = std::fs::read_to_string(&cap).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert!(
        lines.len() > 6,
        "capture too small to truncate meaningfully"
    );

    // The intact capture verifies.
    let replay =
        |path: &std::path::Path| dispatch(&["conc", "replay", path.to_str().unwrap(), "--audit"]);
    replay(&cap).expect("intact capture replays");

    // Truncated at a line boundary: every remaining line is well-formed
    // JSON, so only the missing closing span_end betrays the damage. That
    // is a malformed input (exit 2), not an audit/replay verdict (exit 1).
    let trunc = dir.join("cil_conc_dpor_trunc_cap_cut.jsonl");
    std::fs::write(&trunc, lines[..lines.len() / 2].join("\n")).unwrap();
    let err = replay(&trunc).expect_err("truncated capture must be rejected");
    assert_eq!(err.exit_code(), 2, "got {err:?}");
    assert!(err.message().contains("truncated or corrupt"), "{err:?}");

    // Truncated mid-line: ditto.
    let cut = body.len() - 7;
    std::fs::write(&trunc, &body[..cut]).unwrap();
    let err = replay(&trunc).expect_err("mid-line truncation must be rejected");
    assert_eq!(err.exit_code(), 2, "got {err:?}");

    let _ = std::fs::remove_file(&cap);
    let _ = std::fs::remove_file(&trunc);
}
