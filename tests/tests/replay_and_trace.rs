//! Trace/replay integration: a recorded run can be replayed exactly from
//! its schedule (with the same coin seed), across crates — the sim's trace
//! machinery feeding its own scheduler.

use cil_core::n_unbounded::NUnbounded;
use cil_core::two::TwoProcessor;
use cil_sim::{FixedSchedule, RandomScheduler, Runner, Val};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn two_proc_replay_reproduces_everything(seed in any::<u64>(), sched in any::<u64>()) {
        let p = TwoProcessor::new();
        let original = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(sched))
            .seed(seed)
            .record_trace(true)
            .run();
        let schedule = original.trace.as_ref().unwrap().schedule();
        let replay = Runner::new(&p, &[Val::A, Val::B], FixedSchedule::new(schedule.clone()))
            .seed(seed)
            .record_trace(true)
            .run();
        prop_assert_eq!(&replay.trace.as_ref().unwrap().schedule(), &schedule);
        prop_assert_eq!(&replay.decisions, &original.decisions);
        prop_assert_eq!(&replay.steps, &original.steps);
        prop_assert_eq!(&replay.final_regs, &original.final_regs);
    }

    #[test]
    fn three_proc_replay_reproduces_decisions(seed in any::<u64>()) {
        let p = NUnbounded::three();
        let inputs = [Val::A, Val::B, Val::A];
        let original = Runner::new(&p, &inputs, RandomScheduler::new(seed))
            .seed(seed)
            .record_trace(true)
            .run();
        let schedule = original.trace.as_ref().unwrap().schedule();
        let replay = Runner::new(&p, &inputs, FixedSchedule::new(schedule))
            .seed(seed)
            .run();
        prop_assert_eq!(&replay.decisions, &original.decisions);
        prop_assert_eq!(replay.total_steps, original.total_steps);
    }

    #[test]
    fn trace_step_counts_match_outcome(seed in any::<u64>()) {
        let p = TwoProcessor::new();
        let out = Runner::new(&p, &[Val::B, Val::A], RandomScheduler::new(seed))
            .seed(seed)
            .record_trace(true)
            .run();
        let t = out.trace.as_ref().unwrap();
        prop_assert_eq!(t.len() as u64, out.total_steps);
        for pid in 0..2 {
            prop_assert_eq!(t.steps_of(pid) as u64, out.steps[pid]);
        }
    }
}

#[test]
fn paper_schedule_notation_round_trips() {
    // The paper writes schedules as lists like (2,3,3,2,1); our zero-based
    // FixedSchedule accepts exactly that shape.
    let p = NUnbounded::three();
    let inputs = [Val::A, Val::A, Val::B];
    let out = Runner::new(&p, &inputs, FixedSchedule::new(vec![1, 2, 2, 1, 0]))
        .seed(0)
        .record_trace(true)
        .max_steps(10_000)
        .run();
    let sched = out.trace.unwrap().schedule();
    assert_eq!(&sched[..5], &[1, 2, 2, 1, 0]);
}
