//! End-to-end pipeline tests: protocol → simulator → analysis, the same
//! dataflow the experiment harness uses, plus property tests of the
//! statistics against naive reference computations.

use cil_analysis::{linear_fit, wilson95, OnlineStats, Table, TailEstimator};
use cil_core::two::TwoProcessor;
use cil_sim::{RandomScheduler, Runner, StopWhen, Val};
use proptest::prelude::*;

#[test]
fn steps_pipeline_matches_paper_scale() {
    // Collect P0's step counts through the analysis crate and check the
    // end-to-end numbers land in the Theorem 7 regime.
    let p = TwoProcessor::new();
    let mut stats = OnlineStats::new();
    let mut tail = TailEstimator::new();
    for seed in 0..5_000u64 {
        let o = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(seed))
            .seed(seed)
            .stop_when(StopWhen::PidDecided(0))
            .run();
        stats.push(o.steps[0] as f64);
        tail.push(o.steps[0]);
    }
    assert!(
        stats.mean() >= 2.0 && stats.mean() <= 10.0,
        "mean {}",
        stats.mean()
    );
    // The empirical survival must respect the worst-case law (3/4)^((k-2)/2)
    // with sampling slack.
    assert_eq!(
        tail.violates_bound(
            |k| {
                if k <= 2 {
                    1.0
                } else {
                    0.75f64.powf((k as f64 - 2.0) / 2.0)
                }
            },
            1.10
        ),
        None
    );
    // And decay geometrically.
    let rate = tail.geometric_rate(1e-3).expect("enough mass");
    assert!(rate < 0.9, "rate {rate}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn online_stats_match_naive_reference(xs in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let s: OnlineStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn survival_is_monotone_and_normalized(xs in prop::collection::vec(0u64..50, 1..200)) {
        let t: TailEstimator = xs.iter().copied().collect();
        let curve = t.survival_curve();
        prop_assert!((curve[0] - 1.0).abs() < 1e-12);
        for w in curve.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
        prop_assert_eq!(*curve.last().unwrap(), 0.0);
        // pmf sums to 1.
        let total: f64 = (0..=t.max()).map(|k| t.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wilson_interval_brackets_the_proportion(s in 0u64..100, extra in 0u64..100) {
        let n = s + extra;
        prop_assume!(n > 0);
        let (lo, hi) = wilson95(s, n);
        let p = s as f64 / n as f64;
        prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn linear_fit_is_translation_equivariant(
        pts in prop::collection::vec((-100f64..100.0, -100f64..100.0), 3..30),
        dy in -50f64..50.0,
    ) {
        prop_assume!(pts.iter().any(|p| (p.0 - pts[0].0).abs() > 1e-3));
        if let Some((a1, b1)) = linear_fit(&pts) {
            let shifted: Vec<(f64, f64)> = pts.iter().map(|&(x, y)| (x, y + dy)).collect();
            let (a2, b2) = linear_fit(&shifted).unwrap();
            prop_assert!((a1 - a2).abs() < 1e-6 * (1.0 + a1.abs()));
            prop_assert!((b1 + dy - b2).abs() < 1e-5 * (1.0 + b1.abs() + dy.abs()));
        }
    }
}

#[test]
fn table_renders_experiment_style_output() {
    let mut t = Table::new(["adversary", "mean", "ci"]);
    t.row(["random", "5.97", "[5.93, 6.01]"]);
    t.row(["mdp-optimal", "10.0", "[9.95, 10.1]"]);
    let s = t.render();
    assert!(s.contains("mdp-optimal"));
    assert_eq!(s.lines().count(), 4);
}
