//! Cross-validation of the controlled native backend against the
//! simulator: the native random-walk scheduler and the simulator's
//! `random` adversary are the same process (uniform over runnable
//! processors), so the decided-by-`k` decay of Fig. 1 measured on real OS
//! threads must statistically match the simulated sweep — the empirical
//! half of the paper's "implementable in existing technology" claim.
//! Everything is seeded, so these comparisons are deterministic.

use cil_conc::{stress, StrategySpec, StressConfig};
use cil_core::two::TwoProcessor;
use cil_sim::{Protocol, RandomScheduler, Runner, SweepStats, TrialResult, TrialSweep, Val};

const TRIALS: u64 = 1500;
const ROOT_SEED: u64 = 2026;

/// Empirical survival: the fraction of trials whose total step count
/// exceeds `k` (undecided trials survive every `k`).
fn survival(stats: &SweepStats, k: u64) -> f64 {
    let decided_by_k: u64 = stats
        .decided_by_k
        .iter()
        .filter(|(steps, _)| **steps <= k)
        .map(|(_, count)| *count)
        .sum();
    1.0 - decided_by_k as f64 / stats.trials as f64
}

fn native_stats() -> SweepStats {
    let cfg = StressConfig {
        trials: TRIALS,
        root_seed: ROOT_SEED,
        budget: 4096,
        jobs: 0,
        strategy: StrategySpec::Random,
        max_failure_samples: 5,
    };
    stress(&TwoProcessor::new(), &[Val::A, Val::B], &cfg, None)
}

fn simulator_stats() -> SweepStats {
    let p = TwoProcessor::new();
    let inputs = [Val::A, Val::B];
    TrialSweep::new(TRIALS)
        .root_seed(ROOT_SEED)
        .jobs(0)
        .run(|trial| {
            let out = Runner::new(&p, &inputs, RandomScheduler::new(trial.seed))
                .seed(trial.seed)
                .max_steps(4096)
                .run();
            TrialResult::from_run(&out)
        })
}

#[test]
fn native_decided_by_k_decay_matches_the_simulator_sweep() {
    let native = native_stats();
    let sim = simulator_stats();

    assert_eq!(native.violations(), 0, "{:?}", native.failures);
    assert_eq!(sim.violations(), 0);
    assert_eq!(native.decided, TRIALS, "every native trial decides");
    assert_eq!(sim.decided, TRIALS);

    // Identical support floor: the protocol cannot decide earlier on real
    // threads than in the simulator — the minimum total step count to a
    // full decision is a property of the protocol, not the backend.
    assert_eq!(
        native.decided_by_k.keys().next(),
        sim.decided_by_k.keys().next(),
        "native {:?} vs sim {:?}",
        native.decided_by_k,
        sim.decided_by_k
    );

    // Pointwise-close empirical survival curves. The two samples use
    // different RNG streams, so allow a few standard errors
    // (sqrt(p·(1−p)/1500) ≤ 0.013).
    for k in 0..=48 {
        let n = survival(&native, k);
        let s = survival(&sim, k);
        assert!(
            (n - s).abs() <= 0.05,
            "k = {k}: native survival {n:.4} vs simulator {s:.4}"
        );
    }

    // Close means, and both consistent with the Corollary's worst-case
    // bound (E[steps of P0] ≤ 10 against the *optimal* adversary; the
    // uniform adversary must do no better).
    let nm = native.mean().expect("decided trials exist");
    let sm = sim.mean().expect("decided trials exist");
    assert!(
        (nm - sm).abs() / sm <= 0.10,
        "mean total steps: native {nm:.3} vs simulator {sm:.3}"
    );
    assert!(nm < 20.0, "uniform adversary mean {nm:.3} out of range");
}

#[test]
fn native_cross_validation_is_jobs_invariant() {
    let p = TwoProcessor::new();
    let cfg = |jobs| StressConfig {
        trials: 300,
        root_seed: 7,
        budget: 2048,
        jobs,
        strategy: StrategySpec::Pct { depth: 2 },
        max_failure_samples: 5,
    };
    let serial = stress(&p, &[Val::A, Val::B], &cfg(1), None);
    let parallel = stress(&p, &[Val::A, Val::B], &cfg(4), None);
    assert_eq!(serial.digest(), parallel.digest());
    assert_eq!(serial, parallel);
    assert_eq!(serial.violations(), 0);
    // PCT schedules are adversarial but Fig. 1 is wait-free against *any*
    // adversary: every trial must still decide within the budget.
    assert_eq!(serial.decided, 300, "{serial:?}");
    let _ = p.name();
}
