//! Tier-1 native stress: every built-in protocol family stays consistent
//! and nontrivial under the seeded random-walk controlled scheduler, and
//! every captured controlled trace passes the happens-before audit — i.e.
//! the real-atomics executions serialize as atomic register operations,
//! the paper's model realized "in existing technology".
//!
//! The seed matrix and budgets are fixed, so these runs are byte-for-byte
//! reproducible; the termination-free families (`naive`, the Theorem 4
//! deterministic victim) are covered too — they lose only termination,
//! never safety, so the violation count must still be zero.

use cil_audit::TraceAuditor;
use cil_conc::{rerun_trial_with_codec, stress_with_codec, StrategySpec, StressConfig};
use cil_core::deterministic::{DetRule, DetTwo};
use cil_core::kvalued::KValued;
use cil_core::n_unbounded::NUnbounded;
use cil_core::n_unbounded_1w1r::NUnbounded1W1R;
use cil_core::naive::Naive;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::TwoProcessor;
use cil_core::KRegCodec;
use cil_sim::{PackCodec, Protocol, Val, WordCodec};

/// The fixed seed matrix: three root seeds per protocol, each fanning out
/// into per-trial seeds via the sweep's `SplitMix64` jump.
const SEEDS: [u64; 3] = [1, 42, 0xC1A0];

/// Runs the seeded stress batches for one protocol and audits a captured
/// trace per root seed.
fn stress_and_audit<P, C>(protocol: &P, inputs: &[Val], codec: &C, trials: u64, budget: u64)
where
    P: Protocol + Sync,
    P::Reg: Send + Sync,
    C: WordCodec<P::Reg>,
{
    for &root_seed in &SEEDS {
        let cfg = StressConfig {
            trials,
            root_seed,
            budget,
            jobs: 0,
            strategy: StrategySpec::Random,
            max_failure_samples: 3,
        };
        let stats = stress_with_codec(protocol, inputs, codec, &cfg, None);
        assert_eq!(
            stats.violations(),
            0,
            "{} seed {root_seed}: {:?}",
            protocol.name(),
            stats.failures
        );
        assert_eq!(stats.trials, trials);

        // The captured controlled trace must serialize as atomic register
        // operations under the protocol's declared access sets.
        let (_, outcome) = rerun_trial_with_codec(protocol, inputs, codec, &cfg, 0);
        assert!(!outcome.events.is_empty(), "capture requested");
        let report = TraceAuditor::for_protocol(protocol)
            .audit_jsonl(&outcome.events_jsonl())
            .expect("well-formed capture");
        assert!(
            report.ok(),
            "{} seed {root_seed}:\n{}",
            protocol.name(),
            report.render()
        );
    }
}

const AB: [Val; 2] = [Val::A, Val::B];
const ABA: [Val; 3] = [Val::A, Val::B, Val::A];

#[test]
fn two_processor_native_stress_is_clean() {
    stress_and_audit(&TwoProcessor::new(), &AB, &PackCodec, 12, 2048);
}

#[test]
fn fig2_native_stress_is_clean() {
    stress_and_audit(&NUnbounded::three(), &ABA, &PackCodec, 12, 2048);
}

#[test]
fn fig2_literal_native_stress_is_clean() {
    stress_and_audit(&NUnbounded::literal_fig2(3), &ABA, &PackCodec, 12, 2048);
}

#[test]
fn fig2_1w1r_native_stress_is_clean() {
    stress_and_audit(&NUnbounded1W1R::three(), &ABA, &PackCodec, 12, 2048);
}

#[test]
fn fig3_native_stress_is_clean() {
    stress_and_audit(&ThreeBounded::new(), &ABA, &PackCodec, 12, 2048);
}

#[test]
fn naive_native_stress_is_safe_despite_livelock() {
    // Naive may never terminate; runs cut off at the budget must still be
    // consistent and nontrivial on whatever was decided.
    stress_and_audit(&Naive::new(3), &ABA, &PackCodec, 8, 1024);
}

#[test]
fn theorem4_victim_native_stress_is_safe() {
    // The deterministic victim loses only termination (Theorem 4), never
    // safety.
    stress_and_audit(&DetTwo::new(DetRule::AlwaysAdopt), &AB, &PackCodec, 8, 1024);
}

#[test]
fn n4_native_stress_is_clean() {
    stress_and_audit(
        &NUnbounded::new(4),
        &[Val::A, Val::B, Val::A, Val::B],
        &PackCodec,
        12,
        2048,
    );
}

#[test]
fn kvalued_native_stress_is_clean() {
    let p = KValued::new(TwoProcessor::new(), 4);
    let codec = KRegCodec::for_protocol(&p);
    stress_and_audit(&p, &[Val(0), Val(3)], &codec, 12, 2048);
}
