//! Determinism contract of the parallel trial sweep.
//!
//! A sweep's statistics are a pure function of `(root_seed, trials)` and
//! the trial closure — byte-identical (`SweepStats::digest`) no matter how
//! many workers ran it — and every retained failure sample replays
//! bit-for-bit from its trial index alone.

use cil_core::n_unbounded::NUnbounded;
use cil_core::three_bounded::{BoundedOptions, ThreeBounded};
use cil_sim::{RandomScheduler, Runner, SweepStats, Trial, TrialResult, TrialSweep, Val};

fn fig2_trial(p: &NUnbounded, inputs: &[Val], trial: Trial) -> TrialResult {
    // New-style seeding: everything derives from the sweep's root seed
    // through `trial.seed`.
    let out = Runner::new(p, inputs, RandomScheduler::new(trial.seed))
        .seed(trial.seed)
        .max_steps(200_000)
        .run();
    TrialResult::from_run(&out)
}

#[test]
fn sweep_stats_are_byte_identical_across_worker_counts() {
    let p = NUnbounded::three();
    let inputs = [Val::A, Val::B, Val::A];
    let base = TrialSweep::new(400).root_seed(2024);
    let serial = base.clone().jobs(1).run(|t| fig2_trial(&p, &inputs, t));
    assert_eq!(serial.trials, 400);
    assert_eq!(serial.decided, 400, "faithful Fig. 2 always decides");
    assert_eq!(serial.violations(), 0);
    for jobs in [2, 8] {
        let par = base.clone().jobs(jobs).run(|t| fig2_trial(&p, &inputs, t));
        assert_eq!(serial, par, "jobs = {jobs}");
        assert_eq!(serial.digest(), par.digest(), "jobs = {jobs}");
    }
}

#[test]
fn different_root_seeds_give_different_trial_randomness() {
    let p = NUnbounded::three();
    let inputs = [Val::A, Val::B, Val::A];
    let a = TrialSweep::new(200)
        .root_seed(1)
        .run(|t| fig2_trial(&p, &inputs, t));
    let b = TrialSweep::new(200)
        .root_seed(2)
        .run(|t| fig2_trial(&p, &inputs, t));
    assert_ne!(a.digest(), b.digest());
    assert_eq!(a.violations() + b.violations(), 0);
}

/// The Fig. 3 variant with the "2 steps apart" decision gap shrunk to 1 —
/// EXP-10 shows it violates consistency within a few hundred random-schedule
/// runs. Seeds follow the historical convention (`trial.index` is the run
/// seed), so the sweep reproduces the serial experiment loop exactly.
fn gap1_sweep(jobs: usize) -> SweepStats {
    let p = ThreeBounded::with_options(BoundedOptions {
        decide_gap: 1,
        ..BoundedOptions::default()
    });
    let inputs = [Val::A, Val::B, Val::A];
    TrialSweep::new(600).jobs(jobs).run(|trial| {
        let seed = trial.index;
        let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
            .seed(seed ^ 0xAB1A7E)
            .max_steps(200_000)
            .record_trace(true)
            .run();
        TrialResult::from_run(&out)
    })
}

#[test]
fn broken_protocol_failures_replay_identically_at_any_worker_count() {
    let serial = gap1_sweep(1);
    assert!(
        serial.violations() >= 1,
        "gap-1 Fig. 3 should violate consistency within 600 runs"
    );
    assert!(!serial.failures.is_empty());
    for jobs in [2, 8] {
        let par = gap1_sweep(jobs);
        assert_eq!(serial, par, "jobs = {jobs}");
        assert_eq!(serial.digest(), par.digest(), "jobs = {jobs}");
    }

    // Replay every retained failure from its trial index alone: the re-run
    // must fail the same way with the exact same schedule.
    let p = ThreeBounded::with_options(BoundedOptions {
        decide_gap: 1,
        ..BoundedOptions::default()
    });
    let inputs = [Val::A, Val::B, Val::A];
    for f in &serial.failures {
        let out = Runner::new(&p, &inputs, RandomScheduler::new(f.trial))
            .seed(f.trial ^ 0xAB1A7E)
            .max_steps(200_000)
            .record_trace(true)
            .run();
        assert!(
            !out.consistent() || !out.nontrivial(),
            "trial {} no longer fails on replay",
            f.trial
        );
        let replayed = out.trace.expect("trace was recorded").schedule();
        assert_eq!(
            Some(&replayed),
            f.schedule.as_ref(),
            "trial {} replayed a different schedule",
            f.trial
        );
    }
}
