//! Integration tests for the telemetry export surface and the `cil
//! report` offline analyzer: default `--metrics-out` exports (JSON and
//! OpenMetrics) and `cil report` output must be byte-identical at any
//! `--jobs` for a fixed root seed; `--timings` is an explicit opt-in that
//! requires `--metrics-out`; capture-mode reports are deterministic; and a
//! merge shape mismatch is a usage failure (exit 2) naming the metric.

use cil_cli::CliFailure;
use std::path::PathBuf;

fn dispatch(line: &str) -> Result<String, String> {
    cil_cli::dispatch(line.split_whitespace().map(String::from))
}

fn dispatch_full(line: &str) -> Result<String, CliFailure> {
    cil_cli::dispatch_full(line.split_whitespace().map(String::from))
}

/// A per-process temp path; tests clean up behind themselves.
fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cil_report_{}_{name}", std::process::id()))
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Jobs-invariance of the default exports
// ---------------------------------------------------------------------------

/// The acceptance bar: for a fixed root seed, the default (no `--timings`)
/// metrics export is byte-identical at any `--jobs`, in both formats, for
/// a sweep and for DPOR exploration — and `cil report` over those
/// snapshots renders identically too.
#[test]
fn metrics_exports_are_byte_identical_across_jobs() {
    for (tag, cmd) in [
        (
            "sweep",
            "sweep --protocol two --inputs a,b --trials 60 --seed 9",
        ),
        (
            "explore",
            "conc explore --protocol two --inputs a,b --depth-bound 8",
        ),
    ] {
        let mut exports = Vec::new();
        for jobs in [1usize, 4] {
            let json = tmp(&format!("{tag}_{jobs}.json"));
            let om = tmp(&format!("{tag}_{jobs}.om"));
            dispatch(&format!(
                "{cmd} --jobs {jobs} --metrics-out {}",
                json.display()
            ))
            .unwrap();
            dispatch(&format!(
                "{cmd} --jobs {jobs} --metrics-out {} --metrics-format openmetrics",
                om.display()
            ))
            .unwrap();
            // The report echoes the snapshot path in its header line; strip
            // it so the comparison covers only the analyzed content.
            let report = dispatch(&format!("report {}", json.display())).unwrap();
            let body = report.split_once('\n').map(|(_, b)| b.to_string()).unwrap();
            exports.push((read(&json), read(&om), body));
            std::fs::remove_file(&json).ok();
            std::fs::remove_file(&om).ok();
        }
        assert_eq!(exports[0].0, exports[1].0, "{tag}: JSON differs by --jobs");
        assert_eq!(
            exports[0].1, exports[1].1,
            "{tag}: OpenMetrics differs by --jobs"
        );
        assert_eq!(
            exports[0].2, exports[1].2,
            "{tag}: report differs by --jobs"
        );
    }
}

/// Golden pin of the OpenMetrics rendering for a small fixed sweep: the
/// deterministic counters and the decided-by-k histogram must appear with
/// the documented `_total` / `le` conventions and the `# EOF` trailer.
#[test]
fn openmetrics_export_has_the_documented_shape() {
    let om = tmp("golden.om");
    dispatch(&format!(
        "sweep --protocol two --inputs a,b --trials 25 --seed 3 --metrics-out {} --metrics-format openmetrics",
        om.display()
    ))
    .unwrap();
    let text = read(&om);
    std::fs::remove_file(&om).ok();
    assert!(
        text.contains("# TYPE sweep_decided counter"),
        "missing counter TYPE line:\n{text}"
    );
    assert!(
        text.contains("sweep_decided_total 25"),
        "missing decided total:\n{text}"
    );
    assert!(
        text.contains("# TYPE sweep_decided_by_k histogram"),
        "missing histogram TYPE line:\n{text}"
    );
    assert!(text.contains("le=\"+Inf\""), "missing +Inf bucket:\n{text}");
    assert!(text.ends_with("# EOF\n"), "missing EOF trailer:\n{text}");
}

// ---------------------------------------------------------------------------
// Capture-mode report
// ---------------------------------------------------------------------------

/// `cil report` over a `--trace-json` capture is a pure function of the
/// capture: per-processor tables, decided-by-k, and the event-weighted
/// span tree all render deterministically, and `--flame` emits folded
/// stacks.
#[test]
fn capture_report_is_deterministic_and_flames() {
    let cap = tmp("capture.jsonl");
    dispatch(&format!(
        "run --protocol two --inputs a,b --seed 5 --trace-json {}",
        cap.display()
    ))
    .unwrap();
    let a = dispatch(&format!("report {}", cap.display())).unwrap();
    let b = dispatch(&format!("report {}", cap.display())).unwrap();
    assert_eq!(a, b);
    assert!(
        a.contains("processor  reads  writes"),
        "missing op tables:\n{a}"
    );
    assert!(a.contains("decided"), "missing decision section:\n{a}");
    let flame = dispatch(&format!("report {} --flame", cap.display())).unwrap();
    for line in flame.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("folded line");
        assert!(!stack.is_empty());
        weight.parse::<u64>().expect("numeric weight");
    }
    // Captures are not mergeable snapshots.
    let err = dispatch_full(&format!(
        "report {} --merge {}",
        cap.display(),
        cap.display()
    ))
    .unwrap_err();
    assert_eq!(err.exit_code(), 2);
    std::fs::remove_file(&cap).ok();
}

// ---------------------------------------------------------------------------
// Merge semantics and failure modes
// ---------------------------------------------------------------------------

/// Merging two shards of the same sweep doubles the counters; merging
/// shape-incompatible snapshots is a usage failure (exit 2) whose message
/// names the offending metric and file.
#[test]
fn report_merge_adds_and_mismatch_exits_2() {
    let a = tmp("shard_a.json");
    let b = tmp("shard_b.json");
    dispatch(&format!(
        "sweep --protocol two --inputs a,b --trials 30 --seed 4 --metrics-out {}",
        a.display()
    ))
    .unwrap();
    dispatch(&format!(
        "sweep --protocol two --inputs a,b --trials 30 --seed 4 --metrics-out {}",
        b.display()
    ))
    .unwrap();
    let merged = dispatch(&format!("report {} --merge {}", a.display(), b.display())).unwrap();
    assert!(
        merged.contains("sweep.decided = 60"),
        "counters did not add:\n{merged}"
    );

    // A shape-incompatible snapshot: same metric name, different width.
    let bad = tmp("shard_bad.json");
    let mangled = read(&a).replace("\"width\":1", "\"width\":2");
    assert_ne!(mangled, read(&a), "fixture must actually change the width");
    std::fs::write(&bad, mangled).unwrap();
    let err =
        dispatch_full(&format!("report {} --merge {}", a.display(), bad.display())).unwrap_err();
    assert_eq!(err.exit_code(), 2, "shape mismatch must be a usage failure");
    assert!(
        err.message().contains("sweep.decided_by_k") && err.message().contains("width"),
        "error must name the metric: {}",
        err.message()
    );
    for f in [&a, &b, &bad] {
        std::fs::remove_file(f).ok();
    }
}

// ---------------------------------------------------------------------------
// --timings opt-in
// ---------------------------------------------------------------------------

/// `--timings` without `--metrics-out` is rejected (wall-clock data has
/// nowhere to go), and with it the export gains span and latency sections
/// while the run's stdout stays unchanged.
#[test]
fn timings_is_an_explicit_opt_in() {
    let err = dispatch("sweep --protocol two --inputs a,b --trials 5 --timings").unwrap_err();
    assert!(err.contains("--metrics-out"), "{err}");

    let out = tmp("timed.json");
    let plain = dispatch("sweep --protocol two --inputs a,b --trials 20 --seed 2").unwrap();
    let timed = dispatch(&format!(
        "sweep --protocol two --inputs a,b --trials 20 --seed 2 --metrics-out {} --timings",
        out.display()
    ))
    .unwrap();
    assert_eq!(plain, timed, "--timings must not perturb the run output");
    let text = read(&out);
    assert!(
        text.contains("\"sweep.trial_ns\""),
        "missing trial latency histogram:\n{text}"
    );
    assert!(
        text.contains("\"sweep/trial\""),
        "missing span tree:\n{text}"
    );
    std::fs::remove_file(&out).ok();
}
