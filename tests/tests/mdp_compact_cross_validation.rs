//! Cross-validation between the dense MDP solver (`cil_mc::mdp`) and the
//! hash-consed, symmetry-reduced compact backend (`cil_mc::compact`).
//!
//! The compact backend must be an *observation-preserving* quotient: same
//! worst-case expected steps for every objective, same survival curves,
//! and a policy that is still optimal when scored against the dense value
//! function. Protocols with infinite reachable spaces (the paper's §5/§6
//! families) are compared under the same BFS depth bound on both sides —
//! the truncation disciplines are defined to match exactly.

use cil_core::deterministic::{DetRule, DetTwo};
use cil_core::kvalued::KValued;
use cil_core::n_unbounded::NUnbounded;
use cil_core::n_unbounded_1w1r::NUnbounded1W1R;
use cil_core::naive::Naive;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::TwoProcessor;
use cil_mc::config::{successors, Config};
use cil_mc::mdp::{MdpSolver, Objective};
use cil_mc::{CompactMdp, CompactOptions, Symmetric};
use cil_sim::{Runner, StopWhen, Val};
use std::collections::HashSet;

const VAL_TOL: f64 = 1e-9;
const CURVE_TOL: f64 = 1e-12;
const KMAX: usize = 12;

fn opts(depth: Option<usize>, target: Option<usize>) -> CompactOptions {
    CompactOptions {
        max_depth: depth,
        target,
        ..CompactOptions::default()
    }
}

/// Builds both backends (optionally depth-bounded) and compares expected
/// steps under every objective and the survival curve of every processor.
///
/// `compare_steps: false` skips the expected-steps comparisons for
/// protocols whose truncated graph still contains undecided cycles (the
/// naive protocol): there the fixpoint diverges, and the dense
/// Gauss–Seidel and compact Jacobi sweeps blow up at different rates.
/// Survival curves are bounded in [0, 1] and stay well-defined.
fn assert_backends_agree<P: Symmetric>(
    name: &str,
    p: &P,
    inputs: &[Val],
    depth: Option<usize>,
    compare_steps: bool,
) {
    let dense = match depth {
        Some(d) => MdpSolver::build_bounded(p, inputs, 2_000_000, d),
        None => MdpSolver::build(p, inputs, 2_000_000),
    };
    let compact_any = CompactMdp::build(p, inputs, &opts(depth, None)).unwrap();
    assert!(
        compact_any.size() <= dense.size(),
        "{name}: quotient larger than the dense space"
    );
    if compare_steps {
        let dt = dense.expected_steps(p, Objective::TotalSteps, 1e-13, 1_000_000);
        let ct = compact_any.expected_steps(Objective::TotalSteps, 1e-13, 1_000_000, 1);
        assert!(
            (dt.value - ct.value).abs() <= VAL_TOL,
            "{name} TotalSteps: dense {} vs compact {}",
            dt.value,
            ct.value
        );
    }
    for t in 0..p.processes() {
        let compact_t = CompactMdp::build(p, inputs, &opts(depth, Some(t))).unwrap();
        if compare_steps {
            let ds = dense.expected_steps(p, Objective::StepsOf(t), 1e-13, 1_000_000);
            let cs = compact_t.expected_steps(Objective::StepsOf(t), 1e-13, 1_000_000, 1);
            assert!(
                (ds.value - cs.value).abs() <= VAL_TOL,
                "{name} StepsOf({t}): dense {} vs compact {}",
                ds.value,
                cs.value
            );
        }
        let dcurve = dense.survival(p, t, KMAX, 1e-14, 1_000_000);
        let ccurve = compact_t.survival(t, KMAX, 1e-14, 1_000_000, 1);
        assert_eq!(dcurve.len(), ccurve.len(), "{name}: curve lengths");
        for (k, (a, b)) in dcurve.iter().zip(&ccurve).enumerate() {
            assert!(
                (a - b).abs() <= CURVE_TOL,
                "{name} survival[{k}] of P{t}: dense {a} vs compact {b}"
            );
        }
    }
}

#[test]
fn finite_space_protocols_agree_between_backends() {
    assert_backends_agree(
        "two(a,b)",
        &TwoProcessor::new(),
        &[Val::A, Val::B],
        None,
        true,
    );
    assert_backends_agree(
        "two(a,a)",
        &TwoProcessor::new(),
        &[Val::A, Val::A],
        None,
        true,
    );
    assert_backends_agree(
        "kvalued:4",
        &KValued::new(TwoProcessor::new(), 4),
        &[Val(0), Val(3)],
        None,
        true,
    );
}

#[test]
fn deterministic_victim_agrees_under_a_depth_bound() {
    // Theorem 4 keeps deterministic victims undecided forever, so the
    // unbounded expected-steps fixpoint diverges; a depth bound makes the
    // comparison well-defined on both sides.
    assert_backends_agree(
        "det:always-adopt",
        &DetTwo::new(DetRule::AlwaysAdopt),
        &[Val::A, Val::B],
        Some(8),
        true,
    );
}

#[test]
fn infinite_space_protocols_agree_under_a_depth_bound() {
    assert_backends_agree(
        "fig2",
        &NUnbounded::three(),
        &[Val::A, Val::B, Val::A],
        Some(6),
        true,
    );
    assert_backends_agree(
        "fig2-literal",
        &NUnbounded::literal_fig2(3),
        &[Val::A, Val::B, Val::A],
        Some(6),
        true,
    );
    assert_backends_agree(
        "fig2-1w1r",
        &NUnbounded1W1R::three(),
        &[Val::A, Val::B, Val::A],
        Some(6),
        true,
    );
    assert_backends_agree(
        "fig3",
        &ThreeBounded::new(),
        &[Val::A, Val::B, Val::A],
        Some(6),
        true,
    );
    assert_backends_agree(
        "naive",
        &Naive::new(3),
        &[Val::A, Val::B, Val::A],
        Some(7),
        false,
    );
    assert_backends_agree(
        "n:4",
        &NUnbounded::new(4),
        &[Val::A, Val::B, Val::A, Val::B],
        Some(5),
        true,
    );
}

#[test]
fn value_iteration_is_jobs_invariant_to_the_bit() {
    let p = KValued::new(TwoProcessor::new(), 4);
    let inputs = [Val(0), Val(3)];
    let mdp = CompactMdp::build(&p, &inputs, &opts(None, None)).unwrap();
    let s1 = mdp.expected_steps(Objective::TotalSteps, 1e-13, 1_000_000, 1);
    let s8 = mdp.expected_steps(Objective::TotalSteps, 1e-13, 1_000_000, 8);
    assert_eq!(s1.iterations, s8.iterations);
    assert_eq!(s1.policy, s8.policy);
    for (i, (a, b)) in s1.values.iter().zip(&s8.values).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "value of class {i}");
    }
    let t = CompactMdp::build(&p, &inputs, &opts(None, Some(0))).unwrap();
    let c1 = t.survival(0, KMAX, 1e-13, 1_000_000, 1);
    let c8 = t.survival(0, KMAX, 1e-13, 1_000_000, 8);
    for (k, (a, b)) in c1.iter().zip(&c8).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "survival[{k}]");
    }
}

#[test]
fn compact_policy_is_optimal_under_dense_values() {
    // Gap-aware policy check: at every dense-reachable configuration the
    // compact policy's scheduling choice must achieve (within 1e-9) the
    // best one-step lookahead value computed from the *dense* solution.
    // This is stronger than comparing policies pointwise — distinct optimal
    // moves are fine, suboptimal ones are not.
    let p = KValued::new(TwoProcessor::new(), 4);
    let inputs = [Val(0), Val(3)];
    let dense = MdpSolver::build(&p, &inputs, 2_000_000);
    let dsolve = dense.expected_steps(&p, Objective::TotalSteps, 1e-13, 1_000_000);
    let compact = CompactMdp::build(&p, &inputs, &opts(None, None)).unwrap();
    let csolve = compact.expected_steps(Objective::TotalSteps, 1e-13, 1_000_000, 1);

    let mut seen: HashSet<Config<KValued<TwoProcessor>>> = HashSet::new();
    let mut queue = vec![Config::initial(&p, &inputs)];
    let mut checked = 0usize;
    while let Some(cfg) = queue.pop() {
        if !seen.insert(cfg.clone()) {
            continue;
        }
        let eligible = cfg.eligible(&p);
        if !eligible.is_empty() {
            let q = |pid: usize| -> f64 {
                1.0 + successors(&p, &cfg, pid)
                    .into_iter()
                    .map(|(pr, succ)| pr * dsolve.values[dense.find(&succ).unwrap()])
                    .sum::<f64>()
            };
            let best = eligible
                .iter()
                .map(|&pid| q(pid))
                .fold(f64::NEG_INFINITY, f64::max);
            let chosen = compact
                .decide_config(&p, &cfg, &csolve.policy)
                .expect("reachable, non-absorbing configuration has a policy move");
            assert!(
                eligible.contains(&chosen),
                "policy schedules ineligible P{chosen}"
            );
            assert!(
                q(chosen) >= best - VAL_TOL,
                "suboptimal move P{chosen}: Q {} vs best {best}",
                q(chosen)
            );
            checked += 1;
        }
        for pid in eligible {
            for (_, succ) in successors(&p, &cfg, pid) {
                if !seen.contains(&succ) {
                    queue.push(succ);
                }
            }
        }
    }
    assert!(checked > 50, "walked only {checked} configurations");
}

#[test]
fn compact_policy_adversary_reproduces_the_exact_optimum_in_monte_carlo() {
    let p = TwoProcessor::new();
    let inputs = [Val::A, Val::B];
    let mdp = CompactMdp::build(&p, &inputs, &opts(None, Some(1))).unwrap();
    let solve = mdp.expected_steps(Objective::StepsOf(1), 1e-12, 100_000, 0);
    let runs = 30_000u64;
    let mut total = 0u64;
    for seed in 0..runs {
        let out = Runner::new(&p, &inputs, mdp.policy_adversary(&p, &solve))
            .seed(seed)
            .stop_when(StopWhen::PidDecided(1))
            .max_steps(100_000)
            .run();
        total += out.steps[1];
    }
    let mean = total as f64 / runs as f64;
    assert!(
        (mean - solve.value).abs() < 0.3,
        "MC mean {mean} vs exact optimum {}",
        solve.value
    );
}

#[test]
fn two_survival_curve_is_exactly_the_corollary_geometric_decay() {
    // P0 cannot decide before its fourth own step; from there the
    // worst-case survival decays by a factor 3/4 every second step:
    // curve[k] = (3/4)^⌊(k-2)/2⌋ for k >= 2 (Corollary of Theorem 7).
    let p = TwoProcessor::new();
    let mdp = CompactMdp::build(&p, &[Val::A, Val::B], &opts(None, Some(0))).unwrap();
    let curve = mdp.survival(0, 16, 1e-14, 1_000_000, 1);
    assert_eq!(curve[0], 1.0);
    assert_eq!(curve[1], 1.0);
    for (k, v) in curve.iter().enumerate().skip(2) {
        let expect = 0.75f64.powi(((k - 2) / 2) as i32);
        assert!(
            (v - expect).abs() <= CURVE_TOL,
            "survival[{k}] = {v}, expected {expect}"
        );
    }
}
