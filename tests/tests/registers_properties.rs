//! Property-based tests of the register substrate against simple reference
//! models, plus packing round-trips across crates.

use cil_core::n_unbounded::NReg;
use cil_core::n_unbounded_1w1r::NUnbounded1W1R;
use cil_core::three_bounded::register_alphabet;
use cil_registers::linearize::{is_linearizable, HistOp};
use cil_registers::{
    AccessError, HwRegisterFile, Packable, Pid, ReaderSet, RegId, RegisterSpec, SharedMemory,
};
use cil_sim::{
    Op, Protocol, RandomScheduler, Runner, Trial, TrialOutcome, TrialResult, TrialSweep, Val,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    #[allow(clippy::explicit_counter_loop)]
    fn shared_memory_behaves_like_a_vec(ops in prop::collection::vec((0usize..4, any::<bool>(), any::<u8>()), 0..64)) {
        // Model: 4 registers, everyone reads, register i owned by P(i).
        let specs: Vec<RegisterSpec<u8>> = (0..4)
            .map(|i| RegisterSpec::new(RegId(i), format!("r{i}"), Pid(i), ReaderSet::All, 0))
            .collect();
        let mut mem = SharedMemory::new(specs).unwrap();
        let mut model = [0u8; 4];
        let mut expected_ops = 0u64;
        for (reg, is_write, v) in ops {
            if is_write {
                let prev = mem.write(Pid(reg), RegId(reg), v).unwrap();
                prop_assert_eq!(prev, model[reg]);
                model[reg] = v;
            } else {
                let got = *mem.read(Pid((reg + 1) % 4), RegId(reg)).unwrap();
                prop_assert_eq!(got, model[reg]);
            }
            expected_ops += 1;
            prop_assert_eq!(mem.op_count(), expected_ops);
        }
        prop_assert_eq!(mem.snapshot(), &model[..]);
    }

    #[test]
    fn wrong_writer_always_rejected(pid in 0usize..4, reg in 0usize..4, v in any::<u8>()) {
        let specs: Vec<RegisterSpec<u8>> = (0..4)
            .map(|i| RegisterSpec::new(RegId(i), format!("r{i}"), Pid(i), ReaderSet::All, 0))
            .collect();
        let mut mem = SharedMemory::new(specs).unwrap();
        let result = mem.write(Pid(pid), RegId(reg), v);
        prop_assert_eq!(result.is_ok(), pid == reg);
    }

    #[test]
    fn sequential_histories_are_always_linearizable(values in prop::collection::vec((any::<bool>(), 0usize..8), 1..20)) {
        // Build a strictly sequential history; reads return the model value.
        let mut t = 0u64;
        let mut cur = 0usize;
        let mut h = Vec::new();
        for (is_write, v) in values {
            if is_write {
                h.push(HistOp::write(t, t + 1, v));
                cur = v;
            } else {
                h.push(HistOp::read(t, t + 1, cur));
            }
            t += 2;
        }
        prop_assert!(is_linearizable(0, &h));
    }

    #[test]
    fn sequential_history_with_one_wrong_read_is_rejected(n in 1usize..10, wrong in 0usize..10) {
        prop_assume!(wrong < n);
        let mut h = Vec::new();
        let mut t = 0u64;
        for i in 0..n {
            h.push(HistOp::write(t, t + 1, i + 1));
            t += 2;
            // Read back what was just written, except one poisoned read.
            let ret = if i == wrong { 7777 } else { i + 1 };
            h.push(HistOp::read(t, t + 1, ret));
            t += 2;
        }
        prop_assert!(!is_linearizable(0, &h));
    }

    #[test]
    fn val_packing_round_trips(v in any::<u64>()) {
        prop_assert_eq!(Val::unpack(Val(v).pack()), Val(v));
    }

    #[test]
    fn option_val_packing_round_trips(v in proptest::option::of(0u64..u64::MAX - 1)) {
        let x = v.map(Val);
        prop_assert_eq!(Option::<Val>::unpack(x.pack()), x);
    }

    #[test]
    fn nreg_packing_round_trips(pref in proptest::option::of(0u64..(1 << 15)), num in 0u64..(1 << 48)) {
        let r = NReg { pref: pref.map(Val), num };
        prop_assert_eq!(NReg::unpack(r.pack()), r);
    }

    #[test]
    fn bool_packing_round_trips(b in any::<bool>()) {
        prop_assert_eq!(bool::unpack(b.pack()), b);
        prop_assert!(b.pack() <= 1, "bool must fit a 1-bit register");
    }

    #[test]
    fn max_word_matches_declared_width(width in 1u32..=64) {
        let spec = RegisterSpec::new(RegId(0), "r", Pid(0), ReaderSet::All, 0u64)
            .with_width(width);
        let max = spec.max_word();
        if width == 64 {
            prop_assert_eq!(max, u64::MAX);
        } else {
            prop_assert_eq!(max, (1u64 << width) - 1);
            // The first word past the boundary no longer fits.
            prop_assert!(max + 1 > max);
        }
        // Widths are monotone: a wider register admits every narrower word.
        if width < 64 {
            let wider = RegisterSpec::new(RegId(0), "r", Pid(0), ReaderSet::All, 0u64)
                .with_width(width + 1);
            prop_assert!(wider.max_word() > max);
        }
    }

    #[test]
    fn every_word_of_a_declared_width_round_trips_as_u64(width in 1u32..=64, raw in any::<u64>()) {
        let spec = RegisterSpec::new(RegId(0), "r", Pid(0), ReaderSet::All, 0u64)
            .with_width(width);
        let word = if width == 64 { raw } else { raw & spec.max_word() };
        prop_assert!(word <= spec.max_word());
        prop_assert_eq!(u64::unpack(word.pack()), word);
    }

    #[test]
    fn hw_register_file_enforces_declared_widths(width in 1u32..=63, raw in any::<u64>()) {
        // The hardware backend must enforce the same width bounds the
        // symbolic SharedMemory's specs declare: any in-width word stores
        // and round-trips; the first word past the boundary is rejected
        // without clobbering the register.
        let spec = RegisterSpec::new(RegId(0), "r", Pid(0), ReaderSet::All, 0u64)
            .with_width(width);
        let max = spec.max_word();
        let file = HwRegisterFile::<u64>::new(vec![spec]).unwrap();
        let fit = raw & max;
        file.write_word(Pid(0), RegId(0), fit).unwrap();
        prop_assert_eq!(file.read_word(Pid(0), RegId(0)).unwrap(), fit);
        match file.write_word(Pid(0), RegId(0), max + 1) {
            Err(AccessError::WidthOverflow { word, width_bits, .. }) => {
                prop_assert_eq!(word, max + 1);
                prop_assert_eq!(width_bits, width);
            }
            other => prop_assert!(false, "expected WidthOverflow, got {:?}", other),
        }
        // The rejected store must not be visible.
        prop_assert_eq!(file.read_word(Pid(0), RegId(0)).unwrap(), fit);
    }

    #[test]
    fn hw_register_file_round_trips_packable_values_at_width_boundaries(v in proptest::option::of(0u64..3)) {
        // Option<Val> in the 2-bit register Fig. 1 declares: every domain
        // value — including the boundary encodings 0 and max_word() — packs
        // within width and round-trips through the hardware cells.
        let spec = RegisterSpec::new(RegId(0), "r", Pid(0), ReaderSet::All, None::<Val>)
            .with_width(2);
        let file = HwRegisterFile::new(vec![spec]).unwrap();
        let value = v.map(Val);
        file.write(Pid(0), RegId(0), &value).unwrap();
        prop_assert_eq!(file.read(Pid(0), RegId(0)).unwrap(), value);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn one_writer_one_reader_traces_linearize_under_the_parallel_sweep(
        root in any::<u64>(),
        trials in 4u64..12,
    ) {
        // Drive the strictly-1W1R Fig. 2 variant through the parallel trial
        // sweep; rebuild every register's operation history from the trace
        // (event i occupies the interval [2i, 2i+1] — the simulator's steps
        // are atomic, so each history must be linearizable) and check it
        // with the Wing–Gong search. The sweep's verdict must be identical
        // at any worker count.
        let p = NUnbounded1W1R::three();
        let inputs = [Val::A, Val::B, Val::A];
        let specs = p.registers();
        let run_trial = |trial: Trial| {
            let out = Runner::new(&p, &inputs, RandomScheduler::new(trial.seed))
                .seed(trial.seed)
                .max_steps(150)
                .record_trace(true)
                .run();
            let trace = out.trace.as_ref().expect("trace recorded");
            let mut hists: BTreeMap<usize, Vec<HistOp>> = BTreeMap::new();
            for (i, e) in trace.events().iter().enumerate() {
                let (t0, t1) = (2 * i as u64, 2 * i as u64 + 1);
                let h = hists.entry(e.op.reg().0).or_default();
                match &e.op {
                    Op::Write(_, v) => h.push(HistOp::write(t0, t1, v.pack() as usize)),
                    Op::Read(_) => {
                        let v = e.read.expect("read value recorded");
                        h.push(HistOp::read(t0, t1, v.pack() as usize));
                    }
                }
            }
            let mut ops = 0u64;
            let ok = hists.iter().all(|(reg, h)| {
                // The bitmask search caps at 64 ops; a prefix of a
                // linearizable sequential history is linearizable, so
                // truncating keeps the check sound.
                let h = &h[..h.len().min(40)];
                ops += h.len() as u64;
                is_linearizable(specs[*reg].init.pack() as usize, h)
            });
            TrialResult {
                metric: ops,
                outcome: if ok {
                    TrialOutcome::Decided
                } else {
                    TrialOutcome::Inconsistent
                },
                flagged: false,
                schedule: None,
            }
        };
        let serial = TrialSweep::new(trials).root_seed(root).jobs(1).run(run_trial);
        let par = TrialSweep::new(trials).root_seed(root).jobs(4).run(run_trial);
        prop_assert_eq!(serial.digest(), par.digest());
        prop_assert_eq!(serial.violations(), 0);
        prop_assert!(serial.metric_sum > 0);
    }
}

/// Satellite check: for each built-in protocol, the *entire* register
/// domain packs within the declared `width_bits` and round-trips, including
/// the boundary word `max_word()` itself.
#[test]
fn declared_widths_cover_each_protocol_register_domain() {
    use cil_core::two::TwoProcessor;

    // Fig. 1 / naive / deterministic registers: Option<Val> in 2 bits.
    // Domain {⊥, a, b} packs to {0, 1, 2}; the boundary word 3 decodes to
    // Some(Val(2)) and still round-trips.
    for spec in TwoProcessor::new().registers() {
        assert_eq!(spec.width_bits, 2);
        let max = spec.max_word();
        for v in [None, Some(Val::A), Some(Val::B)] {
            let w = v.pack();
            assert!(w <= max, "{v:?} packs to {w} > max {max}");
            assert_eq!(Option::<Val>::unpack(w), v);
        }
        assert_eq!(spec.init.pack(), 0, "⊥ is the all-zeros word");
        assert_eq!(Option::<Val>::unpack(max).pack(), max, "boundary word");
    }

    // §4 bounded three-processor registers: 75-value alphabet in 7 bits.
    for spec in cil_core::three_bounded::ThreeBounded::new().registers() {
        assert_eq!(spec.width_bits, 7);
        let max = spec.max_word();
        for v in register_alphabet() {
            let w = v.pack();
            assert!(w <= max, "{v:?} packs to {w} > max {max}");
            assert_eq!(cil_core::three_bounded::BReg::unpack(w), v);
        }
    }

    // §5 unbounded-counter registers: declared full-width (64 bits); the
    // extreme packable NReg occupies the top of the word and round-trips.
    for spec in cil_core::n_unbounded::NUnbounded::three().registers() {
        assert_eq!(spec.width_bits, 64);
        let extreme = NReg {
            pref: Some(Val((1 << 15) - 1)),
            num: (1 << 48) - 1,
        };
        let w = extreme.pack();
        assert!(w <= spec.max_word());
        assert_eq!(NReg::unpack(w), extreme);
        assert_eq!(spec.init.pack() & !spec.max_word(), 0);
    }
}

#[test]
fn breg_alphabet_packs_injectively() {
    use std::collections::HashMap;
    let mut seen = HashMap::new();
    for v in register_alphabet() {
        let w = v.pack();
        if let Some(prev) = seen.insert(w, v) {
            panic!("collision: {prev:?} and {v:?} both pack to {w}");
        }
    }
}
