//! The planted interleaving-sensitive mutant must be *found* by PCT within
//! a bounded seeded budget, *missed* by the uniform random walk at the same
//! budget (that asymmetry is the whole point of priority-based testing),
//! and its failing schedule must shrink to the minimal solo-sprint repro.
//! Finally, the CLI capture path must be byte-identical across invocations
//! and strictly replayable.

use cil_conc::{
    classify, ddmin_schedule, rerun_trial_with_codec, stress, ControlledRun, RacyTwo,
    ReplaySchedule, StrategySpec, StressConfig,
};
use cil_sim::{PackCodec, TrialOutcome, Val};

fn pct_cfg() -> StressConfig {
    StressConfig {
        trials: 64,
        root_seed: 1,
        budget: 64,
        jobs: 0,
        strategy: StrategySpec::Pct { depth: 1 },
        max_failure_samples: 5,
    }
}

#[test]
fn pct_finds_the_interleaving_bug_where_the_random_walk_cannot() {
    let p = RacyTwo::default();
    let inputs = [Val::A, Val::B];

    // PCT depth 1: the bug needs one ordering constraint (P1 sprints
    // ahead), so roughly half of all priority seeds hit it. Demand at
    // least a quarter of the batch to leave slack.
    let pct = stress(&p, &inputs, &pct_cfg(), None);
    assert!(
        pct.violations() >= 16,
        "PCT found only {}/64 violations",
        pct.violations()
    );
    assert!(!pct.failures.is_empty());

    // The uniform random walk needs a lopsided prefix it produces with
    // probability ≈ 0.7% per trial (P1's 12 steps with at most two P0
    // steps interleaved), so at the same budget it finds the bug an order
    // of magnitude less often than PCT — the quantified advantage of
    // priority-based testing. Fixed seeds make the counts deterministic.
    let rnd = StressConfig {
        strategy: StrategySpec::Random,
        ..pct_cfg()
    };
    let rnd = stress(&p, &inputs, &rnd, None);
    assert!(
        rnd.violations() * 8 <= pct.violations(),
        "random walk found {}/64, PCT {}/64 — expected ≥ 8× contrast",
        rnd.violations(),
        pct.violations()
    );
}

#[test]
fn shrinker_reduces_the_failing_schedule_to_the_minimal_solo_sprint() {
    let p = RacyTwo::default();
    let inputs = [Val::A, Val::B];
    let cfg = pct_cfg();
    let pct = stress(&p, &inputs, &cfg, None);
    let first = pct.failures.first().expect("PCT finds the mutant");
    assert_eq!(first.kind, TrialOutcome::Inconsistent);

    let (trial_seed, outcome) = rerun_trial_with_codec(&p, &inputs, &PackCodec, &cfg, first.trial);
    assert_eq!(classify(&outcome).outcome, TrialOutcome::Inconsistent);

    let still_fails = |candidate: &[usize]| {
        let out = ControlledRun::new(&p, &inputs)
            .seed(trial_seed)
            .budget(cfg.budget)
            .run(Box::new(ReplaySchedule::best_effort(candidate.to_vec())));
        classify(&out).outcome == TrialOutcome::Inconsistent
    };
    let minimal = ddmin_schedule(&outcome.schedule, still_fails);

    // The true minimal repro: P1 takes all 12 of its steps (6 rounds ×
    // write+read) before P0's second write — nothing shorter can leave P0's
    // register at round 1 through P1's final read.
    assert_eq!(minimal, vec![1usize; 12], "full: {:?}", outcome.schedule);
    assert!(still_fails(&minimal), "minimal repro must still fail");
    for i in 0..minimal.len() {
        let mut smaller = minimal.clone();
        smaller.remove(i);
        assert!(
            !still_fails(&smaller),
            "removing entry {i} should make the failure vanish (1-minimality)"
        );
    }
}

#[test]
fn cli_stress_capture_is_byte_identical_and_replays() {
    let dir = std::env::temp_dir();
    let cap1 = dir.join("cil_conc_mutant_cap_1.jsonl");
    let cap2 = dir.join("cil_conc_mutant_cap_2.jsonl");
    let run = |path: &std::path::Path| {
        cil_cli::dispatch(
            [
                "conc",
                "stress",
                "--protocol",
                "mutant:racy",
                "--inputs",
                "a,b",
                "--strategy",
                "pct:1",
                "--trials",
                "8",
                "--seed",
                "1",
                "--budget",
                "64",
                "--trace-json",
                path.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .expect("stress runs")
    };
    let out1 = run(&cap1);
    let out2 = run(&cap2);
    // The reports differ only in the capture path they mention.
    let strip = |s: &str, p: &std::path::Path| s.replace(p.to_str().unwrap(), "<cap>");
    assert_eq!(
        strip(&out1, &cap1),
        strip(&out2, &cap2),
        "reports must be deterministic"
    );
    let body1 = std::fs::read_to_string(&cap1).unwrap();
    let body2 = std::fs::read_to_string(&cap2).unwrap();
    assert_eq!(body1, body2, "captures must be byte-identical");
    assert!(
        body1.starts_with("{\"type\":\"meta\",\"mode\":\"conc\""),
        "{body1}"
    );

    // Strict replay of the recorded schedule regenerates the stream
    // byte-for-byte.
    let replayed = cil_cli::dispatch(["conc", "replay", cap1.to_str().unwrap()].map(String::from))
        .expect("replay verifies");
    assert!(replayed.contains("byte-for-byte"), "{replayed}");

    let _ = std::fs::remove_file(&cap1);
    let _ = std::fs::remove_file(&cap2);
}
