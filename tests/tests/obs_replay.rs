//! Observability integration: the stable `--trace` text format, JSONL
//! event capture → `cil replay` round trips, and the metrics layer's
//! no-perturbation guarantees — all exercised through the same `dispatch`
//! entry point the `cil` binary uses.

use cil_core::kvalued::KValued;
use cil_core::two::TwoProcessor;
use cil_obs::{MemorySink, RunEvent};
use cil_sim::{FixedSchedule, RandomScheduler, RoundRobin, Runner, Val};
use std::path::PathBuf;

fn dispatch(line: &str) -> Result<String, String> {
    cil_cli::dispatch(line.split_whitespace().map(String::from))
}

/// A per-process temp path; tests clean up behind themselves.
fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cil_obs_{}_{name}", std::process::id()))
}

// ---------------------------------------------------------------------------
// Satellite: the stable, documented `cil run --trace` column format.
// ---------------------------------------------------------------------------

/// Golden render of the documented trace format (see the `Display` docs in
/// `crates/sim/src/trace.rs`): step index right-aligned in 5 columns, two
/// spaces, `P<pid>`, the padded op keyword, `r<reg>`, and `->`/`<-` with
/// the value in its `Debug` form. If this test fails, the format drifted —
/// update it only together with the documentation.
#[test]
fn trace_text_format_is_stable() {
    let p = TwoProcessor::new();
    let out = Runner::new(&p, &[Val::A, Val::B], RoundRobin::new())
        .seed(0)
        .record_trace(true)
        .run();
    let golden = "    0  P0 write r0 <- Some(Val(0))
    1  P1 write r1 <- Some(Val(1))
    2  P0 read  r1 -> Some(Val(1))
    3  P1 read  r0 -> Some(Val(0))
    4  P0 write r0 <- Some(Val(0))
    5  P1 write r1 <- Some(Val(1))
    6  P0 read  r1 -> Some(Val(1))
    7  P1 read  r0 -> Some(Val(0))
    8  P0 write r0 <- Some(Val(0))
    9  P1 write r1 <- Some(Val(1))
   10  P0 read  r1 -> Some(Val(1))
   11  P1 read  r0 -> Some(Val(0))
   12  P0 write r0 <- Some(Val(1))
   13  P1 write r1 <- Some(Val(1))
   14  P0 read  r1 -> Some(Val(1))
   15  P1 read  r0 -> Some(Val(1))
";
    assert_eq!(out.trace.unwrap().to_string(), golden);
}

/// The same golden block must come out of the CLI's `run --trace`.
#[test]
fn cli_run_trace_prints_the_documented_format() {
    let text = dispatch("run --protocol two --inputs a,b --seed 0 --adversary round-robin --trace")
        .unwrap();
    assert!(text.contains("trace (16 steps):"), "{text}");
    assert!(
        text.contains("    0  P0 write r0 <- Some(Val(0))"),
        "{text}"
    );
    assert!(
        text.contains("   15  P1 read  r0 -> Some(Val(1))"),
        "{text}"
    );
}

// ---------------------------------------------------------------------------
// Satellite: JSONL event round-trip, `cil replay` byte-for-byte.
// ---------------------------------------------------------------------------

#[test]
fn cli_trace_json_capture_replays_byte_for_byte() {
    let path = tmp("two.jsonl");
    let spec = format!(
        "run --protocol two --inputs a,b --seed 7 --trace-json {}",
        path.display()
    );
    let out = dispatch(&spec).unwrap();
    assert!(out.contains("JSONL records"), "{out}");
    let replayed = dispatch(&format!("replay {}", path.display())).unwrap();
    assert!(replayed.contains("byte-for-byte"), "{replayed}");
    std::fs::remove_file(&path).unwrap();
}

/// The round trip must also hold for a k-valued-register protocol, whose
/// register values are not plain `Val::A`/`Val::B`.
#[test]
fn cli_trace_json_roundtrip_covers_kvalued_registers() {
    let path = tmp("kvalued.jsonl");
    let spec = format!(
        "run --protocol kvalued:4 --inputs 0,3 --seed 5 --trace-json {}",
        path.display()
    );
    dispatch(&spec).unwrap();
    let replayed = dispatch(&format!("replay {}", path.display())).unwrap();
    assert!(replayed.contains("byte-for-byte"), "{replayed}");
    std::fs::remove_file(&path).unwrap();
}

/// Tampering with a captured value must make the replay diverge loudly.
#[test]
fn cli_replay_detects_a_tampered_capture() {
    let path = tmp("tampered.jsonl");
    dispatch(&format!(
        "run --protocol two --inputs a,b --seed 7 --trace-json {}",
        path.display()
    ))
    .unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let tampered = text.replacen("Some(Val(0))", "Some(Val(9))", 1);
    assert_ne!(text, tampered, "capture should contain a Val(0)");
    std::fs::write(&path, tampered).unwrap();
    let err = dispatch(&format!("replay {}", path.display())).unwrap_err();
    assert!(err.contains("DIVERGED"), "{err}");
    std::fs::remove_file(&path).unwrap();
}

/// Library-level round trip: every captured event survives JSONL
/// serialization, and re-executing the captured schedule (same coin seed)
/// regenerates the identical `Trace` and event stream — including for a
/// k-valued-register protocol.
#[test]
fn event_stream_schedule_replay_reproduces_the_trace() {
    fn check<P: cil_sim::Protocol>(p: &P, inputs: &[Val], seed: u64) {
        let mut sink = MemorySink::new();
        let original = Runner::new(p, inputs, RandomScheduler::new(seed ^ 0xC0FFEE))
            .seed(seed)
            .record_trace(true)
            .events(&mut sink)
            .run();

        // JSONL round trip: each event prints as one line and parses back.
        for event in &sink.events {
            let line = event.to_json();
            assert_eq!(&RunEvent::from_json(&line).unwrap(), event, "{line}");
        }

        // Rebuild the schedule from the step events alone.
        let schedule: Vec<usize> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                RunEvent::Step { pid, .. } => Some(*pid),
                _ => None,
            })
            .collect();

        let mut replay_sink = MemorySink::new();
        let replayed = Runner::new(p, inputs, FixedSchedule::new(schedule))
            .seed(seed)
            .record_trace(true)
            .events(&mut replay_sink)
            .run();
        assert_eq!(replayed.trace, original.trace);
        assert_eq!(replayed.decisions, original.decisions);
        assert_eq!(replay_sink.events, sink.events);
    }

    check(&TwoProcessor::new(), &[Val::A, Val::B], 11);
    check(&KValued::new(TwoProcessor::new(), 4), &[Val(0), Val(3)], 23);
}

// ---------------------------------------------------------------------------
// Satellite: metrics merge — jobs-invariant, and zero perturbation.
// ---------------------------------------------------------------------------

/// `--jobs 1` and `--jobs 8` sweeps with `--metrics-out` write byte-identical
/// metric snapshots, and their stdout reports differ only in the reported
/// worker count.
#[test]
fn cli_metrics_export_is_jobs_invariant() {
    let (p1, p8) = (tmp("m1.json"), tmp("m8.json"));
    let base = "sweep --protocol two --inputs a,b --trials 500 --seed 3";
    let out1 = dispatch(&format!("{base} --jobs 1 --metrics-out {}", p1.display())).unwrap();
    let out8 = dispatch(&format!("{base} --jobs 8 --metrics-out {}", p8.display())).unwrap();
    let (m1, m8) = (
        std::fs::read_to_string(&p1).unwrap(),
        std::fs::read_to_string(&p8).unwrap(),
    );
    assert_eq!(m1, m8, "metrics snapshots must not depend on --jobs");
    let strip_jobs = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("jobs:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip_jobs(&out1), strip_jobs(&out8));
    // The exported decided-by-k histogram accounts for every decided trial.
    assert!(m1.contains("\"sweep.trials\":500"), "{m1}");
    std::fs::remove_file(&p1).unwrap();
    std::fs::remove_file(&p8).unwrap();
}

/// Attaching `--metrics-out` must leave the sweep's visible results —
/// the stats digest surface printed to stdout — byte-identical.
#[test]
fn cli_metrics_export_does_not_perturb_the_sweep() {
    let path = tmp("noperturb.json");
    let base = "sweep --protocol two --inputs a,b --trials 400 --seed 9 --jobs 2";
    let plain = dispatch(base).unwrap();
    let observed = dispatch(&format!("{base} --metrics-out {}", path.display())).unwrap();
    assert_eq!(plain, observed);
    std::fs::remove_file(&path).unwrap();
}

/// Library-level digest check with a real protocol sweep: observer on/off
/// and every worker count produce the same `SweepStats::digest()`, and the
/// observer's exported JSON is identical at every worker count.
#[test]
fn sweep_digest_is_invariant_under_observation_and_jobs() {
    use cil_obs::Registry;
    use cil_sim::{SweepObserver, TrialResult, TrialSweep};
    let p = TwoProcessor::new();
    let trial_fn = |trial: cil_sim::Trial| {
        let out = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(trial.seed))
            .seed(trial.seed)
            .run();
        TrialResult::from_run(&out).metric(out.total_steps)
    };
    let base = || TrialSweep::new(600).root_seed(17);
    let plain_digest = base().jobs(1).run(trial_fn).digest();
    let mut exports = Vec::new();
    for jobs in [1, 8] {
        let registry = Registry::new();
        let observer = SweepObserver::new(&registry);
        let stats = base().jobs(jobs).run_observed(Some(&observer), trial_fn);
        assert_eq!(stats.digest(), plain_digest, "jobs={jobs}");
        exports.push(registry.snapshot().to_json());
    }
    assert_eq!(exports[0], exports[1]);
}
