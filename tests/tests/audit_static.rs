//! Tier-1: the static model-compliance analyzer accepts every built-in
//! protocol and rejects each seeded mutant with a diagnostic naming the
//! violated paper clause, the processor, the state and the step.

use cil_audit::{Auditor, Clause, MutantKind, MutantTwo};
use cil_core::deterministic::{DetRule, DetTwo};
use cil_core::kvalued::{KReg, KValued};
use cil_core::n_unbounded::NUnbounded;
use cil_core::n_unbounded_1w1r::NUnbounded1W1R;
use cil_core::naive::Naive;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::{TwoProcessor, TwoReg};
use cil_registers::Packable;
use cil_sim::Val;

/// Every protocol family in the workspace passes all five checks.
///
/// `apps` (leader election / mutual exclusion) is driven by `NUnbounded`,
/// so its underlying protocol is covered by the fig2 entries.
#[test]
fn all_builtin_protocols_are_model_compliant() {
    let reports = vec![
        (
            "two",
            Auditor::new(&TwoProcessor::new()).with_packable().run(),
        ),
        (
            "three_bounded",
            Auditor::new(&ThreeBounded::new())
                .with_packable()
                .with_max_states(2048)
                .run(),
        ),
        (
            "n_unbounded (fig2, also `apps` underlying)",
            Auditor::new(&NUnbounded::three())
                .with_packable()
                .with_max_states(400)
                .run(),
        ),
        (
            "n_unbounded literal fig2",
            Auditor::new(&NUnbounded::literal_fig2(3))
                .with_packable()
                .with_max_states(400)
                .run(),
        ),
        (
            "n_unbounded_1w1r",
            Auditor::new(&NUnbounded1W1R::three())
                .with_packable()
                .with_max_states(400)
                .run(),
        ),
        (
            "deterministic",
            Auditor::new(&DetTwo::new(DetRule::AlwaysAdopt))
                .with_packable()
                .run(),
        ),
        ("naive", Auditor::new(&Naive::new(3)).with_packable().run()),
        (
            "kvalued",
            Auditor::new(&KValued::new(TwoProcessor::new(), 4))
                .with_inputs((0..4).map(Val))
                .with_packer(|r: &KReg<TwoReg>| match r {
                    KReg::Inner(inner) => inner.pack(),
                    KReg::Cand(c) => c.map_or(0, |v| v + 1),
                })
                .run(),
        ),
    ];
    for (name, report) in reports {
        assert!(report.ok(), "{name} failed the audit:\n{report}");
        assert!(report.states > 0, "{name}: walk explored nothing");
    }
}

/// Every deterministic rule variant is compliant (they differ only in the
/// adopt/keep policy, which the model does not constrain).
#[test]
fn every_deterministic_rule_is_compliant() {
    for rule in [
        DetRule::AlwaysAdopt,
        DetRule::AlwaysKeep,
        DetRule::AdoptIfGreater,
        DetRule::Alternate,
    ] {
        let report = Auditor::new(&DetTwo::new(rule)).with_packable().run();
        assert!(report.ok(), "{rule:?}:\n{report}");
        assert!(report.complete, "{rule:?}: finite protocol should complete");
    }
}

/// Finite protocols reach the alphabet fixpoint and report full coverage.
#[test]
fn finite_walks_report_complete_coverage() {
    let report = Auditor::new(&TwoProcessor::new()).with_packable().run();
    assert!(report.complete, "{report}");
    // The unbounded §5 counter forces truncation under a small budget.
    let bounded = Auditor::new(&NUnbounded::three())
        .with_packable()
        .with_max_states(100)
        .run();
    assert!(!bounded.complete, "{bounded}");
    assert!(bounded.ok(), "truncation is not a violation:\n{bounded}");
}

/// Each mutant is rejected, the diagnostic blames exactly the planted
/// clause, and it names the state and step it fired at.
#[test]
fn mutants_are_rejected_with_precise_diagnostics() {
    for kind in MutantKind::all() {
        let mutant = MutantTwo::new(kind);
        let report = Auditor::new(&mutant).with_packable().run();
        assert!(!report.ok(), "mutant {} passed the audit", kind.key());
        let expected = kind.expected_clause();
        let hit = report
            .violations
            .iter()
            .find(|v| v.clause == expected)
            .unwrap_or_else(|| {
                panic!(
                    "mutant {} never reported clause {expected:?}:\n{report}",
                    kind.key()
                )
            });
        // Diagnostics carry the state and the paper clause.
        let line = hit.to_string();
        assert!(!hit.state.is_empty() && hit.state != "-", "{line}");
        assert!(line.contains(&hit.state), "{line}");
        assert!(line.contains(expected.key()), "{line}");
        assert!(line.contains(expected.paper_clause()), "{line}");
        assert!(line.contains(&format!("step {}", hit.step)), "{line}");
    }
}

/// The width check compares packed words against each register's declared
/// `width_bits` — shrinking a declared width below the real domain makes a
/// previously compliant protocol fail, proving the bound is actually read.
#[test]
fn width_check_reads_the_declared_bound() {
    use cil_registers::RegisterSpec;
    use cil_sim::{Choice, Op, Protocol};

    /// TwoProcessor with its register widths squeezed to 1 bit: the domain
    /// {⊥, a, b} packs to {0, 1, 2}, and 2 no longer fits.
    #[derive(Debug, Clone, Copy)]
    struct Squeezed(TwoProcessor);
    impl Protocol for Squeezed {
        type State = <TwoProcessor as Protocol>::State;
        type Reg = TwoReg;
        fn processes(&self) -> usize {
            self.0.processes()
        }
        fn registers(&self) -> Vec<RegisterSpec<TwoReg>> {
            self.0
                .registers()
                .into_iter()
                .map(|s| {
                    let mut s = s;
                    s.width_bits = 1;
                    s
                })
                .collect()
        }
        fn init(&self, pid: usize, input: Val) -> Self::State {
            self.0.init(pid, input)
        }
        fn choose(&self, pid: usize, state: &Self::State) -> Choice<Op<TwoReg>> {
            self.0.choose(pid, state)
        }
        fn transit(
            &self,
            pid: usize,
            state: &Self::State,
            op: &Op<TwoReg>,
            read: Option<&TwoReg>,
        ) -> Choice<Self::State> {
            self.0.transit(pid, state, op, read)
        }
        fn decision(&self, state: &Self::State) -> Option<Val> {
            self.0.decision(state)
        }
    }

    let report = Auditor::new(&Squeezed(TwoProcessor::new()))
        .with_packable()
        .run();
    assert!(!report.ok());
    assert!(
        report
            .violations
            .iter()
            .all(|v| v.clause == Clause::WidthBound),
        "{report}"
    );
}

/// Golden pin of the `cil audit two` report format (satellite 5): the
/// renderer is deterministic, so the exact bytes are stable.
#[test]
fn golden_cil_audit_two_report() {
    let out = cil_cli::dispatch(["audit".to_string(), "two".to_string()]).unwrap();
    let expected = "\
audit: two-processor (Fig. 1)
  processes: 2
  registers: 2
  passes:    2
  states:    28
  edges:     28
  coverage:  complete
  checks:    access-sets width-bound coin-measure decision-stable purity
result: PASS
";
    assert_eq!(out, expected);
}

/// `cil audit all` covers every family and reports the summary line.
#[test]
fn cli_audit_all_passes() {
    let out = cil_cli::dispatch(["audit".to_string(), "all".to_string()]).unwrap();
    assert!(
        out.contains("9/9 protocols pass the model-compliance audit"),
        "{out}"
    );
    assert!(!out.contains("FAIL"), "{out}");
}

/// Exit-code semantics (satellite 5): mutants map to `CliFailure::Audit`
/// (exit 1), unknown specs to `CliFailure::Usage` (exit 2).
#[test]
fn cli_audit_failure_kinds_map_to_exit_codes() {
    use cil_cli::CliFailure;
    let err = cil_cli::dispatch_full(["audit".to_string(), "mutant:width-overflow".to_string()])
        .unwrap_err();
    assert!(matches!(err, CliFailure::Audit(_)), "{err:?}");
    assert_eq!(err.exit_code(), 1);
    assert!(err.message().contains("width-bound"), "{}", err.message());

    let err = cil_cli::dispatch_full(["audit".to_string(), "nonsense".to_string()]).unwrap_err();
    assert!(matches!(err, CliFailure::Usage(_)), "{err:?}");
    assert_eq!(err.exit_code(), 2);

    let err =
        cil_cli::dispatch_full(["audit".to_string(), "mutant:bogus".to_string()]).unwrap_err();
    assert_eq!(err.exit_code(), 2, "unknown mutant is a usage error");
}

/// All four mutants are rejected through the CLI spec syntax.
#[test]
fn cli_rejects_every_mutant_spec() {
    for kind in MutantKind::all() {
        let spec = format!("mutant:{}", kind.key());
        let err = cil_cli::dispatch_full(["audit".to_string(), spec.clone()]).unwrap_err();
        assert_eq!(err.exit_code(), 1, "{spec}");
        assert!(
            err.message().contains(kind.expected_clause().key()),
            "{spec}: {}",
            err.message()
        );
    }
}
