//! Cross-validation of the parallel state explorer against the serial one:
//! `Explorer::par_run` must produce the *same* `Report` — configurations
//! visited, completeness, depth, violations in order — as `Explorer::run`,
//! and both must agree with the valence analysis on how many explored
//! configurations are bivalent.

use cil_core::deterministic::{DetRule, DetTwo};
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::TwoProcessor;
use cil_mc::explore::Explorer;
use cil_mc::valence::ValenceMap;
use cil_sim::Val;
use std::sync::atomic::{AtomicUsize, Ordering};

fn depth(release: usize) -> usize {
    if cfg!(debug_assertions) {
        release.saturating_sub(4)
    } else {
        release
    }
}

#[test]
fn par_run_matches_serial_on_two_processor() {
    let p = TwoProcessor::new();
    let inputs = [Val::A, Val::B];
    let serial = Explorer::new(&p, &inputs).max_depth(depth(16)).run();
    for jobs in [2, 4, 8] {
        let par = Explorer::new(&p, &inputs)
            .max_depth(depth(16))
            .jobs(jobs)
            .par_run();
        assert_eq!(serial, par, "jobs = {jobs}");
    }
    assert!(serial.safe());
    // The two-processor protocol's reachable space is tiny (37 configs) and
    // fully exhausted within the depth bound.
    assert!(serial.complete);
    assert!(serial.explored > 20);
}

#[test]
fn par_run_matches_serial_on_three_bounded() {
    let p = ThreeBounded::new();
    let inputs = [Val::A, Val::B, Val::A];
    let serial = Explorer::new(&p, &inputs)
        .max_depth(depth(11))
        .max_configs(6_000_000)
        .run();
    let par = Explorer::new(&p, &inputs)
        .max_depth(depth(11))
        .max_configs(6_000_000)
        .jobs(4)
        .par_run();
    assert_eq!(serial, par);
    assert!(serial.safe());
}

#[test]
fn par_run_matches_serial_under_a_tight_config_cap() {
    // The mid-level cap is the trickiest semantic to replicate: the serial
    // walk stops counting successors the moment the cap trips. The parallel
    // merge must land on the identical truncation.
    let p = ThreeBounded::new();
    let inputs = [Val::B, Val::A, Val::A];
    for cap in [10usize, 137, 1000] {
        let serial = Explorer::new(&p, &inputs)
            .max_depth(30)
            .max_configs(cap)
            .run();
        let par = Explorer::new(&p, &inputs)
            .max_depth(30)
            .max_configs(cap)
            .jobs(4)
            .par_run();
        assert_eq!(serial, par, "cap = {cap}");
        assert!(!serial.complete);
    }
}

#[test]
fn par_run_reports_the_same_violations_as_serial() {
    // The copycat victim decides trivially under some schedules; both
    // explorers must find the identical violation list (order included).
    let p = DetTwo::new(DetRule::AlwaysAdopt);
    let inputs = [Val::A, Val::A];
    let serial = Explorer::new(&p, &inputs).max_depth(depth(14)).run();
    let par = Explorer::new(&p, &inputs)
        .max_depth(depth(14))
        .jobs(4)
        .par_run();
    assert_eq!(serial, par);
}

#[test]
fn bivalent_census_is_identical_serial_and_parallel() {
    // Count bivalent configurations among the explored set via an invariant
    // hook (evaluated exactly once per distinct configuration in both
    // modes), cross-checked against the exact valence analysis. The valence
    // map requires a deterministic protocol, so use the Theorem 4 victim.
    let p = DetTwo::new(DetRule::AlwaysAdopt);
    let inputs = [Val::A, Val::B];
    let map = ValenceMap::build(&p, &inputs, 1_000_000);
    let census = |jobs: usize| {
        let bivalent = AtomicUsize::new(0);
        let total = AtomicUsize::new(0);
        let report = Explorer::new(&p, &inputs)
            .max_depth(depth(14))
            .jobs(jobs)
            .check_invariant(|cfg| {
                total.fetch_add(1, Ordering::Relaxed);
                if map.is_bivalent(cfg) {
                    bivalent.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            })
            .par_run();
        (
            report,
            bivalent.load(Ordering::Relaxed),
            total.load(Ordering::Relaxed),
        )
    };
    let (serial_report, serial_bivalent, serial_total) = census(1);
    let (par_report, par_bivalent, par_total) = census(8);
    assert_eq!(serial_report, par_report);
    assert_eq!(serial_bivalent, par_bivalent);
    assert_eq!(serial_total, par_total);
    // The initial configuration with split inputs is bivalent (the paper's
    // Lemma 2 situation), so the census is non-trivial.
    assert!(serial_bivalent > 0, "expected bivalent configs");
    assert_eq!(serial_total, serial_report.explored);
}
