//! Composing the paper's results: Theorem 5's reduction over the §6
//! bounded-register protocol gives **fully bounded k-valued consensus** for
//! three processors — every register in the whole composite system holds
//! one of finitely many values. This is the strongest artifact the paper
//! implies but never spells out.

use cil_core::kvalued::KValued;
use cil_core::three_bounded::ThreeBounded;
use cil_sim::{LaggardFirst, RandomScheduler, Runner, SplitKeeper, Val};
use proptest::prelude::*;

#[test]
fn bounded_inner_engine_reaches_agreement() {
    let k = 8u64;
    let p = KValued::new(ThreeBounded::new(), k);
    for seed in 0..100u64 {
        let inputs = [
            Val(seed % k),
            Val((seed * 3 + 1) % k),
            Val((seed * 5 + 2) % k),
        ];
        let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
            .seed(seed)
            .max_steps(5_000_000)
            .run();
        assert_eq!(out.halt, cil_sim::Halt::Done, "seed {seed}");
        assert!(out.consistent(), "seed {seed}");
        assert!(out.nontrivial(), "seed {seed}");
        let v = out.agreement().expect("all decided");
        assert!(inputs.contains(&v));
    }
}

#[test]
fn bounded_inner_engine_survives_adaptive_adversaries() {
    let p = KValued::new(ThreeBounded::new(), 4);
    let inputs = [Val(0), Val(3), Val(1)];
    for seed in 0..40u64 {
        let out = Runner::new(&p, &inputs, SplitKeeper::new())
            .seed(seed)
            .max_steps(5_000_000)
            .run();
        assert_eq!(out.halt, cil_sim::Halt::Done, "split-keeper seed {seed}");
        assert!(out.consistent() && out.nontrivial());
        let out = Runner::new(&p, &inputs, LaggardFirst::new())
            .seed(seed)
            .max_steps(5_000_000)
            .run();
        assert_eq!(out.halt, cil_sim::Halt::Done, "laggard seed {seed}");
        assert!(out.consistent() && out.nontrivial());
    }
}

#[test]
fn the_composite_register_space_is_finite() {
    // Structural boundedness: count the registers and verify each one's
    // value domain is finite — candidate registers range over 0..k (+⊥),
    // inner registers over the 75-value Fig. 3 alphabet.
    let k = 16u64;
    let p = KValued::new(ThreeBounded::new(), k);
    let specs = cil_sim::Protocol::registers(&p);
    // rounds * 3 inner registers + 3 candidate registers.
    let rounds = p.rounds() as usize;
    assert_eq!(specs.len(), rounds * 3 + 3);
    let per_inner = cil_core::three_bounded::register_alphabet().len() as u128; // 75
    let per_cand = u128::from(k) + 1; // 0..k plus ⊥
    let total_space: u128 = per_inner.pow((rounds * 3) as u32) * per_cand.pow(3);
    // 75^12 · 17^3 ≈ 1.6 × 10^26: astronomically large, but finite — the
    // §6 boundedness claim survives the Theorem 5 composition.
    assert!(total_space > 0 && total_space < u128::MAX);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bounded_kvalued_safety(
        inputs in prop::array::uniform3(0u64..8),
        seed in any::<u64>(),
    ) {
        let p = KValued::new(ThreeBounded::new(), 8);
        let vals: Vec<Val> = inputs.iter().map(|&v| Val(v)).collect();
        let out = Runner::new(&p, &vals, RandomScheduler::new(seed))
            .seed(seed)
            .max_steps(5_000_000)
            .run();
        prop_assert!(out.consistent());
        prop_assert!(out.nontrivial());
        prop_assert!(out.all_alive_decided());
    }
}
