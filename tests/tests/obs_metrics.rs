//! Property tests for the `cil-obs` metrics layer: snapshot merging must
//! be commutative and associative (the jobs-invariance contract — shard
//! order never shows in a merged export), merges must preserve counts and
//! sums, log-histogram quantile bounds must contain the exact nearest-rank
//! quantile, saturating arithmetic must never wrap, and shape mismatches
//! must surface as errors naming the offending metric.

use cil_obs::{LogHistogram, MetricsSnapshot, Registry, SpanStat, SpanTree};
use proptest::prelude::*;

/// Builds a snapshot with one of everything from primitive inputs, so
/// proptest can drive the whole merge surface from plain integers.
fn build(counter: u64, gauge: u64, lat: &[u64], series: &[u64], span_ns: u64) -> MetricsSnapshot {
    let r = Registry::new();
    r.counter("ops").add(counter);
    r.gauge("peak").set(gauge);
    let h = r.histogram("decided_by_k", 1, 8);
    let lh = r.log_histogram("lat_ns", 5);
    for &v in lat {
        h.observe(v % 16);
        lh.observe(v);
    }
    let s = r.series("residual");
    for &v in series {
        s.push(v);
    }
    let mut spans = SpanTree::new();
    spans.add(
        "run",
        SpanStat {
            count: 1,
            total_ns: span_ns,
            self_ns: span_ns / 2,
        },
    );
    spans.add(
        "run/solve",
        SpanStat {
            count: 3,
            total_ns: span_ns / 2,
            self_ns: span_ns / 2,
        },
    );
    r.merge_spans(&spans);
    r.snapshot()
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b).expect("same shapes always merge");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard order must not show in the merged export: `a + b == b + a`
    /// byte-for-byte in canonical JSON.
    #[test]
    fn snapshot_merge_is_commutative(
        ca in 0u64..10_000, cb in 0u64..10_000,
        ga in 0u64..10_000, gb in 0u64..10_000,
        xs in proptest::collection::vec(0u64..1 << 48, 0..32),
        ys in proptest::collection::vec(0u64..1 << 48, 0..32),
        sa in proptest::collection::vec(0u64..10_000, 0..8),
        sb in proptest::collection::vec(0u64..10_000, 0..8),
        na in 0u64..1 << 32, nb in 0u64..1 << 32,
    ) {
        let a = build(ca, ga, &xs, &sa, na);
        let b = build(cb, gb, &ys, &sb, nb);
        prop_assert_eq!(merged(&a, &b).to_json(), merged(&b, &a).to_json());
    }

    /// Merging is associative, so any reduction tree over worker shards
    /// (left fold, balanced tree, whatever `--jobs` produces) agrees.
    #[test]
    fn snapshot_merge_is_associative(
        xs in proptest::collection::vec(0u64..1 << 48, 0..16),
        ys in proptest::collection::vec(0u64..1 << 48, 0..16),
        zs in proptest::collection::vec(0u64..1 << 48, 0..16),
    ) {
        let a = build(1, 5, &xs, &[1, 2], 100);
        let b = build(2, 9, &ys, &[3], 200);
        let c = build(3, 2, &zs, &[4, 5, 6], 300);
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left.to_json(), right.to_json());
    }

    /// Merging preserves totals: observation counts add, sums add
    /// (saturating), and the canonical JSON round-trips losslessly.
    #[test]
    fn merge_preserves_counts_and_roundtrips(
        xs in proptest::collection::vec(0u64..1 << 48, 0..32),
        ys in proptest::collection::vec(0u64..1 << 48, 0..32),
    ) {
        let a = build(1, 1, &xs, &[], 10);
        let b = build(1, 1, &ys, &[], 10);
        let m = merged(&a, &b);
        let lh = m.log_histogram("lat_ns").unwrap();
        prop_assert_eq!(lh.count(), (xs.len() + ys.len()) as u64);
        let exact_sum: u64 = xs.iter().chain(&ys).fold(0, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(lh.sum, exact_sum);
        let h = m.histogram("decided_by_k").unwrap();
        prop_assert_eq!(h.count(), (xs.len() + ys.len()) as u64);
        let reparsed = MetricsSnapshot::from_json(&m.to_json()).unwrap();
        prop_assert_eq!(reparsed.to_json(), m.to_json());
    }

    /// The estimator's contract: the exact nearest-rank quantile of the
    /// observed stream lies inside the reported bucket, and the midpoint
    /// is within the reported ± error of the exact value.
    #[test]
    fn log_quantile_bounds_contain_the_exact_quantile(
        values in proptest::collection::vec(0u64..1 << 40, 1..200),
        qi in 1u32..=1000,
    ) {
        let q = f64::from(qi) / 1000.0;
        let h = LogHistogram::new(5);
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let exact = sorted[(rank - 1) as usize];
        let b = h.snapshot().quantile(q).expect("non-empty");
        prop_assert!(b.lo <= exact && exact < b.hi,
            "exact {} outside [{}, {})", exact, b.lo, b.hi);
        prop_assert!(b.mid().abs_diff(exact) <= b.err(),
            "mid {} ± {} misses exact {}", b.mid(), b.err(), exact);
    }
}

/// Regression for the wrapping-add bug: counters and histogram sums near
/// `u64::MAX` must pin at the ceiling, including across merges.
#[test]
fn sums_saturate_instead_of_wrapping() {
    let r = Registry::new();
    let c = r.counter("c");
    c.add(u64::MAX - 1);
    c.add(5);
    assert_eq!(c.get(), u64::MAX);
    let lh = r.log_histogram("lh", 5);
    lh.observe(u64::MAX);
    lh.observe(u64::MAX);
    assert_eq!(lh.snapshot().sum, u64::MAX);
    let h = r.histogram("h", 1, 4);
    h.observe(u64::MAX);
    h.observe(u64::MAX);
    assert_eq!(h.snapshot().sum, u64::MAX);
    let mut a = r.snapshot();
    let b = r.snapshot();
    a.merge(&b).unwrap();
    assert_eq!(a.counter("c"), Some(u64::MAX));
    assert_eq!(a.log_histogram("lh").unwrap().sum, u64::MAX);
    assert_eq!(a.histogram("h").unwrap().sum, u64::MAX);
}

/// Shape mismatches are errors naming the offending metric, not panics —
/// the CLI turns these into exit-2 usage failures.
#[test]
fn merge_mismatch_names_the_offending_metric() {
    let ra = Registry::new();
    ra.log_histogram("lat_ns", 5).observe(1);
    let rb = Registry::new();
    rb.log_histogram("lat_ns", 6).observe(1);
    let err = ra.snapshot().merge(&rb.snapshot()).unwrap_err();
    assert_eq!(err.metric, "lat_ns");
    assert!(err.to_string().contains("lat_ns"), "{err}");
    assert!(err.to_string().contains("sub_bits"), "{err}");

    let rc = Registry::new();
    rc.histogram("decided", 1, 4).observe(0);
    let rd = Registry::new();
    rd.histogram("decided", 2, 4).observe(0);
    let err = rc.snapshot().merge(&rd.snapshot()).unwrap_err();
    assert_eq!(err.metric, "decided");
    assert!(err.to_string().contains("width"), "{err}");
}
