//! Cross-validation of the `cil-serve` engine against the simulator, and
//! its determinism contract: in `Instances` mode the merged statistics,
//! the decided-value distribution, and the `serve.*` metric exports are a
//! pure function of `(root_seed, instances)` — byte-identical at any
//! shard / arena / batch configuration — and identical to what a
//! `TrialSweep` over `Runner` + `RoundRobin` produces for the same trials.

use std::collections::BTreeMap;

use cil_core::deterministic::{DetRule, DetTwo};
use cil_core::kvalued::KValued;
use cil_core::n_unbounded::NUnbounded;
use cil_core::n_unbounded_1w1r::NUnbounded1W1R;
use cil_core::naive::Naive;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::TwoProcessor;
use cil_core::KRegCodec;
use cil_obs::Registry;
use cil_serve::{ServeEngine, ServeLimit, ServeReport};
use cil_sim::sweep::{SweepObserver, TrialResult, TrialSweep};
use cil_sim::threads::WordCodec;
use cil_sim::{PackCodec, Protocol, RoundRobin, Runner, Val};

const INSTANCES: u64 = 120;
const MAX_STEPS: u64 = 20_000;
const SEED: u64 = 2026;

/// Reference run: the same trials through the simulator, collecting the
/// sweep digest and the decided-value distribution.
fn simulator_reference<P: Protocol + Sync>(
    protocol: &P,
    inputs: &[Val],
) -> (Vec<u8>, BTreeMap<u64, u64>) {
    let values = std::sync::Mutex::new(BTreeMap::new());
    let stats = TrialSweep::new(INSTANCES)
        .root_seed(SEED)
        .jobs(1)
        .run(|trial| {
            let out = Runner::new(protocol, inputs, RoundRobin::new())
                .seed(trial.seed)
                .max_steps(MAX_STEPS)
                .run();
            let result = TrialResult::from_run(&out);
            if result.outcome == cil_sim::sweep::TrialOutcome::Decided {
                if let Some(v) = out.agreement() {
                    *values.lock().unwrap().entry(v.0).or_insert(0u64) += 1;
                }
            }
            result
        });
    (stats.digest(), values.into_inner().unwrap())
}

fn serve_report<P, C>(protocol: &P, codec: &C, inputs: &[Val], shards: usize) -> ServeReport
where
    P: Protocol + Sync,
    P::State: Send,
    C: WordCodec<P::Reg>,
{
    ServeEngine::new(protocol, codec, inputs, ServeLimit::Instances(INSTANCES))
        .root_seed(SEED)
        .shards(shards)
        .max_steps(MAX_STEPS)
        .run()
}

/// One protocol's full contract: serve == simulator (digest + decided-value
/// distribution), at more than one shard count.
fn check_protocol<P, C>(name: &str, protocol: &P, codec: &C, inputs: &[Val])
where
    P: Protocol + Sync,
    P::State: Send,
    C: WordCodec<P::Reg>,
{
    let (ref_digest, ref_values) = simulator_reference(protocol, inputs);
    for shards in [1, 3] {
        let report = serve_report(protocol, codec, inputs, shards);
        assert_eq!(report.instances, INSTANCES, "{name}: instance count");
        assert_eq!(
            report.stats.digest(),
            ref_digest,
            "{name}: serve digest diverged from the simulator sweep at {shards} shards"
        );
        assert_eq!(
            report.decided_values, ref_values,
            "{name}: decided-value distribution diverged at {shards} shards"
        );
    }
}

/// Every built-in protocol spec the CLI serves, with the codec `cil serve`
/// would pick for it.
#[test]
fn all_nine_protocols_match_the_simulator() {
    check_protocol("two", &TwoProcessor::new(), &PackCodec, &[Val::A, Val::B]);
    check_protocol(
        "fig2",
        &NUnbounded::three(),
        &PackCodec,
        &[Val::A, Val::B, Val::A],
    );
    check_protocol(
        "fig2-literal",
        &NUnbounded::literal_fig2(3),
        &PackCodec,
        &[Val::A, Val::B, Val::A],
    );
    check_protocol(
        "fig2-1w1r",
        &NUnbounded1W1R::three(),
        &PackCodec,
        &[Val::A, Val::B, Val::A],
    );
    check_protocol(
        "fig3",
        &ThreeBounded::new(),
        &PackCodec,
        &[Val::A, Val::B, Val::A],
    );
    check_protocol("naive", &Naive::new(2), &PackCodec, &[Val::A, Val::B]);
    check_protocol(
        "det:always-adopt",
        &DetTwo::new(DetRule::AlwaysAdopt),
        &PackCodec,
        &[Val::A, Val::B],
    );
    check_protocol(
        "n:4",
        &NUnbounded::new(4),
        &PackCodec,
        &[Val::A, Val::B, Val::A, Val::B],
    );
    let kv = KValued::new(TwoProcessor::new(), 4);
    let codec = KRegCodec::for_protocol(&kv);
    check_protocol("kvalued:4", &kv, &codec, &[Val(0), Val(3)]);
}

/// The observed `serve.*` metric snapshot (no timing attached, so no
/// wall-clock metrics) plus the decided-value counters must serialize to
/// byte-identical JSON and OpenMetrics text at any shard count.
#[test]
fn metric_exports_are_byte_identical_at_any_shard_count() {
    let p = NUnbounded::three();
    let inputs = [Val::A, Val::B, Val::B];
    let export = |shards: usize| {
        let registry = Registry::new();
        let observer = SweepObserver::with_prefix(&registry, "serve");
        let report = ServeEngine::new(&p, &PackCodec, &inputs, ServeLimit::Instances(200))
            .root_seed(7)
            .shards(shards)
            .max_steps(MAX_STEPS)
            .run_observed(Some(&observer));
        report.export_decided_values(&registry);
        let snap = registry.snapshot();
        (snap.to_json(), cil_obs::export::to_openmetrics(&snap))
    };
    let (json1, om1) = export(1);
    for shards in [2, 5] {
        let (json_n, om_n) = export(shards);
        assert_eq!(json1, json_n, "JSON export diverged at {shards} shards");
        assert_eq!(om1, om_n, "OpenMetrics export diverged at {shards} shards");
    }
    // The export actually carries the serve metrics it promises.
    for key in ["serve.trials", "serve.decided", "serve.decided.v"] {
        assert!(json1.contains(key), "export missing {key}: {json1}");
    }
}

/// Arena geometry (slots, batch) is as invisible as the shard count.
#[test]
fn arena_geometry_is_invisible() {
    let p = TwoProcessor::new();
    let inputs = [Val::A, Val::B];
    let reference = serve_report(&p, &PackCodec, &inputs, 1);
    for (slots, batch) in [(1, 1), (5, 17), (128, 2)] {
        let report = ServeEngine::new(&p, &PackCodec, &inputs, ServeLimit::Instances(INSTANCES))
            .root_seed(SEED)
            .shards(2)
            .slots(slots)
            .batch(batch)
            .max_steps(MAX_STEPS)
            .run();
        assert_eq!(
            report.stats.digest(),
            reference.stats.digest(),
            "digest diverged at slots={slots} batch={batch}"
        );
        assert_eq!(report.decided_values, reference.decided_values);
    }
}
