//! Cross-validation between the model checker (`cil-mc`) and the simulator
//! (`cil-sim`): the exact analyses and the Monte-Carlo executor must tell
//! the same story about the same protocols.

use cil_core::deterministic::{DetRule, DetTwo};
use cil_core::two::TwoProcessor;
use cil_mc::config::{successors, Config};
use cil_mc::explore::Explorer;
use cil_mc::mdp::{MdpSolver, Objective};
use cil_mc::valence::{Valence, ValenceMap};
use cil_sim::{FixedSchedule, RandomScheduler, Runner, StopWhen, Val};

#[test]
fn univalent_configurations_predict_simulation_outcomes() {
    // Take the copycat victim; for every reachable univalent-v config, any
    // continuation that decides must decide v. Validate by simulating from
    // schedules that lead into univalent configs.
    let p = DetTwo::new(DetRule::AlwaysAdopt);
    let inputs = [Val::A, Val::B];
    let map = ValenceMap::build(&p, &inputs, 1_000_000);

    // Walk a few concrete schedules, tracking configs alongside.
    for schedule in [
        vec![0usize, 0, 1, 1, 0, 1, 0, 1],
        vec![1, 1, 1, 0, 0, 0],
        vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1],
    ] {
        let mut cfg = Config::initial(&p, &inputs);
        for (i, &pid) in schedule.iter().enumerate() {
            if !cfg.eligible(&p).contains(&pid) {
                break;
            }
            cfg = successors(&p, &cfg, pid).pop().unwrap().1;
            if let Valence::Univalent(v) = map.valence(&cfg) {
                // Simulate a full run continuing with this prefix.
                let out = Runner::new(&p, &inputs, FixedSchedule::new(schedule[..=i].to_vec()))
                    .max_steps(10_000)
                    .run();
                if let Some(d) = out.agreement() {
                    assert_eq!(d, v, "simulation contradicts valence analysis");
                }
            }
        }
    }
}

#[test]
fn mdp_value_matches_monte_carlo_under_its_own_policy() {
    let p = TwoProcessor::new();
    let inputs = [Val::A, Val::B];
    let mdp = MdpSolver::build(&p, &inputs, 100_000);
    let solve = mdp.expected_steps(&p, Objective::StepsOf(1), 1e-12, 100_000);
    let runs = 30_000u64;
    let mut total = 0u64;
    for seed in 0..runs {
        let out = Runner::new(&p, &inputs, mdp.policy_adversary(&solve))
            .seed(seed)
            .stop_when(StopWhen::PidDecided(1))
            .max_steps(100_000)
            .run();
        total += out.steps[1];
    }
    let mean = total as f64 / runs as f64;
    assert!(
        (mean - solve.value).abs() < 0.3,
        "MC mean {mean} vs exact optimum {}",
        solve.value
    );
}

#[test]
fn no_monte_carlo_run_escapes_the_enumerated_state_space() {
    // Every configuration visited by a simulation must be in the MDP's
    // closed enumeration (registers + states), for many seeds.
    let p = TwoProcessor::new();
    let inputs = [Val::B, Val::A];
    let mdp = MdpSolver::build(&p, &inputs, 100_000);
    for seed in 0..500u64 {
        let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
            .seed(seed)
            .run();
        // Final configuration must be known to the solver modulo the
        // activation mask, which the solver tracks too. Rebuild it:
        let cfg = Config::<TwoProcessor> {
            states: out.final_states.clone(),
            regs: out.final_regs.clone(),
            active: (u64::from(out.steps[0] > 0)) | (u64::from(out.steps[1] > 0) << 1),
        };
        assert!(
            mdp.find(&cfg).is_some(),
            "seed {seed}: final config missing from enumeration"
        );
    }
}

#[test]
fn explorer_matches_brute_force_monte_carlo_on_safety() {
    // The explorer proves safety exhaustively; Monte Carlo must agree (it
    // can never find what exhaustion proved absent).
    let p = TwoProcessor::new();
    for inputs in [[Val::A, Val::B], [Val::B, Val::B]] {
        let report = Explorer::new(&p, &inputs).run();
        assert!(report.safe() && report.complete);
        for seed in 0..2_000u64 {
            let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                .seed(seed)
                .run();
            assert!(out.consistent() && out.nontrivial());
        }
    }
}

#[test]
fn deterministic_victims_never_decide_along_the_theorem4_schedule() {
    // Feed the mechanized Theorem 4 schedule back into the *simulator* and
    // confirm nobody decides — mc and sim agree about the adversary.
    for rule in DetRule::ALL {
        let p = DetTwo::new(rule);
        let inputs = [Val::A, Val::B];
        let demo = cil_mc::construct_infinite_schedule(&p, &inputs, 5_000, 1_000_000)
            .expect("Theorem 4 construction runs");
        let out = Runner::new(&p, &inputs, FixedSchedule::new(demo.schedule.clone()))
            .max_steps(5_000)
            .run();
        assert!(
            out.decisions.iter().all(Option::is_none),
            "{rule}: the adversarial schedule let someone decide"
        );
        assert_eq!(out.total_steps, 5_000);
    }
}
