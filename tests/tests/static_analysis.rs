//! The static analysis / proof layer, end to end: every lint pass fires on
//! at least one seeded mutant and stays silent on every built-in protocol;
//! the footprint table over-approximates dynamically observed register
//! accesses on random product walks; the DPOR explorer strengthened with
//! static independence is byte-identical at any `--jobs` and never runs
//! more executions than the dynamic baseline; and `cil prove` certificates
//! round-trip through the independent checker (tampering rejected).

use cil_audit::{
    footprints, lint, Auditor, FootprintTable, LintCode, LintMutant, LintMutantTwo, RegAccess,
};
use cil_cli::CliFailure;
use cil_conc::{Access, StaticIndep};
use cil_core::deterministic::{DetRule, DetTwo};
use cil_core::kvalued::{KReg, KValued};
use cil_core::n_unbounded::NUnbounded;
use cil_core::n_unbounded_1w1r::NUnbounded1W1R;
use cil_core::naive::Naive;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::{TwoProcessor, TwoReg};
use cil_registers::Packable;
use cil_sim::{Op, Protocol, Val};
use proptest::prelude::*;

fn dispatch(tokens: &[&str]) -> Result<String, CliFailure> {
    cil_cli::dispatch_full(tokens.iter().map(|s| s.to_string()))
}

/// A scratch-file path in the target temp dir, unique per test name.
fn scratch(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cil-static-analysis-{name}-{}", std::process::id()));
    p
}

// ---------------------------------------------------------------------------
// Lint matrix: mutants fire exactly, built-ins stay silent
// ---------------------------------------------------------------------------

/// Every lint pass fires on at least one seeded mutant, and each mutant
/// fires *exactly* its expected set — no cross-talk between passes.
#[test]
fn every_lint_pass_fires_on_exactly_one_mutant_family_member() {
    let mut covered = std::collections::BTreeSet::new();
    for kind in LintMutant::all() {
        let mutant = LintMutantTwo::new(kind);
        let report = lint(&Auditor::new(&mutant).with_packable());
        let fired: Vec<LintCode> = report.fired().into_iter().collect();
        let mut expected = kind.expected_lints();
        expected.sort();
        assert_eq!(
            fired,
            expected,
            "mutant:{} fired {fired:?}, expected {expected:?}\n{}",
            kind.key(),
            report.render()
        );
        covered.extend(fired);
    }
    for code in LintCode::all() {
        assert!(
            covered.contains(&code),
            "lint pass {code} is not exercised by any seeded mutant"
        );
    }
}

/// The lint mutants are model-compliant: `cil audit` accepts them (the
/// planted defects are inefficiencies, not §2 violations).
#[test]
fn lint_mutants_pass_the_model_audit_via_the_cli() {
    for kind in LintMutant::all() {
        let spec = format!("mutant:{}", kind.key());
        let out = dispatch(&["audit", &spec]).unwrap_or_else(|e| {
            panic!("audit {spec} must pass: {}", e.message());
        });
        assert!(out.contains("result: PASS"), "{out}");
    }
}

/// All nine built-in protocols are lint-clean, and the CLI exit codes are
/// exact: findings exit 1, unknown specs exit 2.
#[test]
fn cli_lint_all_is_clean_and_exit_codes_are_exact() {
    let out = dispatch(&["lint", "all"]).expect("built-ins are lint-clean");
    assert!(out.contains("9/9 protocols are lint-clean"), "{out}");

    for kind in LintMutant::all() {
        let spec = format!("mutant:{}", kind.key());
        let err = dispatch(&["lint", &spec]).expect_err("mutant lints must fire");
        assert_eq!(err.exit_code(), 1, "{}", err.message());
        assert!(
            err.message().contains("result: FINDINGS"),
            "{}",
            err.message()
        );
    }

    let err = dispatch(&["lint", "mutant:bogus"]).expect_err("unknown mutant");
    assert_eq!(err.exit_code(), 2, "{}", err.message());
    let err = dispatch(&["lint", "nonsense"]).expect_err("unknown spec");
    assert_eq!(err.exit_code(), 2, "{}", err.message());
}

/// `--json` renders are valid flat JSON with the expected verdict fields,
/// and `--footprints` appends the footprint table as a second JSONL line.
#[test]
fn cli_json_renders_parse() {
    let out = dispatch(&["audit", "two", "--json"]).unwrap();
    let node = cil_obs::json::parse_value(out.trim()).expect("audit --json parses");
    let obj = node.as_obj().expect("object");
    assert_eq!(obj["result"].as_str(), Some("pass"));
    assert_eq!(obj["audit"].as_str(), Some("two-processor (Fig. 1)"));

    let out = dispatch(&["lint", "two", "--json", "--footprints"]).unwrap();
    let mut lines = out.lines();
    let lint_line = lines.next().expect("lint line");
    let fp_line = lines.next().expect("footprint line");
    let lint_node = cil_obs::json::parse_value(lint_line).expect("lint --json parses");
    assert_eq!(
        lint_node.as_obj().expect("object")["findings"]
            .as_arr()
            .map(<[_]>::len),
        Some(0)
    );
    let fp_node = cil_obs::json::parse_value(fp_line).expect("footprints parse");
    assert_eq!(
        fp_node.as_obj().expect("object")["complete"].as_num(),
        Some(1)
    );

    let out = dispatch(&["prove", "two", "--json"]).unwrap();
    let node = cil_obs::json::parse_value(out.trim()).expect("prove --json parses");
    assert_eq!(
        node.as_obj().expect("object")["result"].as_str(),
        Some("proved")
    );
}

// ---------------------------------------------------------------------------
// Footprints over-approximate dynamic executions
// ---------------------------------------------------------------------------

/// Tiny deterministic RNG (splitmix64) for the random product walks.
struct Sm64(u64);
impl Sm64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Random product walk of `steps` scheduler decisions, checking every
/// access the walk performs against the static footprint table and its
/// [`StaticIndep`] conversion:
///
/// - with a **complete** table, every access must be inside the owning
///   processor's access universe (`covers`), and every walked state must be
///   in the table with the branch's access among its first accesses;
/// - with a bounded table the universe may be truncated, so only the
///   per-state claim is checked (branch first-accesses are exact for any
///   state the walk did reach).
fn walk_and_check<P: Protocol>(
    p: &P,
    inputs: &[Val],
    table: &FootprintTable,
    statics: &StaticIndep,
    seed: u64,
    steps: usize,
) {
    let name = p.name();
    let mut rng = Sm64(seed);
    let specs = p.registers();
    let mut regs: Vec<P::Reg> = specs.iter().map(|s| s.init.clone()).collect();
    let mut states: Vec<P::State> = inputs
        .iter()
        .enumerate()
        .map(|(pid, &v)| p.init(pid, v))
        .collect();
    for _ in 0..steps {
        let eligible: Vec<usize> = (0..p.processes())
            .filter(|&pid| p.decision(&states[pid]).is_none())
            .collect();
        if eligible.is_empty() {
            break;
        }
        let pid = eligible[rng.pick(eligible.len())];
        let key = format!("{:?}", states[pid]);
        let choice = p.choose(pid, &states[pid]);
        let branches = choice.branches();
        let bi = rng.pick(branches.len());
        let op = &branches[bi].1;
        let access = RegAccess {
            reg: op.reg().0,
            write: op.is_write(),
        };
        if table.complete {
            assert!(
                table.covers(pid, access),
                "{name}: P{pid} performs {access} at {key}, outside the static universe"
            );
            assert!(
                statics.covers(
                    pid,
                    Access {
                        reg: access.reg,
                        write: access.write
                    }
                ),
                "{name}: StaticIndep conversion lost P{pid} {access}"
            );
            assert!(
                table.state(pid, &key).is_some(),
                "{name}: complete table misses walked state {key} of P{pid}"
            );
        }
        // Bounded walks leave unexpanded frontier nodes with empty branch
        // lists; only expanded states carry exact first-access sets.
        if let Some(sf) = table.state(pid, &key) {
            if !sf.branches.is_empty() {
                assert!(
                    sf.first_accesses().contains(&access),
                    "{name}: {access} of P{pid} at {key} missing from first accesses {:?}",
                    sf.first_accesses()
                );
            }
        }
        // Execute the step on the product state.
        let read = match op {
            Op::Read(r) => Some(regs[r.0].clone()),
            Op::Write(r, v) => {
                regs[r.0] = v.clone();
                None
            }
        };
        let tr = p.transit(pid, &states[pid], op, read.as_ref());
        let ti = rng.pick(tr.branches().len());
        states[pid] = tr.branches()[ti].1.clone();
    }
}

/// Builds the footprint table and its [`StaticIndep`] conversion the same
/// way the CLI does.
fn tables_for<P: Protocol>(auditor: &Auditor<'_, P>) -> (FootprintTable, StaticIndep) {
    let table = footprints(auditor);
    let mut statics = StaticIndep::new(table.processes);
    for (pid, state, first, reachable) in table.flat_states() {
        statics.insert_state(pid, state, first, reachable);
    }
    (table, statics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seeded random product walks over all nine built-in protocol specs
    /// never perform an access the footprint table fails to predict.
    #[test]
    fn footprints_over_approximate_random_walks(seed in any::<u64>()) {
        let ab = [Val::A, Val::B];
        let aba = [Val::A, Val::B, Val::A];

        let p = TwoProcessor::new();
        let (t, s) = tables_for(&Auditor::new(&p));
        walk_and_check(&p, &ab, &t, &s, seed, 64);

        let p = NUnbounded::three();
        let (t, s) = tables_for(&Auditor::new(&p).with_max_states(400));
        walk_and_check(&p, &aba, &t, &s, seed, 48);

        let p = NUnbounded::literal_fig2(3);
        let (t, s) = tables_for(&Auditor::new(&p).with_max_states(400));
        walk_and_check(&p, &aba, &t, &s, seed, 48);

        let p = NUnbounded1W1R::three();
        let (t, s) = tables_for(&Auditor::new(&p).with_max_states(400));
        walk_and_check(&p, &aba, &t, &s, seed, 48);

        let p = ThreeBounded::new();
        let (t, s) = tables_for(&Auditor::new(&p).with_max_states(2048));
        walk_and_check(&p, &aba, &t, &s, seed, 48);

        let p = Naive::new(3);
        let (t, s) = tables_for(&Auditor::new(&p));
        walk_and_check(&p, &aba, &t, &s, seed, 64);

        let p = DetTwo::new(DetRule::AlwaysAdopt);
        let (t, s) = tables_for(&Auditor::new(&p));
        walk_and_check(&p, &ab, &t, &s, seed, 64);

        let p = NUnbounded::new(4);
        let (t, s) = tables_for(&Auditor::new(&p).with_max_states(400));
        walk_and_check(&p, &[Val::A, Val::B, Val::A, Val::B], &t, &s, seed, 48);

        let p = KValued::new(TwoProcessor::new(), 4);
        let auditor = Auditor::new(&p)
            .with_inputs((0..4).map(Val))
            .with_packer(|r: &KReg<TwoReg>| match r {
                KReg::Inner(inner) => inner.pack(),
                KReg::Cand(c) => c.map_or(0, |v| v + 1),
            });
        let (t, s) = tables_for(&auditor);
        prop_assert!(t.complete, "kvalued walk must converge");
        walk_and_check(&p, &[Val(0), Val(3)], &t, &s, seed, 64);
    }
}

// ---------------------------------------------------------------------------
// DPOR with static independence, CLI level
// ---------------------------------------------------------------------------

/// `cil conc explore --static-indep` is byte-identical at any `--jobs`,
/// reports zero footprint misses, and keeps the execution digest of the
/// dynamic baseline.
#[test]
fn cli_static_indep_explore_is_jobs_invariant_with_zero_misses() {
    let run = |jobs: &str, extra: &[&str]| {
        let mut toks = vec![
            "conc",
            "explore",
            "two",
            "--inputs",
            "a,b",
            "--depth-bound",
            "9",
            "--no-hunt",
            "--jobs",
            jobs,
        ];
        toks.extend_from_slice(extra);
        dispatch(&toks).expect("clean certificate")
    };
    let serial = run("1", &["--static-indep"]);
    assert!(serial.contains("sleep-set + static footprints"), "{serial}");
    assert!(serial.contains("static footprints: 0 misses"), "{serial}");
    let par = run("4", &["--static-indep"]);
    // The jobs count is echoed on the "depth bound:" line; everything else
    // must be byte-identical.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("depth bound:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&serial), strip(&par), "jobs-invariance broke");

    // Identical digest with and without the static table.
    let baseline = run("1", &[]);
    let digest = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("execution digest:"))
            .expect("digest line")
            .to_string()
    };
    assert_eq!(digest(&serial), digest(&baseline));
}

/// `--static-indep` on a protocol whose footprint walk cannot converge is a
/// usage error (exit 2), not a silently unsound reduction.
#[test]
fn cli_static_indep_rejects_bounded_footprint_walks() {
    let err = dispatch(&[
        "conc",
        "explore",
        "fig2",
        "--inputs",
        "a,b,a",
        "--depth-bound",
        "6",
        "--static-indep",
    ])
    .expect_err("fig2 footprints cannot converge");
    assert_eq!(err.exit_code(), 2, "{}", err.message());
    assert!(
        err.message().contains("did not converge"),
        "{}",
        err.message()
    );
}

// ---------------------------------------------------------------------------
// Safety proofs and certificates, CLI level
// ---------------------------------------------------------------------------

/// `cil prove` proves the Fig. 1 protocol, writes a certificate, and the
/// independent checker accepts it — including with the protocol inferred
/// from the certificate itself. A tampered certificate is rejected (exit 1).
#[test]
fn cli_prove_certificate_roundtrip_and_tamper_rejection() {
    let path = scratch("two-cert");
    let path_str = path.to_string_lossy().to_string();
    let out = dispatch(&["prove", "two", "--cert", &path_str]).expect("two proves");
    assert!(out.contains("result: PROVED"), "{out}");

    // Explicit spec and inferred-from-certificate spec both verify.
    let ok = dispatch(&["prove", "two", "--check-cert", &path_str]).unwrap();
    assert!(ok.contains("certificate OK"), "{ok}");
    let ok = dispatch(&["prove", "--check-cert", &path_str]).unwrap();
    assert!(ok.contains("certificate OK"), "{ok}");

    // Tamper with one fingerprint: the checker must reject with exit 1.
    let cert = std::fs::read_to_string(&path).unwrap();
    let pos = cert.find("\"fp\":").expect("fp field") + "\"fp\":".len();
    let digit = cert[pos..].chars().next().unwrap();
    let flipped = if digit == '1' { '2' } else { '1' };
    let mut tampered = cert.clone();
    tampered.replace_range(pos..pos + 1, &flipped.to_string());
    std::fs::write(&path, &tampered).unwrap();
    let err =
        dispatch(&["prove", "two", "--check-cert", &path_str]).expect_err("tampered certificate");
    assert_eq!(err.exit_code(), 1, "{}", err.message());
    assert!(
        err.message().contains("certificate check FAILED"),
        "{}",
        err.message()
    );
    let _ = std::fs::remove_file(&path);
}

/// The k-valued composite proves and round-trips too (the CI pair).
#[test]
fn cli_prove_kvalued_certificate_roundtrip() {
    let path = scratch("kv2-cert");
    let path_str = path.to_string_lossy().to_string();
    let out = dispatch(&["prove", "kvalued:2", "--cert", &path_str]).expect("kvalued:2 proves");
    assert!(out.contains("result: PROVED"), "{out}");
    let ok = dispatch(&["prove", "--check-cert", &path_str]).unwrap();
    assert!(ok.contains("certificate OK"), "{ok}");
    let _ = std::fs::remove_file(&path);
}

/// A refutable protocol (the planted racy mutant) is REFUTED with a
/// replayable counterexample schedule, exit 1; `--cert` on an unbounded
/// protocol whose frontier cannot close is a usage error.
#[test]
fn cli_prove_refutes_the_racy_mutant_and_guards_cert_writes() {
    let err = dispatch(&["prove", "mutant:racy"]).expect_err("racy mutant refuted");
    assert_eq!(err.exit_code(), 1, "{}", err.message());
    let msg = err.message();
    assert!(msg.contains("result: REFUTED (agreement)"), "{msg}");
    assert!(msg.contains("schedule:"), "{msg}");

    let bounded = dispatch(&["prove", "fig2", "--max-configs", "2000"]).unwrap();
    assert!(bounded.contains("result: BOUNDED"), "{bounded}");
    let err = dispatch(&[
        "prove",
        "fig2",
        "--max-configs",
        "2000",
        "--cert",
        "/tmp/never-written.json",
    ])
    .expect_err("--cert needs PROVED");
    assert_eq!(err.exit_code(), 2, "{}", err.message());
}
