//! Tier-1: the happens-before trace auditor verifies captured event
//! streams are serializations of atomic register operations, and flags
//! tampered streams — both through the library API and `cil replay --audit`.

use cil_audit::TraceAuditor;
use cil_core::two::TwoProcessor;
use cil_obs::{MemorySink, OpKind, RunEvent};
use cil_sim::{RandomScheduler, Runner, Val};

fn captured_events(seed: u64) -> Vec<RunEvent> {
    let p = TwoProcessor::new();
    let mut sink = MemorySink::new();
    Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(seed))
        .seed(seed)
        .events(&mut sink)
        .run();
    sink.events
}

/// Every genuine capture passes: reads always return the serialized
/// contents, access sets hold, decisions agree and are final.
#[test]
fn genuine_captures_pass_the_happens_before_audit() {
    let auditor = TraceAuditor::for_protocol(&TwoProcessor::new());
    for seed in 0..50 {
        let events = captured_events(seed);
        let report = auditor.audit(&events);
        assert!(report.ok(), "seed {seed}:\n{report}");
        assert!(report.steps > 0);
        // Every read in a valid serialization is clean.
        let reads = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    RunEvent::Step {
                        op: OpKind::Read,
                        ..
                    }
                )
            })
            .count() as u64;
        assert_eq!(report.clean_reads, reads, "seed {seed}");
    }
}

/// Vector clocks witness happens-before: a processor's own component
/// counts its steps, and a read of another's write joins that writer's
/// clock entry (making it nonzero).
#[test]
fn vector_clocks_count_steps_and_join_on_reads() {
    let auditor = TraceAuditor::for_protocol(&TwoProcessor::new());
    let events = captured_events(7);
    let report = auditor.audit(&events);
    assert!(report.ok(), "{report}");
    for pid in 0..2 {
        let own_steps = events
            .iter()
            .filter(|e| matches!(e, RunEvent::Step { pid: p, .. } if *p == pid))
            .count() as u64;
        assert_eq!(report.clocks[pid][pid], own_steps, "P{pid}\n{report}");
    }
    // Both processors decided, so each must have observed the other's
    // initial write: the cross components cannot both be zero.
    assert!(
        report.clocks[0][1] > 0 || report.clocks[1][0] > 0,
        "no communication observed:\n{report}"
    );
}

/// Tampering with a read value is detected as a phantom or stale read.
#[test]
fn tampered_read_value_is_flagged() {
    let auditor = TraceAuditor::for_protocol(&TwoProcessor::new());
    let mut events = captured_events(3);
    let read_at = events
        .iter()
        .position(|e| {
            matches!(
                e,
                RunEvent::Step {
                    op: OpKind::Read,
                    ..
                }
            )
        })
        .expect("capture contains a read");
    if let RunEvent::Step { value, .. } = &mut events[read_at] {
        *value = "Some(Val(41))".to_string(); // never written by anyone
    }
    let report = auditor.audit(&events);
    assert!(!report.ok());
    assert!(
        report.anomalies.iter().any(|a| a.kind == "phantom-read"),
        "{report}"
    );
}

/// A read returning an *older* value of the register is a stale read —
/// the stream is no longer a serialization of an atomic register.
#[test]
fn stale_read_is_distinguished_from_phantom() {
    let auditor = TraceAuditor::for_protocol(&TwoProcessor::new());
    // Hand-built stream: P0 writes a then b; P1 reads the overwritten a.
    let events = vec![
        RunEvent::Step {
            index: 0,
            pid: 0,
            op: OpKind::Write,
            reg: 0,
            value: "Some(Val(0))".into(),
        },
        RunEvent::Step {
            index: 1,
            pid: 0,
            op: OpKind::Write,
            reg: 0,
            value: "Some(Val(1))".into(),
        },
        RunEvent::Step {
            index: 2,
            pid: 1,
            op: OpKind::Read,
            reg: 0,
            value: "Some(Val(0))".into(),
        },
    ];
    let report = auditor.audit(&events);
    assert_eq!(
        report.anomalies.iter().map(|a| a.kind).collect::<Vec<_>>(),
        vec!["stale-read"],
        "{report}"
    );
}

/// Access-set anomalies: a write by a non-owner and a read outside the
/// declared reader set (TwoProcessor registers are 1W1R).
#[test]
fn unauthorized_operations_are_flagged() {
    let auditor = TraceAuditor::for_protocol(&TwoProcessor::new());
    let events = vec![
        RunEvent::Step {
            index: 0,
            pid: 1,
            op: OpKind::Write,
            reg: 0,
            value: "Some(Val(0))".into(),
        },
        RunEvent::Step {
            index: 1,
            pid: 0,
            op: OpKind::Read,
            reg: 0,
            value: "Some(Val(0))".into(),
        },
    ];
    let report = auditor.audit(&events);
    let kinds: Vec<_> = report.anomalies.iter().map(|a| a.kind).collect();
    assert!(kinds.contains(&"unauthorized-write"), "{report}");
    assert!(kinds.contains(&"unauthorized-read"), "{report}");
}

/// Decision anomalies: contradicting an earlier decision, stepping after
/// deciding, and cross-processor disagreement.
#[test]
fn decision_anomalies_are_flagged() {
    let auditor = TraceAuditor::for_protocol(&TwoProcessor::new());
    let flip = vec![
        RunEvent::Decision {
            index: 0,
            pid: 0,
            value: 0,
        },
        RunEvent::Decision {
            index: 1,
            pid: 0,
            value: 1,
        },
    ];
    let report = auditor.audit(&flip);
    assert!(
        report.anomalies.iter().any(|a| a.kind == "decision-change"),
        "{report}"
    );

    let step_after = vec![
        RunEvent::Decision {
            index: 0,
            pid: 0,
            value: 0,
        },
        RunEvent::Step {
            index: 1,
            pid: 0,
            op: OpKind::Write,
            reg: 0,
            value: "Some(Val(0))".into(),
        },
    ];
    let report = auditor.audit(&step_after);
    assert!(
        report
            .anomalies
            .iter()
            .any(|a| a.kind == "step-after-decision"),
        "{report}"
    );

    let disagree = vec![
        RunEvent::Decision {
            index: 0,
            pid: 0,
            value: 0,
        },
        RunEvent::Decision {
            index: 1,
            pid: 1,
            value: 1,
        },
    ];
    let report = auditor.audit(&disagree);
    assert!(
        report.anomalies.iter().any(|a| a.kind == "decision-change"),
        "{report}"
    );
}

/// JSONL round trip: a sink-serialized stream parses and audits clean.
#[test]
fn jsonl_captures_audit_clean() {
    let text = captured_events(11)
        .iter()
        .map(RunEvent::to_json)
        .collect::<Vec<_>>()
        .join("\n");
    let auditor = TraceAuditor::for_protocol(&TwoProcessor::new());
    let report = auditor.audit_jsonl(&text).unwrap();
    assert!(report.ok(), "{report}");
    assert!(auditor.audit_jsonl("not json").is_err());
}

/// End-to-end through the CLI: `cil run --trace-json` then
/// `cil replay --audit` passes on the genuine capture and fails with the
/// audit exit code on a tampered one.
#[test]
fn cli_replay_audit_end_to_end() {
    use cil_cli::CliFailure;
    let dir = std::env::temp_dir();
    let path = dir.join(format!("cil-audit-e2e-{}.jsonl", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();

    let out = cil_cli::dispatch(
        [
            "run",
            "--protocol",
            "two",
            "--inputs",
            "a,b",
            "--seed",
            "3",
            "--trace-json",
            &path_str,
        ]
        .map(String::from),
    )
    .unwrap();
    assert!(out.contains("JSONL records"), "{out}");

    let ok =
        cil_cli::dispatch_full(["replay".to_string(), path_str.clone(), "--audit".into()]).unwrap();
    assert!(ok.contains("byte-for-byte"), "{ok}");
    assert!(
        ok.contains("serializable as atomic register operations"),
        "{ok}"
    );

    // Tamper: rewrite the first read's value to one never written.
    let text = std::fs::read_to_string(&path).unwrap();
    let tampered: Vec<String> = text
        .lines()
        .map(|l| {
            if l.contains("\"op\":\"read\"") && l.contains("Some(Val(") {
                l.replace("Some(Val(0))", "Some(Val(9))")
                    .replace("Some(Val(1))", "Some(Val(9))")
            } else {
                l.to_string()
            }
        })
        .collect();
    std::fs::write(&path, tampered.join("\n")).unwrap();

    let err =
        cil_cli::dispatch_full(["replay".to_string(), path_str, "--audit".into()]).unwrap_err();
    assert!(matches!(err, CliFailure::Audit(_)), "{err:?}");
    assert_eq!(err.exit_code(), 1);
    assert!(
        err.message().contains("phantom-read") || err.message().contains("stale-read"),
        "{}",
        err.message()
    );
    let _ = std::fs::remove_file(&path);
}
