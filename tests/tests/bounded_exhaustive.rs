//! Deeper bounded-exhaustive model checking of the three-processor
//! protocols (all schedules × all coin outcomes), at depths beyond what the
//! experiment harness uses. Depth is reduced in debug builds to keep
//! `cargo test` fast; release test runs (`cargo test --release`) verify the
//! deeper bounds.

use cil_core::n_unbounded::NUnbounded;
use cil_core::n_unbounded_1w1r::NUnbounded1W1R;
use cil_core::three_bounded::{register_alphabet, BReg, ThreeBounded};
use cil_mc::explore::Explorer;
use cil_sim::Val;
use std::collections::HashSet;

fn depth(release: usize) -> usize {
    if cfg!(debug_assertions) {
        release.saturating_sub(5)
    } else {
        release
    }
}

#[test]
fn fig2_corrected_is_safe_to_depth() {
    let p = NUnbounded::three();
    for inputs in [[Val::A, Val::B, Val::A], [Val::B, Val::B, Val::A]] {
        let report = Explorer::new(&p, &inputs)
            .max_depth(depth(14))
            .max_configs(6_000_000)
            .run();
        assert!(report.safe(), "{:?}", report.violations);
        assert!(report.explored > 100);
    }
}

#[test]
fn fig3_bounded_is_safe_to_depth() {
    let p = ThreeBounded::new();
    for inputs in [[Val::A, Val::B, Val::A], [Val::A, Val::A, Val::B]] {
        let report = Explorer::new(&p, &inputs)
            .max_depth(depth(14))
            .max_configs(6_000_000)
            .run();
        assert!(report.safe(), "{:?}", report.violations);
    }
}

#[test]
fn fig3_registers_stay_in_alphabet_exhaustively() {
    // Stronger than the Monte-Carlo census: over ALL executions to the
    // depth bound, every register value is in the declared alphabet.
    let alphabet: HashSet<BReg> = register_alphabet().into_iter().collect();
    let p = ThreeBounded::new();
    let report = Explorer::new(&p, &[Val::A, Val::B, Val::B])
        .max_depth(depth(13))
        .max_configs(6_000_000)
        .check_invariant(move |cfg| {
            for r in &cfg.regs {
                if !alphabet.contains(r) {
                    return Err(format!("register value outside alphabet: {r:?}"));
                }
            }
            Ok(())
        })
        .run();
    assert!(report.safe(), "{:?}", report.violations);
}

#[test]
fn one_writer_one_reader_variant_is_safe_to_depth() {
    let p = NUnbounded1W1R::three();
    let report = Explorer::new(&p, &[Val::A, Val::B, Val::A])
        .max_depth(depth(14))
        .max_configs(6_000_000)
        .run();
    assert!(report.safe(), "{:?}", report.violations);
}

#[test]
fn literal_fig2_is_safe_at_shallow_depth_only() {
    // The pinned counterexample to the literal rule lives at depth ~19+
    // (several full phases), beyond exhaustive reach — this is exactly why
    // bounded model checking alone missed it and randomized search was
    // needed. Document the boundary: shallow exhaustion stays clean.
    let p = NUnbounded::literal_fig2(3);
    let report = Explorer::new(&p, &[Val::A, Val::B, Val::A])
        .max_depth(depth(12))
        .max_configs(6_000_000)
        .run();
    assert!(
        report.safe(),
        "literal rule violated earlier than expected: {:?}",
        report.violations
    );
}
