//! Allocation regression tests for the serve hot path.
//!
//! PR 9 fixed two allocation bugs: `Choice::sample` collected the branch
//! weights into a fresh `Vec` on every coin flip, and `NUnbounded::transit`
//! built three temporary `Vec`s (maxnum scan, leader collection, agreement
//! check) on every read step. This binary pins both fixes — and the
//! serve-engine steady state that depends on them — with a counting global
//! allocator.
//!
//! The counting allocator is the one place in the workspace that needs
//! `unsafe` (the `GlobalAlloc` contract); it is confined to this test
//! binary, outside every `#![forbid(unsafe_code)]` library crate, and only
//! delegates to `std::alloc::System`.
//!
//! Everything runs inside a single `#[test]` so no sibling test thread can
//! pollute the allocation counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cil_core::n_unbounded::NUnbounded;
use cil_core::two::TwoProcessor;
use cil_serve::InstanceSlot;
use cil_sim::sweep::Trial;
use cil_sim::{Choice, PackCodec, Protocol, Rng, SplitMix64, Val, Xoshiro256StarStar};

/// Counts allocations; frees are uncounted (the steady-state assertions
/// care about *new* heap traffic only).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`, which upholds the `GlobalAlloc`
// contract; the added counter is a lock-free atomic increment.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed while running `f`.
fn allocations_during<R>(f: &mut impl FnMut() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

/// Asserts `f` runs without heap traffic. The counter is process-global
/// and the libtest harness may allocate on its own threads (output
/// bookkeeping) concurrently with the measured window, so transient noise
/// is retried away: a *genuine* hot-path allocation fires on every single
/// attempt and still fails, while an unlucky overlap with the harness
/// passes on a clean retry.
fn assert_alloc_free<R>(what: &str, mut f: impl FnMut() -> R) -> R {
    let mut min_allocs = u64::MAX;
    for _ in 0..5 {
        let (allocs, result) = allocations_during(&mut f);
        if allocs == 0 {
            return result;
        }
        min_allocs = min_allocs.min(allocs);
    }
    panic!("{what}: at least {min_allocs} allocations on a hot path in every attempt");
}

/// Runs `slot` through one full instance without touching stats
/// aggregation (which may legitimately allocate).
fn run_instance<P: Protocol>(slot: &mut InstanceSlot<'_, P, PackCodec>, trial: Trial) -> u64
where
    P::Reg: cil_registers::Packable,
{
    slot.begin(trial);
    loop {
        if let Some(done) = slot.step_batch(1024) {
            return done.result.metric;
        }
    }
}

fn trial(root_seed: u64, index: u64) -> Trial {
    Trial {
        index,
        seed: SplitMix64::jump(root_seed, index).next_u64(),
    }
}

#[test]
fn hot_paths_do_not_allocate() {
    let mut rng = Xoshiro256StarStar::new(99);

    // 1. `Choice::sample` — the PR 9 bugfix: deterministic and coin choices
    //    (the two shapes every protocol step goes through) must not touch
    //    the heap, and neither must sampling a prebuilt many-way choice.
    let det = Choice::det(Val::A);
    let coin = Choice::coin(Val::A, Val::B);
    let many = Choice::uniform([Val(0), Val(1), Val(2), Val(3)]);
    assert_alloc_free("Choice::sample(det)", || {
        for _ in 0..10_000 {
            std::hint::black_box(det.sample(&mut rng));
        }
    });
    assert_alloc_free("Choice::sample(coin)", || {
        for _ in 0..10_000 {
            std::hint::black_box(coin.sample(&mut rng));
        }
    });
    assert_alloc_free("Choice::sample(uniform)", || {
        for _ in 0..10_000 {
            std::hint::black_box(many.sample(&mut rng));
        }
    });

    // 2. The serve steady state, two-processor protocol: instance 0 warms
    //    the slot (first `begin` fills the state vector), then every later
    //    instance must run begin-to-decision without a single allocation.
    let two = TwoProcessor::new();
    let inputs = [Val::A, Val::B];
    let mut slot = InstanceSlot::new(&two, &PackCodec, &inputs, 1_000_000);
    run_instance(&mut slot, trial(17, 0));
    assert_alloc_free("two-processor steady state", || {
        for index in 1..200 {
            std::hint::black_box(run_instance(&mut slot, trial(17, index)));
        }
    });

    // 3. The same for fig2 — this is the path through the `PhaseScan`
    //    rewrite of `NUnbounded::transit`, which previously built three
    //    temporary Vecs per read step.
    let fig2 = NUnbounded::three();
    let inputs3 = [Val::A, Val::B, Val::A];
    let mut slot3 = InstanceSlot::new(&fig2, &PackCodec, &inputs3, 1_000_000);
    run_instance(&mut slot3, trial(23, 0));
    assert_alloc_free("fig2 steady state", || {
        for index in 1..100 {
            std::hint::black_box(run_instance(&mut slot3, trial(23, index)));
        }
    });
}
