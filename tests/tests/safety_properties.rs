//! Property-based safety tests: consistency and nontriviality of every
//! protocol in the paper, under randomized inputs, coins and schedulers.
//!
//! These are the paper's requirements 1 and 2 (§2), which randomized
//! protocols must satisfy **on every run** — "the protocols never err".

use cil_core::kvalued::KValued;
use cil_core::n_unbounded::NUnbounded;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::TwoProcessor;
use cil_sim::{
    BoxedAdversary, LaggardFirst, LeaderFirst, Protocol, RandomScheduler, RoundRobin, Runner,
    SplitKeeper, Val,
};
use proptest::prelude::*;

fn pick_adversary<P: Protocol>(which: u8, seed: u64) -> BoxedAdversary<P> {
    match which % 5 {
        0 => Box::new(RoundRobin::new()),
        1 => Box::new(RandomScheduler::new(seed)),
        2 => Box::new(SplitKeeper::new()),
        3 => Box::new(LaggardFirst::new()),
        _ => Box::new(LeaderFirst::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn two_processor_safety(a in 0u64..2, b in 0u64..2, seed in any::<u64>(), adv in 0u8..5) {
        let p = TwoProcessor::new();
        let out = Runner::new(&p, &[Val(a), Val(b)], pick_adversary(adv, seed))
            .seed(seed)
            .max_steps(200_000)
            .run();
        prop_assert!(out.consistent());
        prop_assert!(out.nontrivial());
        prop_assert!(out.all_alive_decided(), "randomized termination failed");
    }

    #[test]
    fn three_unbounded_safety(
        inputs in prop::array::uniform3(0u64..2),
        seed in any::<u64>(),
        adv in 0u8..5,
    ) {
        let p = NUnbounded::three();
        let vals: Vec<Val> = inputs.iter().map(|&v| Val(v)).collect();
        let out = Runner::new(&p, &vals, pick_adversary(adv, seed))
            .seed(seed)
            .max_steps(2_000_000)
            .run();
        prop_assert!(out.consistent());
        prop_assert!(out.nontrivial());
        prop_assert!(out.all_alive_decided());
    }

    #[test]
    fn three_bounded_safety(
        inputs in prop::array::uniform3(0u64..2),
        seed in any::<u64>(),
        adv in 0u8..5,
    ) {
        let p = ThreeBounded::new();
        let vals: Vec<Val> = inputs.iter().map(|&v| Val(v)).collect();
        let out = Runner::new(&p, &vals, pick_adversary(adv, seed))
            .seed(seed)
            .max_steps(2_000_000)
            .run();
        prop_assert!(out.consistent());
        prop_assert!(out.nontrivial());
        prop_assert!(out.all_alive_decided());
    }

    #[test]
    fn n_processor_safety(
        n in 2usize..7,
        seed in any::<u64>(),
        adv in 0u8..5,
        pattern in any::<u64>(),
    ) {
        let p = NUnbounded::new(n);
        let vals: Vec<Val> = (0..n).map(|i| Val((pattern >> i) & 1)).collect();
        let out = Runner::new(&p, &vals, pick_adversary(adv, seed))
            .seed(seed)
            .max_steps(5_000_000)
            .run();
        prop_assert!(out.consistent());
        prop_assert!(out.nontrivial());
        prop_assert!(out.all_alive_decided());
    }

    #[test]
    fn kvalued_safety(
        k_pow in 1u32..7,
        ia in any::<u64>(),
        ib in any::<u64>(),
        seed in any::<u64>(),
        adv in 0u8..5,
    ) {
        let k = 1u64 << k_pow;
        let p = KValued::new(TwoProcessor::new(), k);
        let inputs = [Val(ia % k), Val(ib % k)];
        let out = Runner::new(&p, &inputs, pick_adversary(adv, seed))
            .seed(seed)
            .max_steps(2_000_000)
            .run();
        prop_assert!(out.consistent());
        prop_assert!(out.nontrivial());
        prop_assert!(out.all_alive_decided());
        let v = out.agreement().expect("all decided");
        prop_assert!(inputs.contains(&v), "decision {v} is not an input");
    }
}
