//! Real-thread integration: the paper's protocols on OS threads over
//! hardware atomic registers, with the OS as the scheduler. Exercises
//! `cil-sim::threads` + `cil-registers::hw` + `cil-core` packings together.

use cil_core::n_unbounded::NUnbounded;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::TwoProcessor;
use cil_sim::{run_on_threads, Val};

#[test]
fn two_processor_agrees_on_real_threads() {
    let p = TwoProcessor::new();
    for seed in 0..30 {
        let out = run_on_threads(&p, &[Val::A, Val::B], seed, 1_000_000);
        let v = out.agreed().expect("threads must agree");
        assert!(v == Val::A || v == Val::B);
        assert!(out.steps.iter().all(|&s| s >= 2));
    }
}

#[test]
fn three_unbounded_agrees_on_real_threads() {
    let p = NUnbounded::three();
    for seed in 0..30 {
        let out = run_on_threads(&p, &[Val::A, Val::B, Val::A], seed, 1_000_000);
        assert!(out.agreed().is_some(), "seed {seed}: {:?}", out.decisions);
    }
}

#[test]
fn three_bounded_agrees_on_real_threads() {
    let p = ThreeBounded::new();
    for seed in 0..30 {
        let out = run_on_threads(&p, &[Val::B, Val::A, Val::B], seed, 1_000_000);
        assert!(out.agreed().is_some(), "seed {seed}: {:?}", out.decisions);
    }
}

#[test]
fn unanimous_inputs_agree_on_that_value_across_backends() {
    // Simulator and thread backend must both settle unanimous inputs on the
    // unanimous value (nontriviality leaves no alternative).
    let p = NUnbounded::three();
    let inputs = [Val::B, Val::B, Val::B];
    for seed in 0..10 {
        let threads = run_on_threads(&p, &inputs, seed, 1_000_000);
        assert_eq!(threads.agreed(), Some(Val::B));
        let sim = cil_sim::Runner::new(&p, &inputs, cil_sim::RandomScheduler::new(seed))
            .seed(seed)
            .run();
        assert_eq!(sim.agreement(), Some(Val::B));
    }
}

#[test]
fn thread_backend_handles_larger_n() {
    let p = NUnbounded::new(6);
    let inputs: Vec<Val> = (0..6).map(|i| Val((i % 2) as u64)).collect();
    for seed in 0..10 {
        let out = run_on_threads(&p, &inputs, seed, 2_000_000);
        assert!(out.agreed().is_some(), "seed {seed}: {:?}", out.decisions);
    }
}
