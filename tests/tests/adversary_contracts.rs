//! Contract tests for the adversary suite: every scheduler must always pick
//! an eligible processor, for every protocol, under randomized stress —
//! plus cross-checks tying the model checker's enumeration to the MDP
//! solver's.

use cil_core::n_unbounded::NUnbounded;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::TwoProcessor;
use cil_mc::explore::Explorer;
use cil_mc::mdp::MdpSolver;
use cil_sim::{
    Adversary, Alternator, BoxedAdversary, CrashPlan, FixedSchedule, Halt, LaggardFirst,
    LeaderFirst, Protocol, RandomScheduler, RoundRobin, Runner, Solo, SplitKeeper, Val, View,
};
use proptest::prelude::*;

/// Wraps any adversary and asserts the executor's eligibility contract on
/// every pick (the executor would panic anyway; this makes the property
/// explicit and testable per adversary).
struct ContractChecked<A>(A, u64);

impl<P: Protocol, A: Adversary<P>> Adversary<P> for ContractChecked<A> {
    fn pick(&mut self, view: &View<'_, P>) -> usize {
        let pid = self.0.pick(view);
        assert!(
            view.eligible().contains(&pid),
            "{} picked ineligible P{pid}",
            self.0.name()
        );
        self.1 += 1;
        pid
    }
}

fn full_suite<P: Protocol>(seed: u64) -> Vec<BoxedAdversary<P>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomScheduler::new(seed)),
        Box::new(SplitKeeper::new()),
        Box::new(LaggardFirst::new()),
        Box::new(LeaderFirst::new()),
        Box::new(Alternator::new()),
        Box::new(Solo::new(0)),
        Box::new(FixedSchedule::new(vec![0, 1, 0, 1, 2 % 2])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_adversary_honours_eligibility_two_proc(seed in any::<u64>()) {
        let p = TwoProcessor::new();
        for adv in full_suite::<TwoProcessor>(seed) {
            let out = Runner::new(&p, &[Val::A, Val::B], ContractChecked(adv, 0))
                .seed(seed)
                .max_steps(50_000)
                .run();
            prop_assert!(out.consistent());
        }
    }

    #[test]
    fn every_adversary_honours_eligibility_fig2(seed in any::<u64>()) {
        let p = NUnbounded::three();
        for adv in full_suite::<NUnbounded>(seed) {
            let out = Runner::new(&p, &[Val::A, Val::B, Val::A], ContractChecked(adv, 0))
                .seed(seed)
                .max_steps(500_000)
                .run();
            prop_assert!(out.consistent());
        }
    }

    #[test]
    fn eligibility_holds_even_under_crashes(seed in any::<u64>(), victim in 0usize..3) {
        let p = ThreeBounded::new();
        for adv in full_suite::<ThreeBounded>(seed) {
            let out = Runner::new(&p, &[Val::B, Val::A, Val::A], ContractChecked(adv, 0))
                .seed(seed)
                .crashes(CrashPlan::none().crash(victim, seed % 7))
                .max_steps(500_000)
                .run();
            prop_assert!(out.consistent());
            prop_assert_eq!(out.halt, Halt::Done);
        }
    }
}

#[test]
fn explorer_and_mdp_agree_on_the_state_space_size() {
    // Two independent enumerations of the same closed space must coincide.
    let p = TwoProcessor::new();
    for inputs in [[Val::A, Val::B], [Val::A, Val::A], [Val::B, Val::A]] {
        let report = Explorer::new(&p, &inputs).run();
        assert!(report.complete);
        let mdp = MdpSolver::build(&p, &inputs, 1_000_000);
        assert_eq!(
            report.explored,
            mdp.size(),
            "inputs {inputs:?}: explorer vs mdp enumeration mismatch"
        );
    }
}

#[test]
fn solo_adversary_matches_paper_schedule_semantics() {
    // Solo(i) is the paper's S_i = (i, i, i, …): the target runs alone until
    // it decides.
    let p = NUnbounded::three();
    let out = Runner::new(&p, &[Val::B, Val::A, Val::A], Solo::new(1))
        .seed(4)
        .record_trace(true)
        .stop_when(cil_sim::StopWhen::PidDecided(1))
        .max_steps(100_000)
        .run();
    let sched = out.trace.unwrap().schedule();
    assert!(sched.iter().all(|&pid| pid == 1), "{sched:?}");
    assert_eq!(out.decisions[1], Some(Val::A));
}
