//! Integration-test package for the CIL reproduction workspace.
//!
//! This crate intentionally exports nothing; all content lives in
//! `tests/tests/*.rs`, which exercise the public APIs of every workspace
//! crate together (protocol → simulator → analysis pipelines, model-checker
//! cross-validation, register-backend swaps).
