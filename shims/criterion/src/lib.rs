//! Minimal, dependency-free benchmarking shim exposing the subset of the
//! `criterion` API this workspace's benches use.
//!
//! The workspace must build in fully offline environments, so the real
//! crates.io `criterion` is replaced by this shim: same macro and method
//! names, but measurement is a simple timed loop (a short warm-up, then a
//! fixed number of timed iterations) with mean time per iteration printed to
//! stdout. There are no statistical comparisons, plots, or saved baselines.
//! Set `CRITERION_SAMPLES` to change the number of timed iterations.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: u32 = 30;
const WARMUP: u32 = 3;

fn samples() -> u32 {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SAMPLES)
        .max(1)
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall time per call.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..WARMUP {
            black_box(f());
        }
        let n = samples();
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = n;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `name`, printing the mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.0), &b);
    }

    /// Benchmarks `f` with an input value under `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b);
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<40} (no measurement)");
    } else {
        let per_iter = b.total / b.iters;
        println!(
            "{name:<40} {:>12}/iter  ({} iters)",
            fmt_duration(per_iter),
            b.iters
        );
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("group");
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::from_parameter(5u32), &5u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
