//! Minimal, dependency-free property-testing shim exposing the subset of the
//! `proptest` API this workspace uses.
//!
//! The real `proptest` crate lives on crates.io; this workspace must build
//! and test in fully offline environments, so the few facilities the tests
//! rely on are reimplemented here behind the same names and paths:
//!
//! * [`proptest!`] with an optional `#![proptest_config(..)]` header;
//! * strategies: integer/float ranges, [`any`](arbitrary::any), tuples,
//!   [`collection::vec`], [`array::uniform3`], [`option::of`],
//!   [`Just`](strategy::Just), [`prop_oneof!`] and
//!   [`Strategy::prop_map`](strategy::Strategy::prop_map);
//! * assertions: [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Unlike the real crate there is **no shrinking** — a failing case panics
//! with the offending generated inputs left in the assertion message. Case
//! generation is deterministic per test-function name, so failures reproduce
//! across runs and machines; set `PROPTEST_CASES` to override the default
//! case count globally.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration and the deterministic generator driving each case.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases (the only knob the shim honours).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// SplitMix64: tiny deterministic generator for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `seed`.
        pub fn deterministic(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiplicative range reduction; bias is negligible for test
            // generation purposes (< 2^-32 for the bounds used here).
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a hash of a test name — the per-test seed root.
    pub fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of generated values. The shim generates eagerly with no
    /// shrinking, so a strategy is just a value generator.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn gen(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            self.0.gen(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen(rng))
        }
    }

    /// Uniform choice among boxed alternatives (see [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! of nothing");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].gen(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let width = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                    // Inclusive ranges spanning the full u64 domain are not
                    // used by this workspace; width therefore fits in u64.
                    (*self.start() as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace generates.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each element from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[T; 3]` generating each slot from the same strategy.
    pub struct Uniform3<S>(S);

    /// `[T; 3]` with every element drawn from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3(element)
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn gen(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [self.0.gen(rng), self.0.gen(rng), self.0.gen(rng)]
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`: `None` half the time.
    pub struct OptionStrategy<S>(S);

    /// `Option<T>` with a 50% `None` rate.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() >> 63 == 1 {
                Some(self.0.gen(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` module alias (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// An optional `#![proptest_config(expr)]` header sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let root = $crate::test_runner::fnv1a(stringify!($name));
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    root ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $( let $arg = $crate::strategy::Strategy::gen(&($strat), &mut rng); )+
                // Immediately-called temporary so `prop_assume!` can early-
                // return from the case without exiting the whole test fn.
                #[allow(clippy::redundant_closure_call)]
                (move || { $body })();
            }
        }
    )*};
}

/// `assert!` with proptest's name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the assumption does not hold.
///
/// Must appear directly in the `proptest!` body (the shim implements it as
/// an early return from the generated per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($item) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A(usize),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u8..=9, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=9).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vectors_respect_size(v in prop::collection::vec(0usize..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_arrays_options_compose(
            t in (0u32..4, any::<bool>()),
            a in prop::array::uniform3(0u64..2),
            o in crate::option::of(0u64..3),
        ) {
            prop_assert!(t.0 < 4);
            prop_assert!(a.iter().all(|&x| x < 2));
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
        }

        #[test]
        fn oneof_and_map_cover_variants(v in prop_oneof![
            (0usize..4).prop_map(Tag::A),
            Just(Tag::B),
        ]) {
            match v {
                Tag::A(x) => prop_assert!(x < 4),
                Tag::B => {}
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u64..10) {
            prop_assume!(n > 4);
            prop_assert!(n > 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 1..20);
        let a: Vec<u64> = strat.gen(&mut TestRng::deterministic(7));
        let b: Vec<u64> = strat.gen(&mut TestRng::deterministic(7));
        assert_eq!(a, b);
    }
}
