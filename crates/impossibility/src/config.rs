//! System configurations and their probabilistic successor relation.
//!
//! A configuration (paper §2) is the state of each processor together with
//! the contents of the shared registers. [`Config`] additionally tracks
//! which processors have been activated — needed to check nontriviality,
//! whose definition quantifies over *active* processors.
//!
//! [`successors`] enumerates every outcome of activating one processor:
//! the cross product of the `choose` branches (which operation the step
//! performs) and the `transit` branches (which state it moves to), each with
//! its exact probability.

use cil_sim::{Op, Protocol, Val};

/// One explicit configuration of the system.
///
/// `active` is a bitmask of processors that have taken at least one step
/// (capped at 64 processors — far beyond anything explicit-state checking
/// can explore anyway).
#[derive(Debug)]
pub struct Config<P: Protocol> {
    /// Internal state of each processor.
    pub states: Vec<P::State>,
    /// Contents of each register.
    pub regs: Vec<P::Reg>,
    /// Bitmask of processors activated so far.
    pub active: u64,
}

// Manual impls: derive would wrongly require `P: Clone` etc.
impl<P: Protocol> Clone for Config<P> {
    fn clone(&self) -> Self {
        Config {
            states: self.states.clone(),
            regs: self.regs.clone(),
            active: self.active,
        }
    }
}

impl<P: Protocol> PartialEq for Config<P> {
    fn eq(&self, other: &Self) -> bool {
        self.active == other.active && self.states == other.states && self.regs == other.regs
    }
}

impl<P: Protocol> Eq for Config<P> {}

impl<P: Protocol> std::hash::Hash for Config<P> {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        self.states.hash(h);
        self.regs.hash(h);
        self.active.hash(h);
    }
}

impl<P: Protocol> Config<P> {
    /// The initial configuration for the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != protocol.processes()`.
    pub fn initial(protocol: &P, inputs: &[Val]) -> Self {
        assert_eq!(
            inputs.len(),
            protocol.processes(),
            "one input per processor"
        );
        let states = inputs
            .iter()
            .enumerate()
            .map(|(pid, &v)| protocol.init(pid, v))
            .collect();
        let regs = protocol.registers().into_iter().map(|s| s.init).collect();
        Config {
            states,
            regs,
            active: 0,
        }
    }

    /// Decision of each processor in this configuration.
    pub fn decisions(&self, protocol: &P) -> Vec<Option<Val>> {
        self.states.iter().map(|s| protocol.decision(s)).collect()
    }

    /// The distinct decision values present (paper: "a configuration has a
    /// decision value v if some processor is in a decision state with v").
    pub fn decision_values(&self, protocol: &P) -> Vec<Val> {
        let mut vals: Vec<Val> = self
            .states
            .iter()
            .filter_map(|s| protocol.decision(s))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// Processors that may take a step: not yet decided. (Crashes are a
    /// scheduler phenomenon — in the configuration graph a crashed processor
    /// is simply one that is never scheduled again, so every subset of
    /// `eligible` pids is a legal future.)
    pub fn eligible(&self, protocol: &P) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| protocol.decision(&self.states[i]).is_none())
            .collect()
    }

    /// Whether some processor has decided.
    pub fn any_decided(&self, protocol: &P) -> bool {
        self.states.iter().any(|s| protocol.decision(s).is_some())
    }
}

/// All outcomes of activating `pid` in `cfg`, with exact probabilities.
///
/// # Panics
///
/// Panics if `pid` is not eligible (protocols must not be stepped past
/// their decision state) or if the protocol operates on unknown registers.
pub fn successors<P: Protocol>(protocol: &P, cfg: &Config<P>, pid: usize) -> Vec<(f64, Config<P>)> {
    successors_indexed(protocol, cfg, pid)
        .into_iter()
        .map(|s| (s.probability, s.config))
        .collect()
}

/// One outcome of [`successors_indexed`]: a successor configuration tagged
/// with the exact coin branches that produce it.
///
/// The branch indices are the explorer-facing coordinates of the step: the
/// DPOR explorer, `cil conc replay`, and the `cil prove` counterexample
/// extractor all force coins by `(choose, transit)` branch index, so a path
/// of `IndexedSuccessor`s is directly replayable.
#[derive(Debug)]
pub struct IndexedSuccessor<P: Protocol> {
    /// Index into the `choose` branch list that picked the operation.
    pub choose_idx: usize,
    /// Index into the `transit` branch list that picked the next state.
    pub transit_idx: usize,
    /// Exact probability of this outcome.
    pub probability: f64,
    /// The successor configuration.
    pub config: Config<P>,
}

/// Like [`successors`], but each outcome carries the `(choose, transit)`
/// branch indices that produce it — the coordinates a controlled replay
/// forces its coins with.
///
/// # Panics
///
/// Panics if `pid` is not eligible (protocols must not be stepped past
/// their decision state) or if the protocol operates on unknown registers.
pub fn successors_indexed<P: Protocol>(
    protocol: &P,
    cfg: &Config<P>,
    pid: usize,
) -> Vec<IndexedSuccessor<P>> {
    assert!(
        protocol.decision(&cfg.states[pid]).is_none(),
        "stepping a decided processor"
    );
    let mut out = Vec::new();
    let choice = protocol.choose(pid, &cfg.states[pid]);
    let op_total: f64 = choice.branches().iter().map(|&(w, _)| f64::from(w)).sum();
    for (ci, (w_op, op)) in choice.branches().iter().enumerate() {
        let p_op = f64::from(*w_op) / op_total;
        // Apply the operation to a copy of the registers.
        let mut regs = cfg.regs.clone();
        let read_value = match op {
            Op::Read(r) => Some(cfg.regs[r.0].clone()),
            Op::Write(r, v) => {
                regs[r.0] = v.clone();
                None
            }
        };
        let tr = protocol.transit(pid, &cfg.states[pid], op, read_value.as_ref());
        let tr_total: f64 = tr.branches().iter().map(|&(w, _)| f64::from(w)).sum();
        for (ti, (w_tr, next_state)) in tr.branches().iter().enumerate() {
            let p = p_op * f64::from(*w_tr) / tr_total;
            let mut states = cfg.states.clone();
            states[pid] = next_state.clone();
            out.push(IndexedSuccessor {
                choose_idx: ci,
                transit_idx: ti,
                probability: p,
                config: Config {
                    states,
                    regs: regs.clone(),
                    active: cfg.active | (1 << pid),
                },
            });
        }
    }
    out
}

/// Whether every enabled step of every processor is deterministic from every
/// configuration reachable within `max_configs` — i.e. the protocol is a
/// *deterministic* protocol in the paper's sense.
pub fn is_deterministic<P: Protocol>(protocol: &P, inputs: &[Val], max_configs: usize) -> bool {
    use std::collections::HashSet;
    let init = Config::initial(protocol, inputs);
    let mut seen: HashSet<Config<P>> = HashSet::new();
    let mut stack = vec![init];
    while let Some(cfg) = stack.pop() {
        if seen.len() > max_configs {
            return true; // bounded verdict: no branching seen so far
        }
        if !seen.insert(cfg.clone()) {
            continue;
        }
        for pid in cfg.eligible(protocol) {
            if !protocol.choose(pid, &cfg.states[pid]).is_det() {
                return false;
            }
            let succs = successors(protocol, &cfg, pid);
            if succs.len() > 1 {
                return false;
            }
            for (_, s) in succs {
                stack.push(s);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_core::deterministic::{DetRule, DetTwo};
    use cil_core::two::TwoProcessor;

    #[test]
    fn initial_config_has_bot_registers_and_no_activity() {
        let p = TwoProcessor::new();
        let c = Config::initial(&p, &[Val::A, Val::B]);
        assert_eq!(c.regs, vec![None, None]);
        assert_eq!(c.active, 0);
        assert!(c.decision_values(&p).is_empty());
        assert_eq!(c.eligible(&p), vec![0, 1]);
    }

    #[test]
    fn successor_probabilities_sum_to_one() {
        let p = TwoProcessor::new();
        let c0 = Config::initial(&p, &[Val::A, Val::B]);
        // Drive P0 to its coin-flip state: write, then read the other's b.
        let c1 = successors(&p, &c0, 0).pop().unwrap().1;
        let c2 = successors(&p, &c1, 1).pop().unwrap().1;
        let c3 = successors(&p, &c2, 0).pop().unwrap().1; // read -> conflict
        let branches = successors(&p, &c3, 0); // coin write
        assert_eq!(branches.len(), 2);
        let total: f64 = branches.iter().map(|(p, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((branches[0].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn active_mask_tracks_steppers() {
        let p = TwoProcessor::new();
        let c0 = Config::initial(&p, &[Val::A, Val::A]);
        let c1 = &successors(&p, &c0, 1)[0].1;
        assert_eq!(c1.active, 0b10);
        let c2 = &successors(&p, c1, 0)[0].1;
        assert_eq!(c2.active, 0b11);
    }

    #[test]
    fn randomized_protocol_is_detected_as_randomized() {
        let p = TwoProcessor::new();
        assert!(!is_deterministic(&p, &[Val::A, Val::B], 100_000));
    }

    #[test]
    fn deterministic_protocol_is_detected_as_deterministic() {
        for rule in DetRule::ALL {
            let p = DetTwo::new(rule);
            assert!(is_deterministic(&p, &[Val::A, Val::B], 100_000), "{rule}");
        }
    }
}
