//! Hash-consed, symmetry-reduced, parallel backend for exact analysis.
//!
//! The dense [`crate::mdp::MdpSolver`] keys its configuration space on
//! cloned [`Config`] values — correct, but memory-heavy and blind to the
//! protocols' symmetries. This module scales the same analyses:
//!
//! * **Hash-consing** — processor states and register contents are interned
//!   once into u32-indexed arenas; a configuration key is a flat `Box<[u32]>`
//!   of arena ids, so the visited-set stores words, not cloned structs.
//! * **Symmetry reduction** — before interning, a configuration is
//!   canonicalized under the protocol's [`Symmetric`] automorphisms
//!   (value-relabeling and processor swaps): one representative per orbit.
//! * **Bisimulation merging** — in full (non-depth-bounded) builds, decided
//!   processor states collapse to a single `MERGED` token (the dynamics
//!   never read a decided state, and the objectives only need the decided
//!   *bit*, kept separately per class), and a register whose every allowed
//!   reader has decided collapses to a `DEAD` token (no eligible processor
//!   can ever observe it again).
//! * **CSR transitions** — moves and probabilistic branches live in flat
//!   offset-indexed vectors, cache-friendly for value iteration.
//! * **Parallel Jacobi value iteration** — sweeps fill a scratch vector
//!   from the previous iterate across a scoped thread pool; each entry is a
//!   pure function of the previous vector, and the convergence delta is
//!   reduced serially, so the [`Solve`] is byte-identical at any job count.
//!
//! Protocols with unbounded registers (the paper's §5 family) get
//! **depth-bounded** builds: configurations at the depth limit keep an
//! empty move list, exactly mirroring [`MdpSolver::build_bounded`] on the
//! dense side, so the two backends stay cross-validatable. Depth-bounded
//! builds key on the activation mask and switch bisimulation merging off —
//! BFS depth is preserved by initial-configuration-fixing automorphisms but
//! not by the coarser merges, and truncation must cut both backends at the
//! same places.
//!
//! [`MdpSolver::build_bounded`]: crate::mdp::MdpSolver::build_bounded

use crate::config::{successors, Config};
use crate::explore::{LevelStats, Report, Violation};
use crate::mdp::{Objective, Solve};
use crate::symmetry::{applicable_elems, automorphism_elems, SymElem, Symmetric};
use cil_obs::metrics::Registry;
use cil_registers::ReaderSet;
use cil_sim::{Adversary, Val, View};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Arena token for a decided processor state (full builds only).
const MERGED: u32 = u32::MAX;
/// Arena token for a register none of whose allowed readers can still step.
/// Lives in register slots, so it cannot collide with [`MERGED`].
const DEAD: u32 = u32::MAX;

/// A deduplicating arena: each distinct value gets a dense u32 id.
struct Interner<T> {
    map: HashMap<T, u32>,
    items: Vec<T>,
}

impl<T: Clone + Eq + Hash> Interner<T> {
    fn new() -> Self {
        Interner {
            map: HashMap::new(),
            items: Vec::new(),
        }
    }

    fn intern(&mut self, t: &T) -> u32 {
        if let Some(&id) = self.map.get(t) {
            return id;
        }
        let id = u32::try_from(self.items.len()).expect("arena overflow");
        assert!(id < DEAD, "arena collides with the sentinel tokens");
        self.items.push(t.clone());
        self.map.insert(t.clone(), id);
        id
    }

    fn lookup(&self, t: &T) -> Option<u32> {
        self.map.get(t).copied()
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

/// Options for [`CompactMdp::build`].
#[derive(Debug, Clone)]
pub struct CompactOptions {
    /// Upper bound on the number of canonical classes; exceeding it is a
    /// build error rather than a panic.
    pub max_configs: usize,
    /// `Some(d)` truncates the BFS at depth `d`: configurations there keep
    /// an empty move list (their value stays 0, as in the dense
    /// depth-bounded build). Required for protocols whose reachable space
    /// is infinite.
    pub max_depth: Option<usize>,
    /// The processor singled out by the intended objective
    /// ([`Objective::StepsOf`] or a survival target). Symmetry elements
    /// that move this processor are discarded; `None` (for
    /// [`Objective::TotalSteps`]) keeps them all.
    pub target: Option<usize>,
    /// Canonicalize under the protocol's [`Symmetric`] elements.
    pub use_symmetry: bool,
    /// Merge decided states and dead registers (full builds only; forced
    /// off under `max_depth`, which needs depth-exact classes).
    pub merge_decided: bool,
}

impl Default for CompactOptions {
    fn default() -> Self {
        CompactOptions {
            max_configs: 2_000_000,
            max_depth: None,
            target: None,
            use_symmetry: true,
            merge_decided: true,
        }
    }
}

/// Build statistics of a [`CompactMdp`] (or a [`CompactExplorer`] run).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactStats {
    /// Canonical configuration classes enumerated.
    pub classes: usize,
    /// Adversary moves (config × eligible pid pairs).
    pub moves: usize,
    /// Probabilistic branches after merging by target class.
    pub transitions: usize,
    /// Successor encodings that hit an existing class.
    pub dedup_hits: u64,
    /// Canonicalizations where a non-identity symmetry produced the key.
    pub sym_hits: u64,
    /// Peak size of the BFS queue.
    pub frontier_peak: usize,
    /// Configurations whose expansion was suppressed by the depth bound.
    pub truncated: usize,
    /// Distinct processor states interned.
    pub interned_states: usize,
    /// Distinct register contents interned.
    pub interned_regs: usize,
}

/// Shared key-encoding machinery: interners plus the merge/canonicalize
/// policy. A key is `n` state words, then `m` register words, then (when
/// `include_active`) the two halves of the activation mask.
struct Encoder<P: Symmetric> {
    states: Interner<P::State>,
    regs: Interner<P::Reg>,
    /// Allowed readers per register; `None` = every processor.
    reg_readers: Vec<Option<Vec<usize>>>,
    n: usize,
    include_active: bool,
    merge_decided: bool,
    merge_dead_regs: bool,
    elems: Vec<SymElem<P>>,
}

impl<P: Symmetric> Encoder<P> {
    fn new(
        protocol: &P,
        elems: Vec<SymElem<P>>,
        include_active: bool,
        merge_decided: bool,
        merge_dead_regs: bool,
    ) -> Self {
        let reg_readers = protocol
            .registers()
            .into_iter()
            .map(|spec| match spec.readers {
                ReaderSet::All => None,
                ReaderSet::Only(pids) => Some(pids.into_iter().map(|p| p.0).collect()),
            })
            .collect();
        Encoder {
            states: Interner::new(),
            regs: Interner::new(),
            reg_readers,
            n: protocol.processes(),
            include_active,
            merge_decided,
            merge_dead_regs,
            elems,
        }
    }

    fn decided_mask(&self, protocol: &P, cfg: &Config<P>) -> u64 {
        let mut mask = 0u64;
        for (i, s) in cfg.states.iter().enumerate() {
            if protocol.decision(s).is_some() {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// A register is dead when every allowed reader has decided, or when
    /// the protocol's [`Symmetric::register_dead`] liveness hint claims it
    /// can never be read again.
    fn reg_dead(&self, protocol: &P, cfg: &Config<P>, reg: usize, decided: u64) -> bool {
        let readers_done = match &self.reg_readers[reg] {
            None => decided.count_ones() as usize == self.n,
            Some(readers) => readers.iter().all(|&p| decided & (1 << p) != 0),
        };
        readers_done || protocol.register_dead(reg, cfg)
    }

    fn push_active(&self, key: &mut Vec<u32>, active: u64) {
        if self.include_active {
            key.push(active as u32);
            key.push((active >> 32) as u32);
        }
    }

    /// Encodes one configuration, interning fresh states and registers.
    fn encode(&mut self, protocol: &P, cfg: &Config<P>) -> (Vec<u32>, u64) {
        let decided = self.decided_mask(protocol, cfg);
        let mut key = Vec::with_capacity(cfg.states.len() + cfg.regs.len() + 2);
        for (i, s) in cfg.states.iter().enumerate() {
            if self.merge_decided && decided & (1 << i) != 0 {
                key.push(MERGED);
            } else {
                key.push(self.states.intern(s));
            }
        }
        for (j, r) in cfg.regs.iter().enumerate() {
            if self.merge_dead_regs && self.reg_dead(protocol, cfg, j, decided) {
                key.push(DEAD);
            } else {
                key.push(self.regs.intern(r));
            }
        }
        self.push_active(&mut key, cfg.active);
        (key, decided)
    }

    /// The canonical (minimal) key over the identity and every symmetry
    /// element, its decided mask, and the index of the winning non-identity
    /// element (`None` = the configuration already encodes minimally).
    ///
    /// Every variant's states and registers are interned, so later
    /// read-only lookups of any orbit member can succeed.
    fn canonical(&mut self, protocol: &P, cfg: &Config<P>) -> (Box<[u32]>, u64, Option<usize>) {
        let variants: Vec<Config<P>> = self.elems.iter().map(|e| e.apply(cfg)).collect();
        let (mut best, mut best_decided) = self.encode(protocol, cfg);
        let mut winner = None;
        for (ei, v) in variants.iter().enumerate() {
            let (key, decided) = self.encode(protocol, v);
            if key < best {
                best = key;
                best_decided = decided;
                winner = Some(ei);
            }
        }
        (best.into_boxed_slice(), best_decided, winner)
    }

    /// Encodes without interning; `None` if some state or register was
    /// never interned during the build (the configuration is off-graph).
    fn encode_readonly(&self, protocol: &P, cfg: &Config<P>) -> Option<Vec<u32>> {
        let decided = self.decided_mask(protocol, cfg);
        let mut key = Vec::with_capacity(cfg.states.len() + cfg.regs.len() + 2);
        for (i, s) in cfg.states.iter().enumerate() {
            if self.merge_decided && decided & (1 << i) != 0 {
                key.push(MERGED);
            } else {
                key.push(self.states.lookup(s)?);
            }
        }
        for (j, r) in cfg.regs.iter().enumerate() {
            if self.merge_dead_regs && self.reg_dead(protocol, cfg, j, decided) {
                key.push(DEAD);
            } else {
                key.push(self.regs.lookup(r)?);
            }
        }
        self.push_active(&mut key, cfg.active);
        Some(key)
    }

    /// Read-only canonicalization: the minimal encodable key over the
    /// identity and all elements, plus the index of the winning element
    /// (`None` = identity). Used by the policy adversary at replay time.
    fn canonical_readonly(
        &self,
        protocol: &P,
        cfg: &Config<P>,
    ) -> Option<(Vec<u32>, Option<usize>)> {
        let mut best: Option<(Vec<u32>, Option<usize>)> =
            self.encode_readonly(protocol, cfg).map(|k| (k, None));
        for (ei, e) in self.elems.iter().enumerate() {
            let variant = e.apply(cfg);
            if let Some(key) = self.encode_readonly(protocol, &variant) {
                if best.as_ref().is_none_or(|(b, _)| key < *b) {
                    best = Some((key, Some(ei)));
                }
            }
        }
        best
    }
}

/// The compact exact-adversary engine: a hash-consed, symmetry-reduced
/// MDP over canonical configuration classes, with CSR transitions.
pub struct CompactMdp<P: Symmetric> {
    enc: Encoder<P>,
    class_of: HashMap<Box<[u32]>, u32>,
    /// Move rows per class: moves of class `i` are
    /// `row_off[i]..row_off[i+1]`.
    row_off: Vec<usize>,
    /// Stepping processor per move.
    move_pid: Vec<u32>,
    /// Branches of move `m` are `branch_off[m]..branch_off[m+1]`.
    branch_off: Vec<usize>,
    branch_p: Vec<f64>,
    branch_to: Vec<u32>,
    /// Decided-processor bitmask per class.
    key_decided: Vec<u64>,
    /// The symmetry element that mapped each class's first-seen
    /// representative onto the canonical key (`None` = the representative
    /// encodes minimally itself). CSR move pids live in the
    /// *representative's* frame; policy lookups compose this with the query
    /// configuration's own winning element to translate between frames.
    rep_winner: Vec<Option<usize>>,
    n_procs: usize,
    target: Option<usize>,
    stats: CompactStats,
}

impl<P: Symmetric> CompactMdp<P> {
    /// Enumerates the canonical class space by BFS and builds the CSR
    /// transition structure. Class 0 is the initial configuration's class.
    ///
    /// # Errors
    ///
    /// Returns an error when the class count exceeds
    /// [`CompactOptions::max_configs`] — callers either raise the bound or
    /// switch to a depth-bounded build.
    pub fn build(protocol: &P, inputs: &[Val], opts: &CompactOptions) -> Result<Self, String> {
        let depth_bounded = opts.max_depth.is_some();
        // Full builds quotient by every dynamics automorphism compatible
        // with the objective: the value of a class depends only on its
        // future, so the elements need not fix the initial configuration.
        // Depth-bounded builds must stay depth-exact (the truncation
        // frontier has to match the dense solver's), which only init-fixing
        // elements guarantee.
        let elems = if !opts.use_symmetry {
            Vec::new()
        } else if depth_bounded {
            applicable_elems(protocol, inputs, opts.target)
        } else {
            automorphism_elems(protocol, inputs, opts.target)
        };
        let merge = opts.merge_decided && !depth_bounded;
        let mut enc = Encoder::new(protocol, elems, depth_bounded, merge, merge);
        let mut class_of: HashMap<Box<[u32]>, u32> = HashMap::new();
        let mut key_decided: Vec<u64> = Vec::new();
        let mut rep_winner: Vec<Option<usize>> = Vec::new();
        let mut row_off = vec![0usize];
        let mut move_pid: Vec<u32> = Vec::new();
        let mut branch_off = vec![0usize];
        let mut branch_p: Vec<f64> = Vec::new();
        let mut branch_to: Vec<u32> = Vec::new();
        let mut stats = CompactStats::default();

        let init = Config::initial(protocol, inputs);
        let (k0, d0, w0) = enc.canonical(protocol, &init);
        class_of.insert(k0, 0);
        key_decided.push(d0);
        rep_winner.push(w0);
        // FIFO: classes are processed in id order, so CSR rows line up.
        let mut queue: VecDeque<(Config<P>, usize)> = VecDeque::new();
        queue.push_back((init, 0));
        stats.frontier_peak = 1;

        while let Some((cfg, depth)) = queue.pop_front() {
            if opts.max_depth.is_some_and(|d| depth >= d) {
                stats.truncated += 1;
                row_off.push(move_pid.len());
                continue;
            }
            for pid in cfg.eligible(protocol) {
                move_pid.push(pid as u32);
                let mut acc: Vec<(u32, f64)> = Vec::new();
                for (p, succ) in successors(protocol, &cfg, pid) {
                    let (key, decided, winner) = enc.canonical(protocol, &succ);
                    if winner.is_some() {
                        stats.sym_hits += 1;
                    }
                    let id = match class_of.get(&key) {
                        Some(&id) => {
                            stats.dedup_hits += 1;
                            id
                        }
                        None => {
                            if key_decided.len() >= opts.max_configs {
                                return Err(format!(
                                    "class space exceeds {} configurations; raise \
                                     max_configs or bound the depth",
                                    opts.max_configs
                                ));
                            }
                            let id = key_decided.len() as u32;
                            class_of.insert(key, id);
                            key_decided.push(decided);
                            rep_winner.push(winner);
                            queue.push_back((succ, depth + 1));
                            id
                        }
                    };
                    match acc.iter_mut().find(|(to, _)| *to == id) {
                        Some((_, q)) => *q += p,
                        None => acc.push((id, p)),
                    }
                }
                for (to, p) in acc {
                    branch_to.push(to);
                    branch_p.push(p);
                }
                branch_off.push(branch_to.len());
            }
            row_off.push(move_pid.len());
            stats.frontier_peak = stats.frontier_peak.max(queue.len());
        }

        stats.classes = key_decided.len();
        stats.moves = move_pid.len();
        stats.transitions = branch_to.len();
        stats.interned_states = enc.states.len();
        stats.interned_regs = enc.regs.len();
        debug_assert_eq!(row_off.len(), key_decided.len() + 1);
        Ok(CompactMdp {
            enc,
            class_of,
            row_off,
            move_pid,
            branch_off,
            branch_p,
            branch_to,
            key_decided,
            rep_winner,
            n_procs: protocol.processes(),
            target: opts.target,
            stats,
        })
    }

    /// Number of canonical classes.
    pub fn size(&self) -> usize {
        self.key_decided.len()
    }

    /// Build statistics.
    pub fn stats(&self) -> &CompactStats {
        &self.stats
    }

    /// Publishes the build statistics as `mdp.*` gauges and counters.
    pub fn export_metrics(&self, registry: &Registry) {
        registry.gauge("mdp.configs").set(self.stats.classes as u64);
        registry
            .gauge("mdp.transitions")
            .set(self.stats.transitions as u64);
        registry
            .gauge("mdp.frontier_peak")
            .set(self.stats.frontier_peak as u64);
        registry
            .counter("mdp.dedup_hits")
            .add(self.stats.dedup_hits);
        registry.counter("mdp.sym_hits").add(self.stats.sym_hits);
    }

    /// The class of a raw configuration, if it is on the enumerated graph.
    pub fn find(&self, protocol: &P, cfg: &Config<P>) -> Option<u32> {
        let (key, _) = self.enc.canonical_readonly(protocol, cfg)?;
        self.class_of.get(key.as_slice()).copied()
    }

    fn check_target(&self, wanted: usize) {
        assert!(
            self.enc.elems.is_empty() || self.target == Some(wanted),
            "this build canonicalized with target {:?}; rebuild with target \
             Some({wanted}) before analyzing that processor",
            self.target
        );
    }

    /// A borrowed view of the CSR arrays. `Copy`, and `Sync` independent of
    /// `P` — parallel sweeps capture this instead of `&self`, so value
    /// iteration needs no `Send`/`Sync` bounds on protocol types.
    fn csr(&self) -> CsrView<'_> {
        CsrView {
            row_off: &self.row_off,
            move_pid: &self.move_pid,
            branch_off: &self.branch_off,
            branch_p: &self.branch_p,
            branch_to: &self.branch_to,
            key_decided: &self.key_decided,
            n_procs: self.n_procs,
        }
    }

    /// Worst-case expected cost by parallel Jacobi value iteration.
    ///
    /// Converges from below to the same least fixpoint as the dense
    /// Gauss–Seidel solver. Every scratch entry is a pure function of the
    /// previous iterate and the convergence delta is reduced serially, so
    /// the result is byte-identical at any `jobs` count (`0` = available
    /// parallelism).
    ///
    /// # Panics
    ///
    /// Panics if the objective singles out a processor the build's
    /// symmetry target does not fix.
    pub fn expected_steps(
        &self,
        objective: Objective,
        tol: f64,
        max_iter: usize,
        jobs: usize,
    ) -> Solve {
        if let Objective::StepsOf(t) = objective {
            self.check_target(t);
        }
        let jobs = cil_sim::resolve_jobs(jobs);
        let csr = self.csr();
        let n = self.size();
        let mut v = vec![0.0f64; n];
        let mut v_next = vec![0.0f64; n];
        let mut iterations = 0;
        let mut residuals = Vec::new();
        let mut sweep_ns = Vec::new();
        for it in 0..max_iter {
            iterations = it + 1;
            let sweep_started = std::time::Instant::now();
            {
                let v = &v;
                fill_parallel(&mut v_next, jobs, |i| csr.sweep_value(i, objective, v));
            }
            let mut delta = 0.0f64;
            for i in 0..n {
                delta = delta.max((v_next[i] - v[i]).abs());
            }
            std::mem::swap(&mut v, &mut v_next);
            residuals.push(delta);
            sweep_ns.push(u64::try_from(sweep_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            if delta < tol {
                break;
            }
        }
        let policy = (0..n)
            .map(|i| {
                csr.best_move(i, objective, &v)
                    .map(|m| self.move_pid[m] as usize)
            })
            .collect();
        Solve {
            value: v[0],
            values: v,
            policy,
            iterations,
            residuals,
            sweep_ns,
        }
    }

    /// Worst-case survival curve: for `k = 0..=k_max`, the supremum over
    /// adversaries of `P[target undecided after k more of its own
    /// activations]` from the initial class. Layered least fixpoints, each
    /// solved by the same deterministic parallel Jacobi sweep.
    ///
    /// # Panics
    ///
    /// Panics if the build's symmetry target does not fix `target`.
    pub fn survival(
        &self,
        target: usize,
        k_max: usize,
        tol: f64,
        max_iter: usize,
        jobs: usize,
    ) -> Vec<f64> {
        self.check_target(target);
        let jobs = cil_sim::resolve_jobs(jobs);
        let csr = self.csr();
        let n = self.size();
        let undecided = |i: usize| self.key_decided[i] & (1 << target) == 0;
        let mut prev: Vec<f64> = (0..n).map(|i| f64::from(u8::from(undecided(i)))).collect();
        let mut curve = vec![prev[0]];
        for _k in 1..=k_max {
            let mut g = vec![0.0f64; n];
            let mut g_next = vec![0.0f64; n];
            for _ in 0..max_iter {
                {
                    let (g, prev) = (&g, &prev);
                    fill_parallel(&mut g_next, jobs, |i| {
                        csr.survival_sweep(i, target, prev, g)
                    });
                }
                let mut delta = 0.0f64;
                for i in 0..n {
                    delta = delta.max((g_next[i] - g[i]).abs());
                }
                std::mem::swap(&mut g, &mut g_next);
                if delta < tol {
                    break;
                }
            }
            curve.push(g[0]);
            prev = g;
        }
        curve
    }

    /// The optimal adversary of a solve, replayable in Monte-Carlo runs.
    /// At pick time the observed configuration is canonicalized, the class
    /// policy is looked up, and the chosen processor is mapped back through
    /// the winning symmetry element.
    ///
    /// # Panics
    ///
    /// Panics on depth-bounded builds: their keys embed the activation
    /// mask, which a simulator view does not carry.
    pub fn policy_adversary<'m>(
        &'m self,
        protocol: &'m P,
        solve: &Solve,
    ) -> CompactPolicyAdversary<'m, P> {
        assert!(
            !self.enc.include_active,
            "policy export needs a full (non-depth-bounded) build"
        );
        CompactPolicyAdversary {
            mdp: self,
            protocol,
            policy: solve.policy.clone(),
        }
    }

    /// The policy's decision for a raw configuration: the processor the
    /// optimal adversary schedules there, mapped back from the canonical
    /// class, or `None` for off-graph or absorbing configurations.
    pub fn decide_config(
        &self,
        protocol: &P,
        cfg: &Config<P>,
        policy: &[Option<usize>],
    ) -> Option<usize> {
        let (key, winner) = self.enc.canonical_readonly(protocol, cfg)?;
        let class = self.class_of.get(key.as_slice()).copied()?;
        let policy_pid = policy[class as usize]?;
        // CSR moves are recorded in the frame of the class's first-seen
        // representative r. Translate to the canonical frame with r's
        // winning element σ_r, then back to `cfg`'s frame with σ_c⁻¹.
        let pid_canon = match self.rep_winner[class as usize] {
            None => policy_pid,
            Some(ri) => self.enc.elems[ri].proc_perm[policy_pid],
        };
        Some(match winner {
            None => pid_canon,
            Some(ei) => self.enc.elems[ei].preimage_pid(pid_canon),
        })
    }
}

/// Borrowed CSR arrays of a [`CompactMdp`]: everything a value-iteration
/// sweep reads, with no protocol types attached (so it is `Sync` for any
/// `P` and parallel sweeps need no bounds on protocol states).
#[derive(Clone, Copy)]
struct CsrView<'a> {
    row_off: &'a [usize],
    move_pid: &'a [u32],
    branch_off: &'a [usize],
    branch_p: &'a [f64],
    branch_to: &'a [u32],
    key_decided: &'a [u64],
    n_procs: usize,
}

impl CsrView<'_> {
    fn absorbing(&self, class: usize, objective: Objective) -> bool {
        match objective {
            Objective::StepsOf(t) => self.key_decided[class] & (1 << t) != 0,
            Objective::TotalSteps => self.key_decided[class].count_ones() as usize == self.n_procs,
        }
    }

    fn move_value(&self, m: usize, cost: f64, v: &[f64]) -> f64 {
        let mut val = cost;
        for b in self.branch_off[m]..self.branch_off[m + 1] {
            val += self.branch_p[b] * v[self.branch_to[b] as usize];
        }
        val
    }

    fn cost(&self, m: usize, objective: Objective) -> f64 {
        match objective {
            Objective::StepsOf(t) => f64::from(u8::from(self.move_pid[m] as usize == t)),
            Objective::TotalSteps => 1.0,
        }
    }

    /// One Jacobi update: the best move value of `class` against `v`.
    fn sweep_value(&self, class: usize, objective: Objective, v: &[f64]) -> f64 {
        if self.absorbing(class, objective) {
            return 0.0;
        }
        let (lo, hi) = (self.row_off[class], self.row_off[class + 1]);
        if lo == hi {
            // Depth-truncated: the value stays put (0), as in the dense
            // bounded build.
            return v[class];
        }
        let mut best = f64::NEG_INFINITY;
        for m in lo..hi {
            let val = self.move_value(m, self.cost(m, objective), v);
            if val > best {
                best = val;
            }
        }
        best
    }

    /// The argmax move of `class` under `v` (first maximum in CSR order,
    /// matching the dense solver's strict-improvement scan).
    fn best_move(&self, class: usize, objective: Objective, v: &[f64]) -> Option<usize> {
        if self.absorbing(class, objective) {
            return None;
        }
        let mut best = f64::NEG_INFINITY;
        let mut best_move = None;
        for m in self.row_off[class]..self.row_off[class + 1] {
            let val = self.move_value(m, self.cost(m, objective), v);
            if val > best {
                best = val;
                best_move = Some(m);
            }
        }
        best_move
    }

    /// One survival-layer Jacobi update: target moves read the previous
    /// layer `prev`, non-target moves the current iterate `g`.
    fn survival_sweep(&self, class: usize, target: usize, prev: &[f64], g: &[f64]) -> f64 {
        if self.key_decided[class] & (1 << target) != 0 {
            return 0.0;
        }
        let mut best = 0.0f64;
        for m in self.row_off[class]..self.row_off[class + 1] {
            let src = if self.move_pid[m] as usize == target {
                prev
            } else {
                g
            };
            best = best.max(self.move_value(m, 0.0, src));
        }
        best
    }
}

/// Fills `out[i] = f(i)` over a scoped thread pool. Chunked by index range,
/// so the result is independent of the job count; small problems and
/// `jobs <= 1` fall back to the serial loop.
fn fill_parallel<F: Fn(usize) -> f64 + Sync>(out: &mut [f64], jobs: usize, f: F) {
    let n = out.len();
    if jobs <= 1 || n < 4096 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = n.div_ceil(jobs);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = out;
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let start = base;
            scope.spawn(move || {
                for (i, slot) in head.iter_mut().enumerate() {
                    *slot = f(start + i);
                }
            });
            base += take;
            rest = tail;
        }
    });
}

/// The optimal adversary of a [`CompactMdp`] solve, usable as a
/// [`cil_sim::Adversary`]. Borrows the engine for canonical lookups.
pub struct CompactPolicyAdversary<'m, P: Symmetric> {
    mdp: &'m CompactMdp<P>,
    protocol: &'m P,
    policy: Vec<Option<usize>>,
}

impl<P: Symmetric> std::fmt::Debug for CompactPolicyAdversary<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CompactPolicyAdversary({} classes)", self.mdp.size())
    }
}

impl<P: Symmetric> Adversary<P> for CompactPolicyAdversary<'_, P> {
    fn pick(&mut self, view: &View<'_, P>) -> usize {
        let cfg = Config {
            states: view.states.to_vec(),
            regs: view.regs.to_vec(),
            active: 0, // full builds do not key on activation
        };
        if let Some(pid) = self.mdp.decide_config(self.protocol, &cfg, &self.policy) {
            if !view.crashed[pid] && view.protocol.decision(&view.states[pid]).is_none() {
                return pid;
            }
        }
        view.eligible()[0]
    }

    fn name(&self) -> String {
        "compact-mdp-optimal".into()
    }
}

/// Symmetry-reduced exhaustive safety checking: the compact counterpart of
/// [`crate::explore::Explorer`], producing the same [`Report`] shape over
/// canonical classes. Decided states and dead registers are **not** merged
/// (consistency needs decision values), and keys embed the activation mask
/// (nontriviality needs it); only symmetry quotients the space. Checks run
/// on class representatives, which is sound because every checked property
/// is invariant under initial-configuration-fixing automorphisms.
pub struct CompactExplorer<'p, P: Symmetric> {
    protocol: &'p P,
    inputs: Vec<Val>,
    max_depth: usize,
    max_configs: usize,
    use_symmetry: bool,
    #[allow(clippy::type_complexity)]
    invariant: Option<Box<dyn Fn(&Config<P>) -> Result<(), String> + Send + Sync + 'p>>,
    #[allow(clippy::type_complexity)]
    on_level: Option<Box<dyn Fn(&LevelStats) + Send + Sync + 'p>>,
}

impl<'p, P: Symmetric> CompactExplorer<'p, P> {
    /// Creates an explorer from the given initial inputs.
    pub fn new(protocol: &'p P, inputs: &[Val]) -> Self {
        CompactExplorer {
            protocol,
            inputs: inputs.to_vec(),
            max_depth: usize::MAX,
            max_configs: 5_000_000,
            use_symmetry: true,
            invariant: None,
            on_level: None,
        }
    }

    /// Bounds the BFS depth.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Bounds the number of distinct canonical classes.
    pub fn max_configs(mut self, m: usize) -> Self {
        self.max_configs = m;
        self
    }

    /// Disables symmetry reduction (the run then degenerates to a
    /// hash-consed replica of the serial dense explorer).
    pub fn use_symmetry(mut self, on: bool) -> Self {
        self.use_symmetry = on;
        self
    }

    /// Adds an invariant checked on every class representative. It must be
    /// invariant under the protocol's symmetries, like the built-in checks.
    pub fn check_invariant(
        mut self,
        f: impl Fn(&Config<P>) -> Result<(), String> + Send + Sync + 'p,
    ) -> Self {
        self.invariant = Some(Box::new(f));
        self
    }

    /// Registers a callback invoked once per completed BFS level.
    pub fn on_level(mut self, f: impl Fn(&LevelStats) + Send + Sync + 'p) -> Self {
        self.on_level = Some(Box::new(f));
        self
    }

    /// Runs the exploration, returning the report and build statistics.
    ///
    /// The loop replays the serial dense explorer's queue discipline —
    /// violation cap, depth bound, class-count cutoff, per-level records —
    /// over canonical classes instead of raw configurations.
    pub fn run_with_stats(self) -> (Report, CompactStats) {
        let protocol = self.protocol;
        let elems = if self.use_symmetry {
            applicable_elems(protocol, &self.inputs, None)
        } else {
            Vec::new()
        };
        let mut enc = Encoder::new(protocol, elems, true, false, false);
        let mut stats = CompactStats::default();
        let mut seen: HashMap<Box<[u32]>, ()> = HashMap::new();
        let mut queue: VecDeque<(Config<P>, usize)> = VecDeque::new();
        let mut violations = Vec::new();
        let mut complete = true;
        let mut max_depth_seen = 0;
        let mut levels: Vec<LevelStats> = Vec::new();
        let mut level = LevelStats {
            depth: 0,
            frontier: 0,
            generated: 0,
            fresh: 0,
        };
        let mut stopped_mid_level = false;

        let init = Config::initial(protocol, &self.inputs);
        let (k0, _, _) = enc.canonical(protocol, &init);
        seen.insert(k0, ());
        queue.push_back((init, 0));
        stats.frontier_peak = 1;

        while let Some((cfg, depth)) = queue.pop_front() {
            if depth > level.depth {
                levels.push(level);
                if let Some(f) = &self.on_level {
                    f(&level);
                }
                level = LevelStats {
                    depth,
                    frontier: 0,
                    generated: 0,
                    fresh: 0,
                };
            }
            level.frontier += 1;
            max_depth_seen = max_depth_seen.max(depth);
            let dvals = cfg.decision_values(protocol);
            if dvals.len() > 1 {
                violations.push(Violation::Inconsistent {
                    values: dvals.clone(),
                    depth,
                });
            }
            for v in &dvals {
                let ok = self
                    .inputs
                    .iter()
                    .enumerate()
                    .any(|(i, inp)| cfg.active & (1 << i) != 0 && inp == v);
                if !ok {
                    violations.push(Violation::Trivial { value: *v, depth });
                }
            }
            if let Some(inv) = &self.invariant {
                if let Err(message) = inv(&cfg) {
                    violations.push(Violation::Invariant { message, depth });
                }
            }
            if violations.len() > 100 {
                complete = false;
                stopped_mid_level = true;
                break;
            }
            if depth >= self.max_depth {
                complete = false;
                continue;
            }
            for pid in cfg.eligible(protocol) {
                for (_, succ) in successors(protocol, &cfg, pid) {
                    level.generated += 1;
                    if seen.len() >= self.max_configs {
                        complete = false;
                        continue;
                    }
                    let (key, _, winner) = enc.canonical(protocol, &succ);
                    if winner.is_some() {
                        stats.sym_hits += 1;
                    }
                    if seen.insert(key, ()).is_none() {
                        level.fresh += 1;
                        queue.push_back((succ, depth + 1));
                    } else {
                        stats.dedup_hits += 1;
                    }
                }
            }
            stats.frontier_peak = stats.frontier_peak.max(queue.len());
        }
        if !stopped_mid_level && level.frontier > 0 {
            levels.push(level);
            if let Some(f) = &self.on_level {
                f(&level);
            }
        }

        stats.classes = seen.len();
        stats.interned_states = enc.states.len();
        stats.interned_regs = enc.regs.len();
        let report = Report {
            explored: seen.len(),
            violations,
            complete,
            max_depth: max_depth_seen,
            levels,
        };
        (report, stats)
    }

    /// Runs the exploration.
    pub fn run(self) -> Report {
        self.run_with_stats().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::mdp::MdpSolver;
    use cil_core::kvalued::KValued;
    use cil_core::two::TwoProcessor;

    fn opts(target: Option<usize>) -> CompactOptions {
        CompactOptions {
            target,
            ..CompactOptions::default()
        }
    }

    #[test]
    fn theorem_7_corollary_survives_the_compact_backend() {
        let p = TwoProcessor::new();
        let m = CompactMdp::build(&p, &[Val::A, Val::B], &opts(Some(0))).unwrap();
        let s = m.expected_steps(Objective::StepsOf(0), 1e-12, 100_000, 1);
        assert!((s.value - 10.0).abs() < 1e-6, "value {}", s.value);
        // Fewer classes than dense configurations.
        let dense = MdpSolver::build(&p, &[Val::A, Val::B], 100_000);
        assert!(m.size() < dense.size(), "{} !< {}", m.size(), dense.size());
    }

    #[test]
    fn survival_curve_still_pins_three_quarters() {
        let p = TwoProcessor::new();
        let m = CompactMdp::build(&p, &[Val::A, Val::B], &opts(Some(0))).unwrap();
        let curve = m.survival(0, 20, 1e-13, 200_000, 1);
        for j in 0..=9 {
            let expect = 0.75f64.powi(j as i32);
            assert!(
                (curve[2 + 2 * j] - expect).abs() < 1e-9,
                "survival({}) = {}, want {expect}",
                2 + 2 * j,
                curve[2 + 2 * j],
            );
        }
    }

    #[test]
    fn jacobi_is_jobs_invariant_to_the_bit() {
        let p = KValued::new(TwoProcessor::new(), 4);
        let m = CompactMdp::build(&p, &[Val(0), Val(3)], &opts(None)).unwrap();
        let s1 = m.expected_steps(Objective::TotalSteps, 1e-12, 100_000, 1);
        let s8 = m.expected_steps(Objective::TotalSteps, 1e-12, 100_000, 8);
        assert_eq!(s1.iterations, s8.iterations);
        for (a, b) in s1.values.iter().zip(&s8.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(s1.policy, s8.policy);
    }

    #[test]
    fn kvalued_class_space_is_at_least_halved() {
        let p = KValued::new(TwoProcessor::new(), 4);
        let inputs = [Val(0), Val(3)];
        let dense = MdpSolver::build(&p, &inputs, 2_000_000);
        let compact = CompactMdp::build(&p, &inputs, &opts(None)).unwrap();
        assert!(
            compact.size() * 2 <= dense.size(),
            "compact {} vs dense {}: reduction below 2x",
            compact.size(),
            dense.size()
        );
        assert!(compact.stats().sym_hits > 0);
        assert!(compact.stats().dedup_hits > 0);
    }

    #[test]
    fn values_match_dense_on_kvalued_total_steps() {
        let p = KValued::new(TwoProcessor::new(), 4);
        let inputs = [Val(1), Val(2)];
        let dense = MdpSolver::build(&p, &inputs, 2_000_000);
        let dv = dense.expected_steps(&p, Objective::TotalSteps, 1e-12, 100_000);
        let compact = CompactMdp::build(&p, &inputs, &opts(None)).unwrap();
        let cv = compact.expected_steps(Objective::TotalSteps, 1e-12, 100_000, 2);
        assert!(
            (dv.value - cv.value).abs() < 1e-8,
            "dense {} vs compact {}",
            dv.value,
            cv.value
        );
    }

    #[test]
    fn off_symmetry_off_merging_reproduces_dense_size() {
        let p = TwoProcessor::new();
        let o = CompactOptions {
            use_symmetry: false,
            merge_decided: false,
            ..CompactOptions::default()
        };
        let compact = CompactMdp::build(&p, &[Val::A, Val::B], &o).unwrap();
        let dense = MdpSolver::build(&p, &[Val::A, Val::B], 100_000);
        // Without merging, classes differ from dense configs only by the
        // dropped activation mask.
        assert!(compact.size() <= dense.size());
        let s = compact.expected_steps(Objective::StepsOf(0), 1e-12, 100_000, 1);
        assert!((s.value - 10.0).abs() < 1e-6);
    }

    #[test]
    fn exceeding_max_configs_is_an_error_not_a_panic() {
        let p = TwoProcessor::new();
        let o = CompactOptions {
            max_configs: 3,
            ..CompactOptions::default()
        };
        assert!(CompactMdp::build(&p, &[Val::A, Val::B], &o).is_err());
    }

    #[test]
    fn compact_explorer_matches_dense_verdict() {
        let p = TwoProcessor::new();
        for inputs in [[Val::A, Val::B], [Val::A, Val::A]] {
            let dense = Explorer::new(&p, &inputs).run();
            let (compact, stats) = CompactExplorer::new(&p, &inputs).run_with_stats();
            assert_eq!(compact.safe(), dense.safe());
            assert_eq!(compact.complete, dense.complete);
            assert_eq!(compact.max_depth, dense.max_depth);
            assert!(compact.explored <= dense.explored);
            assert_eq!(stats.classes, compact.explored);
        }
    }

    #[test]
    fn compact_explorer_without_symmetry_counts_dense_configs() {
        // With symmetry off and no merging, classes biject with dense
        // configurations (keys keep the activation mask).
        let p = TwoProcessor::new();
        let dense = Explorer::new(&p, &[Val::A, Val::B]).run();
        let compact = CompactExplorer::new(&p, &[Val::A, Val::B])
            .use_symmetry(false)
            .run();
        assert_eq!(compact.explored, dense.explored);
        assert_eq!(compact.levels, dense.levels);
    }

    #[test]
    fn metrics_are_exported() {
        let p = TwoProcessor::new();
        let m = CompactMdp::build(&p, &[Val::A, Val::B], &opts(Some(0))).unwrap();
        let reg = Registry::new();
        m.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges.get("mdp.configs"), Some(&(m.size() as u64)));
        assert!(snap.counters.contains_key("mdp.dedup_hits"));
    }
}
