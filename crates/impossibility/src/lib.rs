//! # cil-mc — model checking and exact adversary analysis
//!
//! Mechanized counterparts of the proofs in *"On Processor Coordination
//! Using Asynchronous Hardware"* (Chor, Israeli, Li; PODC 1987):
//!
//! * [`config`] — explicit configurations and the exact probabilistic
//!   successor relation (one entry per schedule choice × coin outcome);
//! * [`explore`] — exhaustive bounded safety checking: consistency
//!   (Theorems 6/8) and nontriviality over *all* schedules and coins;
//! * [`valence`] — exact bivalent/univalent classification for
//!   deterministic protocols (Lemmas 1 and 2);
//! * [`bivalence`] — the Theorem 4 construction: an infinite schedule kept
//!   bivalent forever, generated mechanically against any deterministic
//!   victim;
//! * [`mdp`] — the adaptive adversary as a Markov decision process: exact
//!   worst-case expected decision times and survival curves (Theorem 7 and
//!   its Corollary), plus the optimal adversary exported as a scheduler.
//!
//! # Example: mechanizing Theorem 6 + the Corollary of Theorem 7
//!
//! ```
//! use cil_core::two::TwoProcessor;
//! use cil_mc::explore::Explorer;
//! use cil_mc::mdp::{MdpSolver, Objective};
//! use cil_sim::Val;
//!
//! let p = TwoProcessor::new();
//! // Consistency over the COMPLETE configuration space:
//! let report = Explorer::new(&p, &[Val::A, Val::B]).run();
//! assert!(report.safe() && report.complete);
//! // Exact worst-case expected steps for P0 (paper bound: 10):
//! let mdp = MdpSolver::build(&p, &[Val::A, Val::B], 100_000);
//! let solve = mdp.expected_steps(&p, Objective::StepsOf(0), 1e-12, 100_000);
//! assert!(solve.value <= 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bivalence;
pub mod compact;
pub mod config;
pub mod explore;
pub mod lookahead;
pub mod mdp;
pub mod symmetry;
pub mod valence;

pub use bivalence::{construct_infinite_schedule, InfiniteScheduleDemo};
pub use compact::{
    CompactExplorer, CompactMdp, CompactOptions, CompactPolicyAdversary, CompactStats,
};
pub use config::{is_deterministic, successors, successors_indexed, Config, IndexedSuccessor};
pub use explore::{Explorer, LevelStats, Report, Violation};
pub use lookahead::{min_decide_prob, LookaheadAdversary};
pub use mdp::{MdpSolver, Objective, PolicyAdversary, Solve};
pub use symmetry::{applicable_elems, automorphism_elems, validate_symmetries, SymElem, Symmetric};
pub use valence::{Valence, ValenceMap};
