//! Valence analysis for deterministic protocols (§3 of the paper).
//!
//! A configuration is **bivalent** if both decision values are reachable
//! from it, **univalent** if exactly one is, and *blocked* if none is (the
//! latter cannot occur for a protocol satisfying termination, but our
//! deterministic victims fail termination — that is the point).
//!
//! [`ValenceMap`] computes, for every reachable configuration of a
//! *deterministic* protocol with a finite configuration graph, the exact set
//! of reachable decision values, by a worklist fixpoint over the reachable
//! graph. This mechanizes Lemma 1 ("a bivalent configuration is not a
//! decision configuration"), Lemma 2 ("there is a bivalent initial
//! configuration") and supplies the oracle for the Theorem 4 adversary in
//! [`crate::bivalence`].

use crate::config::{successors, Config};
use cil_sim::{Protocol, Val};
use std::collections::{HashMap, HashSet, VecDeque};

/// The valence of a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Valence {
    /// Both values reachable.
    Bivalent(Val, Val),
    /// Exactly one value reachable.
    Univalent(Val),
    /// No decision reachable (termination already forfeited).
    Blocked,
}

/// Exact reachable-decision-value sets over a deterministic protocol's
/// finite configuration graph.
pub struct ValenceMap<P: Protocol> {
    values: HashMap<Config<P>, Vec<Val>>,
    initial: Config<P>,
    explored: usize,
}

impl<P: Protocol> ValenceMap<P> {
    /// Builds the map by exhausting the reachable graph (bounded by
    /// `max_configs`).
    ///
    /// # Panics
    ///
    /// Panics if the protocol branches probabilistically (valence in the
    /// paper's §3 sense is defined for deterministic protocols) or if the
    /// graph exceeds `max_configs` (the analysis must be exact).
    pub fn build(protocol: &P, inputs: &[Val], max_configs: usize) -> Self {
        let init = Config::initial(protocol, inputs);
        // Forward pass: enumerate the graph.
        let mut succ_of: HashMap<Config<P>, Vec<Config<P>>> = HashMap::new();
        let mut preds: HashMap<Config<P>, Vec<Config<P>>> = HashMap::new();
        let mut queue = VecDeque::new();
        let mut seen = HashSet::new();
        seen.insert(init.clone());
        queue.push_back(init.clone());
        while let Some(cfg) = queue.pop_front() {
            assert!(
                seen.len() <= max_configs,
                "configuration graph exceeds {max_configs} configurations"
            );
            let mut succs = Vec::new();
            for pid in cfg.eligible(protocol) {
                let mut branch = successors(protocol, &cfg, pid);
                assert!(
                    branch.len() == 1,
                    "valence analysis requires a deterministic protocol"
                );
                let (_, s) = branch.pop().expect("one branch");
                preds.entry(s.clone()).or_default().push(cfg.clone());
                if seen.insert(s.clone()) {
                    queue.push_back(s.clone());
                }
                succs.push(s);
            }
            succ_of.insert(cfg, succs);
        }

        // Backward fixpoint: reachable decision values.
        let mut values: HashMap<Config<P>, Vec<Val>> = HashMap::new();
        let mut work: VecDeque<Config<P>> = VecDeque::new();
        for cfg in seen.iter() {
            let d = cfg.decision_values(protocol);
            if !d.is_empty() {
                values.insert(cfg.clone(), d);
                work.push_back(cfg.clone());
            }
        }
        while let Some(cfg) = work.pop_front() {
            let vals = values.get(&cfg).cloned().unwrap_or_default();
            if let Some(ps) = preds.get(&cfg) {
                for p in ps.clone() {
                    let entry = values.entry(p.clone()).or_default();
                    let before = entry.len();
                    for v in &vals {
                        if !entry.contains(v) {
                            entry.push(*v);
                        }
                    }
                    if entry.len() != before {
                        entry.sort_unstable();
                        work.push_back(p);
                    }
                }
            }
        }

        ValenceMap {
            explored: seen.len(),
            values,
            initial: init,
        }
    }

    /// Number of reachable configurations.
    pub fn explored(&self) -> usize {
        self.explored
    }

    /// The initial configuration.
    pub fn initial(&self) -> &Config<P> {
        &self.initial
    }

    /// The set of decision values reachable from `cfg` (empty = blocked).
    pub fn reachable_values(&self, cfg: &Config<P>) -> &[Val] {
        self.values.get(cfg).map_or(&[], |v| v.as_slice())
    }

    /// The valence of `cfg`.
    pub fn valence(&self, cfg: &Config<P>) -> Valence {
        match self.reachable_values(cfg) {
            [] => Valence::Blocked,
            [v] => Valence::Univalent(*v),
            [v, w, ..] => Valence::Bivalent(*v, *w),
        }
    }

    /// Whether `cfg` is bivalent.
    pub fn is_bivalent(&self, cfg: &Config<P>) -> bool {
        matches!(self.valence(cfg), Valence::Bivalent(..))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::successors;
    use cil_core::deterministic::{DetRule, DetTwo};

    #[test]
    fn lemma_2_bivalent_initial_configuration() {
        // I_ab is bivalent for every consistent nontrivial deterministic
        // protocol; verify for the adopt/alternate victims (always-keep is
        // blocked rather than bivalent — it can never decide from a split).
        for rule in [
            DetRule::AlwaysAdopt,
            DetRule::Alternate,
            DetRule::AdoptIfGreater,
        ] {
            let p = DetTwo::new(rule);
            let m = ValenceMap::build(&p, &[Val::A, Val::B], 1_000_000);
            assert!(
                m.is_bivalent(m.initial()),
                "{rule}: initial configuration not bivalent"
            );
        }
    }

    #[test]
    fn unanimous_inputs_are_univalent() {
        // Nontriviality forces I_aa to be univalent-a (paper Lemma 2).
        let p = DetTwo::new(DetRule::AlwaysAdopt);
        let m = ValenceMap::build(&p, &[Val::A, Val::A], 1_000_000);
        assert_eq!(m.valence(m.initial()), Valence::Univalent(Val::A));
    }

    #[test]
    fn always_keep_split_is_blocked_from_conflict() {
        // Once both stubborn processors have written and read the conflict,
        // no decision is reachable at all.
        let p = DetTwo::new(DetRule::AlwaysKeep);
        let m = ValenceMap::build(&p, &[Val::A, Val::B], 1_000_000);
        // The *initial* configuration can still decide (a solo run decides),
        // so it is bivalent; but after w0 w1 r0 r1 the system is blocked.
        assert!(m.is_bivalent(m.initial()));
        let mut c = m.initial().clone();
        for pid in [0usize, 1, 0, 1] {
            c = successors(&p, &c, pid).pop().unwrap().1;
        }
        assert_eq!(m.valence(&c), Valence::Blocked);
    }

    #[test]
    fn lemma_1_decision_configurations_are_univalent() {
        // Every reachable configuration with a decision value is univalent:
        // scan the graph of a victim protocol.
        let p = DetTwo::new(DetRule::AlwaysAdopt);
        let m = ValenceMap::build(&p, &[Val::A, Val::B], 1_000_000);
        // Reconstruct reachability to scan configs.
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![m.initial().clone()];
        while let Some(c) = stack.pop() {
            if !seen.insert(c.clone()) {
                continue;
            }
            if c.any_decided(&p) {
                assert!(
                    matches!(m.valence(&c), Valence::Univalent(_)),
                    "decision configuration must be univalent (Lemma 1)"
                );
            }
            for pid in c.eligible(&p) {
                stack.push(successors(&p, &c, pid).pop().unwrap().1);
            }
        }
        assert!(seen.len() > 10);
    }
}
