//! Protocol symmetries for state-space reduction.
//!
//! The paper's §4 configuration arguments are symmetric in two ways: the
//! two-processor protocol treats the values `a`/`b` interchangeably (the
//! decision logic only compares for equality), and it treats the two
//! processors interchangeably (the code of `P_0` and `P_1` differs only in
//! which register is "mine"). A configuration and its mirror image — swap
//! the processors, swap their registers, relabel `a ↔ b` — therefore have
//! identical worst-case behaviour under the adaptive adversary, and the
//! exact analysis of [`crate::compact`] needs to enumerate only one
//! representative per orbit.
//!
//! A [`SymElem`] is one such mirror: a processor permutation, a register
//! permutation, and value-relabeling maps for states and register contents.
//! [`Symmetric::symmetries`] lists a protocol's elements for a given input
//! vector; [`applicable_elems`] filters them down to the ones usable for a
//! reachability-sensitive analysis (they must fix the initial
//! configuration, and a per-processor objective additionally requires the
//! target processor to be a fixed point), while [`automorphism_elems`]
//! keeps every dynamics automorphism for value iteration, where only a
//! configuration's future matters. Because hand-written symmetries are easy to get subtly
//! wrong, [`validate_symmetries`] checks the commuting-square property
//! `σ(successors(c, p)) = successors(σ(c), σ(p))` dynamically over a
//! sampled prefix of the reachable space.

use crate::config::{successors, Config};
use cil_sim::{Protocol, Val};
use std::collections::HashSet;

/// One symmetry element: a configuration automorphism given by a processor
/// permutation, a register permutation, and per-slot relabeling maps.
///
/// Applying the element to a configuration `c` produces `c'` with
/// `c'.states[proc_perm[i]] = map_state(i, c.states[i])`,
/// `c'.regs[reg_perm[j]] = map_reg(j, c.regs[j])`, and the `active` bits
/// permuted along `proc_perm`.
///
/// The element set returned by [`Symmetric::symmetries`], together with the
/// identity, must form a **group** (in particular each element's inverse
/// must be in the set — involutions qualify on their own): canonicalization
/// in `compact` takes the minimum over `{id} ∪ elems`, which is only a
/// well-defined orbit representative under that closure.
pub struct SymElem<P: Protocol> {
    /// Human-readable name for diagnostics.
    pub name: String,
    /// `proc_perm[i]` is the processor slot `i` maps to.
    pub proc_perm: Vec<usize>,
    /// `reg_perm[j]` is the register slot `j` maps to.
    pub reg_perm: Vec<usize>,
    #[allow(clippy::type_complexity)]
    map_state: Box<dyn Fn(usize, &P::State) -> P::State + Send + Sync>,
    #[allow(clippy::type_complexity)]
    map_reg: Box<dyn Fn(usize, &P::Reg) -> P::Reg + Send + Sync>,
}

impl<P: Protocol> SymElem<P> {
    /// Builds an element from its permutations and relabeling maps.
    ///
    /// # Panics
    ///
    /// Panics if either permutation is not a bijection on its index range.
    pub fn new(
        name: impl Into<String>,
        proc_perm: Vec<usize>,
        reg_perm: Vec<usize>,
        map_state: impl Fn(usize, &P::State) -> P::State + Send + Sync + 'static,
        map_reg: impl Fn(usize, &P::Reg) -> P::Reg + Send + Sync + 'static,
    ) -> Self {
        assert!(is_permutation(&proc_perm), "proc_perm is not a permutation");
        assert!(is_permutation(&reg_perm), "reg_perm is not a permutation");
        SymElem {
            name: name.into(),
            proc_perm,
            reg_perm,
            map_state: Box::new(map_state),
            map_reg: Box::new(map_reg),
        }
    }

    /// The relabeled state of processor `pid` (before slot permutation).
    pub fn map_state(&self, pid: usize, s: &P::State) -> P::State {
        (self.map_state)(pid, s)
    }

    /// The relabeled contents of register `reg` (before slot permutation).
    pub fn map_reg(&self, reg: usize, r: &P::Reg) -> P::Reg {
        (self.map_reg)(reg, r)
    }

    /// Applies the element to a configuration.
    pub fn apply(&self, cfg: &Config<P>) -> Config<P> {
        let mut states: Vec<Option<P::State>> = vec![None; cfg.states.len()];
        for (i, s) in cfg.states.iter().enumerate() {
            states[self.proc_perm[i]] = Some((self.map_state)(i, s));
        }
        let mut regs: Vec<Option<P::Reg>> = vec![None; cfg.regs.len()];
        for (j, r) in cfg.regs.iter().enumerate() {
            regs[self.reg_perm[j]] = Some((self.map_reg)(j, r));
        }
        let mut active = 0u64;
        for (i, &to) in self.proc_perm.iter().enumerate() {
            if cfg.active & (1 << i) != 0 {
                active |= 1 << to;
            }
        }
        Config {
            states: states.into_iter().map(|s| s.expect("bijection")).collect(),
            regs: regs.into_iter().map(|r| r.expect("bijection")).collect(),
            active,
        }
    }

    /// The processor slot that maps **to** `pid` — the inverse permutation.
    pub fn preimage_pid(&self, pid: usize) -> usize {
        self.proc_perm
            .iter()
            .position(|&q| q == pid)
            .expect("bijection")
    }

    /// Whether the element fixes the initial configuration of `inputs` —
    /// the precondition for quotienting reachable-space analyses by it.
    pub fn fixes_initial(&self, protocol: &P, inputs: &[Val]) -> bool {
        let init = Config::initial(protocol, inputs);
        self.apply(&init) == init
    }
}

impl<P: Protocol> std::fmt::Debug for SymElem<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymElem")
            .field("name", &self.name)
            .field("proc_perm", &self.proc_perm)
            .field("reg_perm", &self.reg_perm)
            .finish()
    }
}

fn is_permutation(perm: &[usize]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// A protocol that knows its own symmetries.
///
/// The default implementation reports none, which is always sound: the
/// compact backend then canonicalizes with the identity alone. Protocols
/// with genuine symmetries override [`Symmetric::symmetries`].
pub trait Symmetric: Protocol + Sized {
    /// Candidate symmetry elements for executions starting from `inputs`.
    ///
    /// Elements need not fix the initial configuration of `inputs` — that
    /// filtering is [`applicable_elems`]'s job — but `{id} ∪ elems` must be
    /// closed under composition and inverse on the reachable space.
    fn symmetries(&self, inputs: &[Val]) -> Vec<SymElem<Self>> {
        let _ = inputs;
        Vec::new()
    }

    /// Whether register `reg` can never be read again from `cfg`, along any
    /// schedule and any coin outcomes. A protocol overriding this lets the
    /// compact backend collapse the register's contents to a single token.
    ///
    /// The claim must be **sound** (no future step of any processor reads
    /// the register) and **future-stable** (it keeps holding in every
    /// successor configuration) — both are checkable dynamically with
    /// [`validate_dead_hints`]. The default makes no claim; the compact
    /// backend independently retires registers whose every allowed reader
    /// has decided.
    fn register_dead(&self, reg: usize, cfg: &Config<Self>) -> bool {
        let _ = (reg, cfg);
        false
    }
}

/// Dynamically checks [`Symmetric::register_dead`] over a BFS prefix of
/// the reachable space: wherever a register is claimed dead, no eligible
/// processor's next operation may read it, and the claim must persist in
/// every successor. By induction the two together imply the register is
/// never read again.
///
/// # Errors
///
/// Returns a description of the first violated claim.
pub fn validate_dead_hints<P: Symmetric>(
    protocol: &P,
    inputs: &[Val],
    max_configs: usize,
) -> Result<(), String> {
    use cil_sim::Op;
    let m = protocol.registers().len();
    let init = Config::initial(protocol, inputs);
    let mut seen: HashSet<Config<P>> = HashSet::new();
    let mut queue = vec![init];
    while let Some(cfg) = queue.pop() {
        if seen.len() >= max_configs {
            break;
        }
        if !seen.insert(cfg.clone()) {
            continue;
        }
        let dead: Vec<usize> = (0..m)
            .filter(|&j| protocol.register_dead(j, &cfg))
            .collect();
        for pid in cfg.eligible(protocol) {
            for (_, op) in protocol.choose(pid, &cfg.states[pid]).branches() {
                if let Op::Read(r) = op {
                    if dead.contains(&r.0) {
                        return Err(format!("P{pid} reads register {} claimed dead", r.0));
                    }
                }
            }
            for (_, succ) in successors(protocol, &cfg, pid) {
                for &j in &dead {
                    if !protocol.register_dead(j, &succ) {
                        return Err(format!(
                            "dead claim on register {j} is not future-stable under a step \
                             of P{pid}"
                        ));
                    }
                }
                if !seen.contains(&succ) {
                    queue.push(succ);
                }
            }
        }
    }
    Ok(())
}

/// The elements of `protocol` usable for a **reachability-sensitive**
/// analysis from `inputs` (depth-exact exploration, nontriviality): those
/// fixing the initial configuration and, when the analysis singles out a
/// `target` processor (per-processor step counts, survival curves), those
/// fixing the target's slot. Fixing the initial configuration guarantees
/// orbit members share their BFS depth and their correspondence to inputs.
pub fn applicable_elems<P: Symmetric>(
    protocol: &P,
    inputs: &[Val],
    target: Option<usize>,
) -> Vec<SymElem<P>> {
    protocol
        .symmetries(inputs)
        .into_iter()
        .filter(|e| target.is_none_or(|t| e.proc_perm[t] == t))
        .filter(|e| e.fixes_initial(protocol, inputs))
        .collect()
}

/// The elements of `protocol` usable for **value iteration** from `inputs`.
///
/// The MDP value of a configuration — worst-case expected cost-to-go,
/// survival probability — depends only on its future dynamics, never on how
/// it was reached, so a dynamics automorphism need *not* fix the initial
/// configuration to identify equal-value configurations: `V(σ(c)) = V(c)`
/// holds for every element. Only an objective that singles out a `target`
/// processor constrains the set (the cost labeling `pid == target` must be
/// preserved, so the target's slot must be a fixed point). This is the
/// filter the compact MDP backend uses for full (depth-unbounded) builds,
/// and it is what makes the quotient strictly coarser than the
/// [`applicable_elems`] one — e.g. the k-valued protocol's candidate
/// relabelings all qualify here while only the input mask fixes the split
/// initial configuration.
pub fn automorphism_elems<P: Symmetric>(
    protocol: &P,
    inputs: &[Val],
    target: Option<usize>,
) -> Vec<SymElem<P>> {
    protocol
        .symmetries(inputs)
        .into_iter()
        .filter(|e| target.is_none_or(|t| e.proc_perm[t] == t))
        .collect()
}

/// Dynamically checks the commuting-square property of every element over
/// a BFS prefix of the reachable space: for each visited configuration `c`
/// and eligible processor `p`,
/// `σ(successors(c, p)) == successors(σ(c), proc_perm[p])` as probability
/// multisets, `σ(σ(c)) == c` (involution / inverse closure on the sampled
/// orbit), and decisions commute with the relabeling.
///
/// # Errors
///
/// Returns a description of the first violated square.
pub fn validate_symmetries<P: Symmetric>(
    protocol: &P,
    inputs: &[Val],
    max_configs: usize,
) -> Result<(), String> {
    let elems = protocol.symmetries(inputs);
    if elems.is_empty() {
        return Ok(());
    }
    let init = Config::initial(protocol, inputs);
    let mut seen: HashSet<Config<P>> = HashSet::new();
    let mut queue = vec![init];
    while let Some(cfg) = queue.pop() {
        if seen.len() >= max_configs {
            break;
        }
        if !seen.insert(cfg.clone()) {
            continue;
        }
        for e in &elems {
            let mapped = e.apply(&cfg);
            if e.apply(&mapped) != cfg {
                return Err(format!("element '{}' is not an involution", e.name));
            }
            for pid in 0..cfg.states.len() {
                let decided = protocol.decision(&cfg.states[pid]).is_some();
                let mapped_decided = protocol
                    .decision(&mapped.states[e.proc_perm[pid]])
                    .is_some();
                if decided != mapped_decided {
                    return Err(format!(
                        "element '{}' does not preserve decidedness of P{pid}",
                        e.name
                    ));
                }
                if decided {
                    continue;
                }
                let lhs: Vec<(f64, Config<P>)> = successors(protocol, &cfg, pid)
                    .into_iter()
                    .map(|(p, c)| (p, e.apply(&c)))
                    .collect();
                let mut rhs = successors(protocol, &mapped, e.proc_perm[pid]);
                if lhs.len() != rhs.len() {
                    return Err(format!(
                        "element '{}': successor counts differ for P{pid}",
                        e.name
                    ));
                }
                for (p, c) in &lhs {
                    let pos = rhs
                        .iter()
                        .position(|(q, d)| (p - q).abs() < 1e-12 && c == d)
                        .ok_or_else(|| {
                            format!(
                                "element '{}': square does not commute for P{pid} \
                                 (a mapped successor has no counterpart)",
                                e.name
                            )
                        })?;
                    rhs.swap_remove(pos);
                }
            }
        }
        for pid in cfg.eligible(protocol) {
            for (_, succ) in successors(protocol, &cfg, pid) {
                if !seen.contains(&succ) {
                    queue.push(succ);
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Implementations for the built-in protocols.
// ---------------------------------------------------------------------------

use cil_core::deterministic::DetTwo;
use cil_core::kvalued::{KPhase, KReg, KState, KValued};
use cil_core::n_unbounded::NUnbounded;
use cil_core::n_unbounded_1w1r::NUnbounded1W1R;
use cil_core::naive::Naive;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::{TwoProcessor, TwoState};

impl Symmetric for TwoProcessor {
    /// The full automorphism group of the Fig. 1 dynamics over the two
    /// input values: relabel `x ↔ y` (the protocol compares values only
    /// for equality), swap the processors together with `r0 ↔ r1` (the
    /// code is processor-symmetric), or both — a Klein four-group.
    ///
    /// Only the combined swap fixes the split initial configuration, so
    /// reachability-sensitive analyses filter down to it; value iteration
    /// quotients by all three.
    fn symmetries(&self, inputs: &[Val]) -> Vec<SymElem<Self>> {
        let (x, y) = (inputs[0], inputs[1]);
        let swap = move |v: Val| {
            if v == x {
                y
            } else if v == y {
                x
            } else {
                v
            }
        };
        let relabel = move |s: &TwoState| match s {
            TwoState::Start { input } => TwoState::Start {
                input: swap(*input),
            },
            TwoState::AboutToRead { mine } => TwoState::AboutToRead { mine: swap(*mine) },
            TwoState::AboutToWrite { mine, seen } => TwoState::AboutToWrite {
                mine: swap(*mine),
                seen: swap(*seen),
            },
            TwoState::Decided { value } => TwoState::Decided {
                value: swap(*value),
            },
        };
        let mut elems = vec![SymElem::new(
            "swap-pids",
            vec![1, 0],
            vec![1, 0],
            |_pid, s: &TwoState| s.clone(),
            |_reg, r: &Option<Val>| *r,
        )];
        if x != y {
            elems.push(SymElem::new(
                "swap-values",
                vec![0, 1],
                vec![0, 1],
                move |_pid, s: &TwoState| relabel(s),
                move |_reg, r: &Option<Val>| r.map(swap),
            ));
            elems.push(SymElem::new(
                "swap-pids-and-values",
                vec![1, 0],
                vec![1, 0],
                move |_pid, s: &TwoState| relabel(s),
                move |_reg, r: &Option<Val>| r.map(swap),
            ));
        }
        elems
    }
}

impl Symmetric for KValued<TwoProcessor> {
    /// The automorphism group of the Theorem 5 construction over Fig. 1:
    /// XOR-relabel every candidate by a mask `f` (`c ↦ c ^ f`), optionally
    /// composed with the processor swap (which also swaps, per round, the
    /// two inner registers and the two candidate registers). Under the mask
    /// the inner binary instance of round `r` sees its bit values flipped
    /// exactly when bit `r` of `f` is set, and the decided `prefix` is
    /// flipped on the bits decided so far — during a `Scan` the current
    /// round's bit has already been decided, so one more bit is masked in
    /// than in the other phases.
    ///
    /// The protocol's decision logic only compares candidate prefixes for
    /// equality and agrees bit by bit, so *every* mask commutes with the
    /// dynamics, not just the input relabeling `u ⊕ v` — but only the
    /// composite `(u ⊕ v, swap)` fixes the initial configuration, so
    /// reachability-sensitive analyses filter down to that one mirror while
    /// value iteration quotients by the whole group of `2^{rounds+1}`
    /// elements. Past `rounds = 4` the full flip group is large relative to
    /// its payoff, so the implementation falls back to the Klein four-group
    /// generated by the pid swap and the input mask.
    fn symmetries(&self, inputs: &[Val]) -> Vec<SymElem<Self>> {
        if inputs.len() != 2 {
            return Vec::new();
        }
        let rounds = self.rounds() as usize;
        // TwoProcessor has two inner registers per round, then one
        // candidate register per processor.
        let inner_regs = 2usize;
        let make = move |flip: u64, swap: bool| -> SymElem<Self> {
            let proc_perm = if swap { vec![1, 0] } else { vec![0, 1] };
            let m = rounds * inner_regs + 2;
            let reg_perm: Vec<usize> = if swap {
                let mut perm = Vec::with_capacity(m);
                for r in 0..rounds {
                    perm.push(r * inner_regs + 1);
                    perm.push(r * inner_regs);
                }
                perm.push(rounds * inner_regs + 1);
                perm.push(rounds * inner_regs);
                perm
            } else {
                (0..m).collect()
            };
            let flip_bit = move |round: u32| (flip >> round) & 1;
            let flip_val = move |round: u32, w: Val| Val(w.0 ^ flip_bit(round));
            let masked = move |bits: u32| {
                if bits >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                }
            };
            let name = if swap {
                format!("flip-{flip:#x}-swap-pids")
            } else {
                format!("flip-{flip:#x}")
            };
            SymElem::new(
                name,
                proc_perm,
                reg_perm,
                move |_pid, s: &KState<TwoState>| {
                    let decided_bits = match s.phase {
                        KPhase::Scan { .. } => s.round + 1,
                        _ => s.round,
                    };
                    let phase = match &s.phase {
                        KPhase::PublishInit => KPhase::PublishInit,
                        KPhase::Republish => KPhase::Republish,
                        KPhase::Scan { next } => KPhase::Scan { next: *next },
                        KPhase::Done(w) => KPhase::Done(Val(w.0 ^ flip)),
                        KPhase::Inner(ts) => KPhase::Inner(match ts {
                            TwoState::Start { input } => TwoState::Start {
                                input: flip_val(s.round, *input),
                            },
                            TwoState::AboutToRead { mine } => TwoState::AboutToRead {
                                mine: flip_val(s.round, *mine),
                            },
                            TwoState::AboutToWrite { mine, seen } => TwoState::AboutToWrite {
                                mine: flip_val(s.round, *mine),
                                seen: flip_val(s.round, *seen),
                            },
                            TwoState::Decided { value } => TwoState::Decided {
                                value: flip_val(s.round, *value),
                            },
                        }),
                    };
                    KState {
                        cand: s.cand ^ flip,
                        round: s.round,
                        prefix: s.prefix ^ (flip & masked(decided_bits)),
                        phase,
                    }
                },
                move |reg, r: &KReg<Option<Val>>| {
                    if reg < rounds * inner_regs {
                        let round = (reg / inner_regs) as u32;
                        match r {
                            KReg::Inner(w) => KReg::Inner(w.map(|x| flip_val(round, x))),
                            KReg::Cand(_) => unreachable!("inner slot holds a candidate"),
                        }
                    } else {
                        match r {
                            KReg::Cand(c) => KReg::Cand(c.map(|x| x ^ flip)),
                            KReg::Inner(_) => unreachable!("candidate slot holds an inner value"),
                        }
                    }
                },
            )
        };
        let mut elems = Vec::new();
        if rounds <= 4 {
            for f in 0..1u64 << rounds {
                for swap in [false, true] {
                    if f == 0 && !swap {
                        continue;
                    }
                    elems.push(make(f, swap));
                }
            }
        } else {
            let f = inputs[0].0 ^ inputs[1].0;
            elems.push(make(0, true));
            if f != 0 {
                elems.push(make(f, false));
                elems.push(make(f, true));
            }
        }
        elems
    }

    /// The inner binary instance of round `r` is only ever read by a
    /// processor whose `Inner` phase is at round `r` — and rounds are
    /// monotone. A processor at round `r` in the `Scan` phase has already
    /// received that instance's decision and moves to round `r + 1` on
    /// adoption, so once every processor is past round `r` (or scanning at
    /// it, or decided), the instance's registers are dead. Candidate
    /// registers stay live while any peer might still scan.
    fn register_dead(&self, reg: usize, cfg: &Config<Self>) -> bool {
        let inner_regs = 2usize;
        if reg >= self.rounds() as usize * inner_regs {
            return false;
        }
        let round = (reg / inner_regs) as u32;
        cfg.states.iter().all(|s| {
            s.round > round || (s.round == round && matches!(s.phase, KPhase::Scan { .. }))
        })
    }
}

/// No usable symmetry: the deterministic rules are order-sensitive
/// (`AdoptIfGreater` compares values), so value relabeling does not commute.
impl Symmetric for DetTwo {}

/// No symmetry elements declared: the §5 protocol's `num` counter races are
/// not value-symmetric in any way this module models.
impl Symmetric for NUnbounded {}

/// No symmetry elements declared (see [`NUnbounded`]).
impl Symmetric for NUnbounded1W1R {}

/// No symmetry elements declared: the §6 bounded protocol's handshake bits
/// break the naive processor rotation.
impl Symmetric for ThreeBounded {}

/// No symmetry elements declared: the naive protocol is already tiny.
impl Symmetric for Naive {}

/// No symmetry elements declared for the k-valued composite over the §5
/// inner protocol (its inner instance declares none either).
impl Symmetric for KValued<NUnbounded> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_processor_mirror_fixes_init_and_commutes() {
        let p = TwoProcessor::new();
        for inputs in [[Val::A, Val::B], [Val::A, Val::A], [Val(3), Val(7)]] {
            let elems = applicable_elems(&p, &inputs, None);
            assert_eq!(elems.len(), 1, "inputs {inputs:?}");
            validate_symmetries(&p, &inputs, 50_000).unwrap();
        }
    }

    #[test]
    fn target_fixing_filters_the_processor_swap() {
        let p = TwoProcessor::new();
        let elems = applicable_elems(&p, &[Val::A, Val::B], Some(0));
        assert!(elems.is_empty(), "the pid swap moves the target");
    }

    #[test]
    fn kvalued_mirror_commutes_over_the_reachable_space() {
        for k in [2u64, 4] {
            let p = KValued::new(TwoProcessor::new(), k);
            let inputs = [Val(0), Val(k - 1)];
            let elems = applicable_elems(&p, &inputs, None);
            assert_eq!(elems.len(), 1, "k = {k}");
            validate_symmetries(&p, &inputs, 30_000).unwrap();
        }
    }

    #[test]
    fn kvalued_equal_inputs_reduce_to_the_pure_pid_swap() {
        let p = KValued::new(TwoProcessor::new(), 4);
        let inputs = [Val(2), Val(2)];
        assert_eq!(applicable_elems(&p, &inputs, None).len(), 1);
        validate_symmetries(&p, &inputs, 30_000).unwrap();
    }

    #[test]
    fn kvalued_dead_register_hints_are_sound() {
        for k in [2u64, 4] {
            let p = KValued::new(TwoProcessor::new(), k);
            validate_dead_hints(&p, &[Val(0), Val(k - 1)], 100_000).unwrap();
            validate_dead_hints(&p, &[Val(1), Val(1)], 100_000).unwrap();
        }
    }

    #[test]
    fn a_bogus_dead_hint_is_caught() {
        /// Claims every register dead from the start — the validator must
        /// reject it on the first read.
        #[derive(Debug, Clone)]
        struct EagerDead(TwoProcessor);
        impl cil_sim::Protocol for EagerDead {
            type State = TwoState;
            type Reg = Option<Val>;
            fn processes(&self) -> usize {
                self.0.processes()
            }
            fn registers(&self) -> Vec<cil_registers::RegisterSpec<Option<Val>>> {
                self.0.registers()
            }
            fn init(&self, pid: usize, input: Val) -> TwoState {
                self.0.init(pid, input)
            }
            fn choose(
                &self,
                pid: usize,
                s: &TwoState,
            ) -> cil_sim::Choice<cil_sim::Op<Option<Val>>> {
                self.0.choose(pid, s)
            }
            fn transit(
                &self,
                pid: usize,
                s: &TwoState,
                op: &cil_sim::Op<Option<Val>>,
                read: Option<&Option<Val>>,
            ) -> cil_sim::Choice<TwoState> {
                self.0.transit(pid, s, op, read)
            }
            fn decision(&self, s: &TwoState) -> Option<Val> {
                self.0.decision(s)
            }
        }
        impl Symmetric for EagerDead {
            fn register_dead(&self, _reg: usize, _cfg: &Config<Self>) -> bool {
                true
            }
        }
        let p = EagerDead(TwoProcessor::new());
        assert!(validate_dead_hints(&p, &[Val::A, Val::B], 100_000).is_err());
    }

    #[test]
    fn empty_impls_stay_empty() {
        assert!(NUnbounded::three()
            .symmetries(&[Val::A, Val::B, Val::A])
            .is_empty());
        assert!(ThreeBounded::new()
            .symmetries(&[Val::A, Val::B, Val::A])
            .is_empty());
        assert!(Naive::new(3)
            .symmetries(&[Val::A, Val::B, Val::A])
            .is_empty());
    }

    #[test]
    fn apply_permutes_states_registers_and_activity() {
        let p = TwoProcessor::new();
        let inputs = [Val::A, Val::B];
        let elems = applicable_elems(&p, &inputs, None);
        let init = Config::initial(&p, &inputs);
        let stepped = successors(&p, &init, 0).pop().unwrap().1;
        let mirrored = elems[0].apply(&stepped);
        // P0 wrote a into r0; the mirror is P1 having written b into r1.
        assert_eq!(mirrored.active, 0b10);
        assert_eq!(mirrored.regs[1], Some(Val::B));
        assert_eq!(mirrored.regs[0], None);
        // Round trip: the element is an involution.
        assert_eq!(elems[0].apply(&mirrored), stepped);
        assert_eq!(elems[0].preimage_pid(1), 0);
    }

    #[test]
    fn bad_permutation_is_rejected() {
        let r = std::panic::catch_unwind(|| {
            SymElem::<TwoProcessor>::new(
                "broken",
                vec![0, 0],
                vec![0, 1],
                |_, s| s.clone(),
                |_, r| *r,
            )
        });
        assert!(r.is_err());
    }
}
