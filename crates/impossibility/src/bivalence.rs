//! The Theorem 4 adversary: a mechanically constructed infinite schedule.
//!
//! Theorem 4 of the paper proves that every deterministic coordination
//! protocol admits an infinite schedule along which no processor ever
//! decides, by induction: Lemma 2 gives a bivalent initial configuration,
//! and Lemma 3 shows that from a bivalent configuration some single step
//! leads to another bivalent configuration. [`construct_infinite_schedule`] runs the
//! induction *constructively* against a concrete deterministic protocol,
//! using the exact [`ValenceMap`] as its oracle, and emits the schedule.
//!
//! For victims that additionally forfeit termination outright, a step may
//! lead from a bivalent into a *blocked* configuration (no decision
//! reachable at all); the adversary accepts those too — the theorem's goal,
//! "no processor ever terminates", is preserved either way.

use crate::config::{successors, Config};
use crate::valence::{Valence, ValenceMap};
use cil_sim::{Protocol, Val};

/// The result of driving the Theorem 4 construction for a number of steps.
#[derive(Debug)]
pub struct InfiniteScheduleDemo {
    /// The schedule constructed (processor ids, in order).
    pub schedule: Vec<usize>,
    /// Valence of every configuration along the run (initial first).
    pub valences: Vec<Valence>,
    /// Whether any processor decided at any point (must be `false`).
    pub anyone_decided: bool,
}

/// Drives `protocol` from the given inputs for `steps` steps, at each point
/// choosing a processor whose (unique, deterministic) successor keeps the
/// run undecidable — bivalent where possible, blocked otherwise.
///
/// Returns `Err` with the partial demo if the construction gets stuck,
/// which Theorem 4 guarantees cannot happen for a consistent, nontrivial
/// deterministic protocol started in a bivalent configuration.
pub fn construct_infinite_schedule<P: Protocol>(
    protocol: &P,
    inputs: &[Val],
    steps: usize,
    max_configs: usize,
) -> Result<InfiniteScheduleDemo, InfiniteScheduleDemo> {
    let map = ValenceMap::build(protocol, inputs, max_configs);
    let avoid = avoidance_set(protocol, inputs, max_configs);
    let mut cfg: Config<P> = map.initial().clone();
    let mut schedule = Vec::with_capacity(steps);
    let mut valences = vec![map.valence(&cfg)];
    let mut anyone_decided = cfg.any_decided(protocol);

    for _ in 0..steps {
        // Prefer a bivalence-preserving step (Lemma 3); fall back to any
        // undecided successor from which decisions remain avoidable forever.
        let mut pick: Option<(usize, Config<P>)> = None;
        let mut fallback: Option<(usize, Config<P>)> = None;
        for pid in cfg.eligible(protocol) {
            let succ = successors(protocol, &cfg, pid)
                .pop()
                .expect("deterministic successor")
                .1;
            if succ.any_decided(protocol) || !avoid.contains(&succ) {
                continue;
            }
            if matches!(map.valence(&succ), Valence::Bivalent(..)) {
                pick = Some((pid, succ));
                break;
            }
            fallback = Some((pid, succ));
        }
        let (pid, next) = match pick.or(fallback) {
            Some(x) => x,
            None => {
                return Err(InfiniteScheduleDemo {
                    schedule,
                    valences,
                    anyone_decided,
                })
            }
        };
        schedule.push(pid);
        anyone_decided |= next.any_decided(protocol);
        valences.push(map.valence(&next));
        cfg = next;
    }

    Ok(InfiniteScheduleDemo {
        schedule,
        valences,
        anyone_decided,
    })
}

/// The set of undecided configurations from which the adversary can avoid
/// decisions **forever**: the greatest fixpoint of "undecided and some
/// successor stays in the set". Theorem 4 says this set is non-empty (it
/// contains a reachable bivalent chain) for every consistent, nontrivial
/// deterministic protocol.
pub fn avoidance_set<P: Protocol>(
    protocol: &P,
    inputs: &[Val],
    max_configs: usize,
) -> std::collections::HashSet<Config<P>> {
    use std::collections::HashSet;
    // Enumerate the reachable graph.
    let init = Config::initial(protocol, inputs);
    let mut seen: HashSet<Config<P>> = HashSet::new();
    let mut stack = vec![init];
    while let Some(cfg) = stack.pop() {
        assert!(seen.len() <= max_configs, "graph exceeds {max_configs}");
        if !seen.insert(cfg.clone()) {
            continue;
        }
        for pid in cfg.eligible(protocol) {
            for (_, s) in successors(protocol, &cfg, pid) {
                stack.push(s);
            }
        }
    }
    // Greatest fixpoint by iterative pruning.
    let mut set: HashSet<Config<P>> = seen
        .into_iter()
        .filter(|c| !c.any_decided(protocol))
        .collect();
    loop {
        let keep: HashSet<Config<P>> = set
            .iter()
            .filter(|c| {
                c.eligible(protocol).into_iter().any(|pid| {
                    successors(protocol, c, pid)
                        .into_iter()
                        .any(|(_, s)| set.contains(&s))
                })
            })
            .cloned()
            .collect();
        if keep.len() == set.len() {
            return keep;
        }
        set = keep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_core::deterministic::{DetRule, DetTwo};

    #[test]
    fn theorem_4_schedule_exists_for_every_victim() {
        for rule in DetRule::ALL {
            let p = DetTwo::new(rule);
            let demo = construct_infinite_schedule(&p, &[Val::A, Val::B], 10_000, 1_000_000)
                .unwrap_or_else(|_| panic!("{rule}: construction got stuck"));
            assert_eq!(demo.schedule.len(), 10_000, "{rule}");
            assert!(!demo.anyone_decided, "{rule}: someone decided");
        }
    }

    #[test]
    fn the_schedule_keeps_every_configuration_undecidable() {
        let p = DetTwo::new(DetRule::AlwaysAdopt);
        let demo =
            construct_infinite_schedule(&p, &[Val::A, Val::B], 2_000, 1_000_000).expect("runs");
        // For the copycat the construction stays strictly bivalent — the
        // pure Lemma 3 induction, never needing the blocked fallback.
        assert!(demo
            .valences
            .iter()
            .all(|v| matches!(v, Valence::Bivalent(..))));
    }

    #[test]
    fn both_processors_appear_infinitely_often_for_the_copycat() {
        // The constructed schedule is not a trivial starvation schedule:
        // for the copycat both processors keep taking steps.
        let p = DetTwo::new(DetRule::AlwaysAdopt);
        let demo =
            construct_infinite_schedule(&p, &[Val::A, Val::B], 5_000, 1_000_000).expect("runs");
        let steps0 = demo.schedule.iter().filter(|&&x| x == 0).count();
        let steps1 = demo.schedule.len() - steps0;
        assert!(steps0 > 100, "P0 starved: {steps0}");
        assert!(steps1 > 100, "P1 starved: {steps1}");
    }

    #[test]
    fn unanimous_inputs_defeat_the_adversary() {
        // From I_aa the protocol is univalent everywhere; the construction
        // must get stuck almost immediately (solo steps still exist that
        // avoid decisions briefly, but not for long).
        let p = DetTwo::new(DetRule::AlwaysAdopt);
        let r = construct_infinite_schedule(&p, &[Val::A, Val::A], 10_000, 1_000_000);
        assert!(r.is_err(), "adversary should fail on univalent inputs");
        let demo = r.unwrap_err();
        assert!(
            demo.schedule.len() < 10,
            "stuck late: {}",
            demo.schedule.len()
        );
    }
}
