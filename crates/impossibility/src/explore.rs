//! Exhaustive bounded exploration: mechanized safety checking.
//!
//! The paper proves consistency (Theorems 6 and 8) by hand; this module
//! checks it mechanically by enumerating **every** reachable configuration —
//! all schedules × all coin outcomes — up to a depth/size bound. For the
//! two-processor protocol the reachable space is finite and closed, so the
//! verdict is complete, not just bounded; for the three-processor protocols
//! exploration is bounded by depth.
//!
//! Checked properties:
//!
//! * **Consistency** — no reachable configuration has two decision values;
//! * **Nontriviality** — every decision value in a reachable configuration
//!   is the input of some processor that was activated on the way there;
//! * optional caller-supplied invariants via [`Explorer::check_invariant`].

use crate::config::{successors, Config};
use cil_sim::{Protocol, Val};
use std::collections::{HashSet, VecDeque};

/// A safety violation found during exploration.
#[derive(Debug, Clone)]
pub enum Violation {
    /// Two processors decided differently.
    Inconsistent {
        /// The distinct decision values present.
        values: Vec<Val>,
        /// BFS depth at which the configuration was reached.
        depth: usize,
    },
    /// A decision value is not the input of any activated processor.
    Trivial {
        /// The offending decision value.
        value: Val,
        /// BFS depth.
        depth: usize,
    },
    /// A caller-supplied invariant failed.
    Invariant {
        /// The invariant's description.
        message: String,
        /// BFS depth.
        depth: usize,
    },
}

/// Result of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Number of distinct configurations visited.
    pub explored: usize,
    /// Violations found (empty = safe within bounds).
    pub violations: Vec<Violation>,
    /// `true` if the reachable space was exhausted (the verdict is then
    /// complete, not merely bounded).
    pub complete: bool,
    /// Maximum BFS depth reached.
    pub max_depth: usize,
}

impl Report {
    /// Whether no violations were found.
    pub fn safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Breadth-first exhaustive explorer over configurations.
pub struct Explorer<'p, P: Protocol> {
    protocol: &'p P,
    inputs: Vec<Val>,
    max_depth: usize,
    max_configs: usize,
    #[allow(clippy::type_complexity)]
    invariant: Option<Box<dyn Fn(&Config<P>) -> Result<(), String> + 'p>>,
}

impl<'p, P: Protocol> Explorer<'p, P> {
    /// Creates an explorer from the given initial inputs.
    pub fn new(protocol: &'p P, inputs: &[Val]) -> Self {
        Explorer {
            protocol,
            inputs: inputs.to_vec(),
            max_depth: usize::MAX,
            max_configs: 5_000_000,
            invariant: None,
        }
    }

    /// Bounds the BFS depth (number of steps from the initial
    /// configuration).
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Bounds the number of distinct configurations.
    pub fn max_configs(mut self, m: usize) -> Self {
        self.max_configs = m;
        self
    }

    /// Adds an invariant checked on every visited configuration.
    pub fn check_invariant(
        mut self,
        f: impl Fn(&Config<P>) -> Result<(), String> + 'p,
    ) -> Self {
        self.invariant = Some(Box::new(f));
        self
    }

    /// Runs the exploration.
    pub fn run(self) -> Report {
        let protocol = self.protocol;
        let init = Config::initial(protocol, &self.inputs);
        let mut seen: HashSet<Config<P>> = HashSet::new();
        let mut queue: VecDeque<(Config<P>, usize)> = VecDeque::new();
        let mut violations = Vec::new();
        let mut complete = true;
        let mut max_depth_seen = 0;
        seen.insert(init.clone());
        queue.push_back((init, 0));

        while let Some((cfg, depth)) = queue.pop_front() {
            max_depth_seen = max_depth_seen.max(depth);
            // Check properties of this configuration.
            let dvals = cfg.decision_values(protocol);
            if dvals.len() > 1 {
                violations.push(Violation::Inconsistent {
                    values: dvals.clone(),
                    depth,
                });
            }
            for v in &dvals {
                let ok = self
                    .inputs
                    .iter()
                    .enumerate()
                    .any(|(i, inp)| cfg.active & (1 << i) != 0 && inp == v);
                if !ok {
                    violations.push(Violation::Trivial { value: *v, depth });
                }
            }
            if let Some(inv) = &self.invariant {
                if let Err(message) = inv(&cfg) {
                    violations.push(Violation::Invariant { message, depth });
                }
            }
            if violations.len() > 100 {
                // Enough evidence; stop collecting.
                complete = false;
                break;
            }
            if depth >= self.max_depth {
                complete = false;
                continue;
            }
            for pid in cfg.eligible(protocol) {
                for (_, succ) in successors(protocol, &cfg, pid) {
                    if seen.len() >= self.max_configs {
                        complete = false;
                        continue;
                    }
                    if seen.insert(succ.clone()) {
                        queue.push_back((succ, depth + 1));
                    }
                }
            }
        }

        Report {
            explored: seen.len(),
            violations,
            complete,
            max_depth: max_depth_seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_core::deterministic::{DetRule, DetTwo};
    use cil_core::two::TwoProcessor;

    #[test]
    fn two_processor_protocol_is_consistent_completely() {
        // The full reachable space of Fig. 1 is finite: the verdict is
        // complete — this mechanizes Theorem 6.
        for inputs in [[Val::A, Val::B], [Val::A, Val::A], [Val::B, Val::A]] {
            let p = TwoProcessor::new();
            let report = Explorer::new(&p, &inputs).run();
            assert!(report.safe(), "violations: {:?}", report.violations);
            assert!(report.complete, "space unexpectedly unbounded");
            // The unanimous space is tiny (9 configs); the split one larger.
            assert!(report.explored >= 9, "explored {}", report.explored);
        }
    }

    #[test]
    fn deterministic_victims_are_consistent_too() {
        for rule in DetRule::ALL {
            let p = DetTwo::new(rule);
            let report = Explorer::new(&p, &[Val::A, Val::B]).run();
            assert!(report.safe(), "{rule}: {:?}", report.violations);
            assert!(report.complete, "{rule}");
        }
    }

    #[test]
    fn depth_bound_marks_report_incomplete() {
        let p = TwoProcessor::new();
        let report = Explorer::new(&p, &[Val::A, Val::B]).max_depth(2).run();
        assert!(!report.complete);
        assert!(report.max_depth <= 2);
    }

    #[test]
    fn invariant_violations_are_reported() {
        let p = TwoProcessor::new();
        let report = Explorer::new(&p, &[Val::A, Val::B])
            .check_invariant(|cfg| {
                if cfg.active == 0b11 {
                    Err("both stepped".into())
                } else {
                    Ok(())
                }
            })
            .run();
        assert!(!report.safe());
        assert!(matches!(
            report.violations[0],
            Violation::Invariant { .. }
        ));
    }

    /// A deliberately broken protocol: each processor decides its own input
    /// immediately. The explorer must catch the inconsistency.
    #[derive(Debug, Clone)]
    struct DecideOwn;

    impl Protocol for DecideOwn {
        type State = (Val, bool);
        type Reg = u8;

        fn processes(&self) -> usize {
            2
        }
        fn registers(&self) -> Vec<cil_registers::RegisterSpec<u8>> {
            cil_registers::access::per_process_registers(2, 0, |_| {
                cil_registers::ReaderSet::All
            })
        }
        fn init(&self, _pid: usize, input: Val) -> (Val, bool) {
            (input, false)
        }
        fn choose(&self, pid: usize, _s: &(Val, bool)) -> cil_sim::Choice<cil_sim::Op<u8>> {
            cil_sim::Choice::det(cil_sim::Op::Write(cil_registers::RegId(pid), 1))
        }
        fn transit(
            &self,
            _pid: usize,
            s: &(Val, bool),
            _op: &cil_sim::Op<u8>,
            _read: Option<&u8>,
        ) -> cil_sim::Choice<(Val, bool)> {
            cil_sim::Choice::det((s.0, true))
        }
        fn decision(&self, s: &(Val, bool)) -> Option<Val> {
            s.1.then_some(s.0)
        }
    }

    #[test]
    fn broken_protocol_is_caught() {
        let report = Explorer::new(&DecideOwn, &[Val::A, Val::B]).run();
        assert!(!report.safe());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Inconsistent { .. })));
    }
}
