//! Exhaustive bounded exploration: mechanized safety checking.
//!
//! The paper proves consistency (Theorems 6 and 8) by hand; this module
//! checks it mechanically by enumerating **every** reachable configuration —
//! all schedules × all coin outcomes — up to a depth/size bound. For the
//! two-processor protocol the reachable space is finite and closed, so the
//! verdict is complete, not just bounded; for the three-processor protocols
//! exploration is bounded by depth.
//!
//! Checked properties:
//!
//! * **Consistency** — no reachable configuration has two decision values;
//! * **Nontriviality** — every decision value in a reachable configuration
//!   is the input of some processor that was activated on the way there;
//! * optional caller-supplied invariants via [`Explorer::check_invariant`].

use crate::config::{successors, Config};
use cil_sim::{Protocol, Val};
use std::collections::{HashSet, VecDeque};
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A safety violation found during exploration.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two processors decided differently.
    Inconsistent {
        /// The distinct decision values present.
        values: Vec<Val>,
        /// BFS depth at which the configuration was reached.
        depth: usize,
    },
    /// A decision value is not the input of any activated processor.
    Trivial {
        /// The offending decision value.
        value: Val,
        /// BFS depth.
        depth: usize,
    },
    /// A caller-supplied invariant failed.
    Invariant {
        /// The invariant's description.
        message: String,
        /// BFS depth.
        depth: usize,
    },
}

/// Per-level BFS statistics: how wide each level was and how effective
/// the seen-set deduplication was there.
///
/// `generated - fresh` successors were duplicates of already-visited
/// configurations (or fell past the `max_configs` cutoff); the dedup hit
/// rate at a level is `1 - fresh / generated`. Both [`Explorer::run`] and
/// [`Explorer::par_run`] produce identical level records, and only for
/// levels that were processed to completion — a mid-level stop (the
/// violation cap) leaves that level out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelStats {
    /// BFS depth of this level (0 = the initial configuration).
    pub depth: usize,
    /// Number of configurations processed at this depth.
    pub frontier: usize,
    /// Successor configurations generated from this level, before
    /// deduplication.
    pub generated: usize,
    /// Successors that were genuinely new (inserted into the seen-set and
    /// carried into the next level).
    pub fresh: usize,
}

/// Result of an exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Number of distinct configurations visited.
    pub explored: usize,
    /// Violations found (empty = safe within bounds).
    pub violations: Vec<Violation>,
    /// `true` if the reachable space was exhausted (the verdict is then
    /// complete, not merely bounded).
    pub complete: bool,
    /// Maximum BFS depth reached.
    pub max_depth: usize,
    /// Per-level frontier/dedup statistics, one entry per completed BFS
    /// level in depth order.
    pub levels: Vec<LevelStats>,
}

impl Report {
    /// Whether no violations were found.
    pub fn safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Breadth-first exhaustive explorer over configurations.
pub struct Explorer<'p, P: Protocol> {
    protocol: &'p P,
    inputs: Vec<Val>,
    max_depth: usize,
    max_configs: usize,
    jobs: usize,
    #[allow(clippy::type_complexity)]
    invariant: Option<Box<dyn Fn(&Config<P>) -> Result<(), String> + Send + Sync + 'p>>,
    #[allow(clippy::type_complexity)]
    on_level: Option<Box<dyn Fn(&LevelStats) + Send + Sync + 'p>>,
}

impl<'p, P: Protocol> Explorer<'p, P> {
    /// Creates an explorer from the given initial inputs.
    pub fn new(protocol: &'p P, inputs: &[Val]) -> Self {
        Explorer {
            protocol,
            inputs: inputs.to_vec(),
            max_depth: usize::MAX,
            max_configs: 5_000_000,
            jobs: 0,
            invariant: None,
            on_level: None,
        }
    }

    /// Bounds the BFS depth (number of steps from the initial
    /// configuration).
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Bounds the number of distinct configurations.
    pub fn max_configs(mut self, m: usize) -> Self {
        self.max_configs = m;
        self
    }

    /// Sets the worker count used by [`Explorer::par_run`]; `0` (the
    /// default) means available parallelism, `1` falls back to the serial
    /// [`Explorer::run`].
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Adds an invariant checked on every visited configuration.
    pub fn check_invariant(
        mut self,
        f: impl Fn(&Config<P>) -> Result<(), String> + Send + Sync + 'p,
    ) -> Self {
        self.invariant = Some(Box::new(f));
        self
    }

    /// Registers a callback invoked once per **completed** BFS level, as
    /// the exploration runs — e.g. a `cil-obs` `LevelReporter`-backed
    /// live progress line. The callback observes exactly the records that
    /// end up in [`Report::levels`], in the same order, from both
    /// [`Explorer::run`] and [`Explorer::par_run`].
    pub fn on_level(mut self, f: impl Fn(&LevelStats) + Send + Sync + 'p) -> Self {
        self.on_level = Some(Box::new(f));
        self
    }

    /// Runs the exploration.
    pub fn run(self) -> Report {
        let protocol = self.protocol;
        let init = Config::initial(protocol, &self.inputs);
        let mut seen: HashSet<Config<P>> = HashSet::new();
        let mut queue: VecDeque<(Config<P>, usize)> = VecDeque::new();
        let mut violations = Vec::new();
        let mut complete = true;
        let mut max_depth_seen = 0;
        // The queue pops in nondecreasing depth order, so a level is
        // complete exactly when the first configuration of the next depth
        // is popped (or the queue drains).
        let mut levels: Vec<LevelStats> = Vec::new();
        let mut level = LevelStats {
            depth: 0,
            frontier: 0,
            generated: 0,
            fresh: 0,
        };
        let mut stopped_mid_level = false;
        seen.insert(init.clone());
        queue.push_back((init, 0));

        while let Some((cfg, depth)) = queue.pop_front() {
            if depth > level.depth {
                levels.push(level);
                if let Some(f) = &self.on_level {
                    f(&level);
                }
                level = LevelStats {
                    depth,
                    frontier: 0,
                    generated: 0,
                    fresh: 0,
                };
            }
            level.frontier += 1;
            max_depth_seen = max_depth_seen.max(depth);
            // Check properties of this configuration.
            let dvals = cfg.decision_values(protocol);
            if dvals.len() > 1 {
                violations.push(Violation::Inconsistent {
                    values: dvals.clone(),
                    depth,
                });
            }
            for v in &dvals {
                let ok = self
                    .inputs
                    .iter()
                    .enumerate()
                    .any(|(i, inp)| cfg.active & (1 << i) != 0 && inp == v);
                if !ok {
                    violations.push(Violation::Trivial { value: *v, depth });
                }
            }
            if let Some(inv) = &self.invariant {
                if let Err(message) = inv(&cfg) {
                    violations.push(Violation::Invariant { message, depth });
                }
            }
            if violations.len() > 100 {
                // Enough evidence; stop collecting.
                complete = false;
                stopped_mid_level = true;
                break;
            }
            if depth >= self.max_depth {
                complete = false;
                continue;
            }
            for pid in cfg.eligible(protocol) {
                for (_, succ) in successors(protocol, &cfg, pid) {
                    level.generated += 1;
                    if seen.len() >= self.max_configs {
                        complete = false;
                        continue;
                    }
                    if seen.insert(succ.clone()) {
                        level.fresh += 1;
                        queue.push_back((succ, depth + 1));
                    }
                }
            }
        }
        if !stopped_mid_level && level.frontier > 0 {
            levels.push(level);
            if let Some(f) = &self.on_level {
                f(&level);
            }
        }

        Report {
            explored: seen.len(),
            violations,
            complete,
            max_depth: max_depth_seen,
            levels,
        }
    }

    /// Runs the exploration across a worker pool, producing the **exact**
    /// [`Report`] the serial [`Explorer::run`] would — same `explored`
    /// count, same violations in the same order, same `complete` flag —
    /// at any worker count.
    ///
    /// The BFS is level-synchronized. Within a level the expensive work
    /// (decision values, invariant evaluation, successor generation — all
    /// pure functions of a configuration) is fanned out over workers that
    /// claim fixed-size chunks of the frontier from a shared atomic cursor
    /// (deterministic work-stealing: the claim order varies, the per-index
    /// results do not). The seen-set is a sharded hash set keyed by config
    /// hash: read-only during the parallel phase (workers pre-screen
    /// successors against the level-start snapshot), mutated only in the
    /// sequential merge that walks the frontier in index order, replaying
    /// the serial queue discipline — including the violation cap, the
    /// depth bound, and the `max_configs` cutoff — bit for bit.
    pub fn par_run(self) -> Report
    where
        P: Sync,
        P::State: Send + Sync,
        P::Reg: Send + Sync,
    {
        let jobs = cil_sim::resolve_jobs(self.jobs);
        if jobs <= 1 {
            return self.run();
        }

        let protocol = self.protocol;
        let init = Config::initial(protocol, &self.inputs);
        let mut seen: ShardedSeen<P> = ShardedSeen::new();
        let mut violations = Vec::new();
        let mut complete = true;
        let mut max_depth_seen = 0;
        let mut levels: Vec<LevelStats> = Vec::new();
        seen.insert(init.clone());
        let mut frontier: Vec<Config<P>> = vec![init];
        let mut depth = 0usize;

        'levels: while !frontier.is_empty() {
            let expand = depth < self.max_depth;
            let expanded = expand_level(
                protocol,
                &frontier,
                &seen,
                self.invariant.as_deref(),
                expand,
                jobs,
            );

            // Sequential merge in frontier order: identical to the serial
            // loop popping these configurations from its queue.
            let mut next: Vec<Config<P>> = Vec::new();
            let mut level = LevelStats {
                depth,
                frontier: frontier.len(),
                generated: 0,
                fresh: 0,
            };
            for (idx, exp) in expanded.into_iter().enumerate() {
                max_depth_seen = max_depth_seen.max(depth);
                if exp.dvals.len() > 1 {
                    violations.push(Violation::Inconsistent {
                        values: exp.dvals.clone(),
                        depth,
                    });
                }
                for v in &exp.dvals {
                    let ok = self
                        .inputs
                        .iter()
                        .enumerate()
                        .any(|(i, inp)| frontier[idx].active & (1 << i) != 0 && inp == v);
                    if !ok {
                        violations.push(Violation::Trivial { value: *v, depth });
                    }
                }
                if let Some(message) = exp.inv_err {
                    violations.push(Violation::Invariant { message, depth });
                }
                if violations.len() > 100 {
                    // A mid-level stop: the level record is dropped, as in
                    // the serial path.
                    complete = false;
                    break 'levels;
                }
                if !expand {
                    complete = false;
                    continue;
                }
                for succ in exp.succs {
                    level.generated += 1;
                    if seen.len() >= self.max_configs {
                        complete = false;
                        continue;
                    }
                    // `None` marks a successor the parallel phase already
                    // found in the level-start snapshot: the serial insert
                    // would return false, but its cap check (above) still
                    // runs.
                    if let Some(succ) = succ {
                        if seen.insert(succ.clone()) {
                            level.fresh += 1;
                            next.push(succ);
                        }
                    }
                }
            }
            levels.push(level);
            if let Some(f) = &self.on_level {
                f(&level);
            }
            frontier = next;
            depth += 1;
        }

        Report {
            explored: seen.len(),
            violations,
            complete,
            max_depth: max_depth_seen,
            levels,
        }
    }
}

/// Per-configuration results of the parallel phase: everything the merge
/// needs, computed as pure functions of the configuration.
struct Expanded<P: Protocol> {
    dvals: Vec<Val>,
    inv_err: Option<String>,
    /// Successors in the serial generation order (eligible pid ascending,
    /// then branch order). `None` = already present in the level-start
    /// seen snapshot.
    succs: Vec<Option<Config<P>>>,
}

/// Chunk of frontier indices a worker claims per fetch.
const CLAIM_CHUNK: usize = 32;

#[allow(clippy::type_complexity)]
fn expand_level<P>(
    protocol: &P,
    frontier: &[Config<P>],
    seen: &ShardedSeen<P>,
    invariant: Option<&(dyn Fn(&Config<P>) -> Result<(), String> + Send + Sync)>,
    expand: bool,
    jobs: usize,
) -> Vec<Expanded<P>>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
    P::Reg: Send + Sync,
{
    let cursor = AtomicUsize::new(0);
    let mut gathered: Vec<(usize, Expanded<P>)> = Vec::with_capacity(frontier.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                        if start >= frontier.len() {
                            break;
                        }
                        let end = (start + CLAIM_CHUNK).min(frontier.len());
                        for (idx, cfg) in frontier.iter().enumerate().take(end).skip(start) {
                            let dvals = cfg.decision_values(protocol);
                            let inv_err = invariant.and_then(|inv| inv(cfg).err());
                            let mut succs = Vec::new();
                            if expand {
                                for pid in cfg.eligible(protocol) {
                                    for (_, succ) in successors(protocol, cfg, pid) {
                                        succs.push(if seen.contains(&succ) {
                                            None
                                        } else {
                                            Some(succ)
                                        });
                                    }
                                }
                            }
                            out.push((
                                idx,
                                Expanded {
                                    dvals,
                                    inv_err,
                                    succs,
                                },
                            ));
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            gathered.extend(handle.join().expect("exploration worker panicked"));
        }
    });
    gathered.sort_by_key(|(idx, _)| *idx);
    gathered.into_iter().map(|(_, exp)| exp).collect()
}

/// A seen-set sharded by configuration hash.
///
/// During a level's parallel phase workers hold a shared reference and do
/// lock-free membership pre-checks against the level-start snapshot; all
/// mutation happens in the sequential merge phase through `&mut self`, so
/// no locks are needed in either phase.
struct ShardedSeen<P: Protocol> {
    shards: Vec<HashSet<Config<P>>>,
    len: usize,
}

const SHARDS: usize = 64;

impl<P: Protocol> ShardedSeen<P> {
    fn new() -> Self {
        ShardedSeen {
            shards: (0..SHARDS).map(|_| HashSet::new()).collect(),
            len: 0,
        }
    }

    fn shard_of(cfg: &Config<P>) -> usize {
        let hasher = BuildHasherDefault::<DefaultHasher>::default();
        // Spread the hash's high bits over the shard index; HashSet uses
        // the low bits for its buckets.
        (hasher.hash_one(cfg) >> (64 - 6)) as usize % SHARDS
    }

    fn contains(&self, cfg: &Config<P>) -> bool {
        self.shards[Self::shard_of(cfg)].contains(cfg)
    }

    fn insert(&mut self, cfg: Config<P>) -> bool {
        let fresh = self.shards[Self::shard_of(&cfg)].insert(cfg);
        if fresh {
            self.len += 1;
        }
        fresh
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_core::deterministic::{DetRule, DetTwo};
    use cil_core::two::TwoProcessor;

    #[test]
    fn two_processor_protocol_is_consistent_completely() {
        // The full reachable space of Fig. 1 is finite: the verdict is
        // complete — this mechanizes Theorem 6.
        for inputs in [[Val::A, Val::B], [Val::A, Val::A], [Val::B, Val::A]] {
            let p = TwoProcessor::new();
            let report = Explorer::new(&p, &inputs).run();
            assert!(report.safe(), "violations: {:?}", report.violations);
            assert!(report.complete, "space unexpectedly unbounded");
            // The unanimous space is tiny (9 configs); the split one larger.
            assert!(report.explored >= 9, "explored {}", report.explored);
        }
    }

    #[test]
    fn deterministic_victims_are_consistent_too() {
        for rule in DetRule::ALL {
            let p = DetTwo::new(rule);
            let report = Explorer::new(&p, &[Val::A, Val::B]).run();
            assert!(report.safe(), "{rule}: {:?}", report.violations);
            assert!(report.complete, "{rule}");
        }
    }

    #[test]
    fn depth_bound_marks_report_incomplete() {
        let p = TwoProcessor::new();
        let report = Explorer::new(&p, &[Val::A, Val::B]).max_depth(2).run();
        assert!(!report.complete);
        assert!(report.max_depth <= 2);
    }

    #[test]
    fn invariant_violations_are_reported() {
        let p = TwoProcessor::new();
        let report = Explorer::new(&p, &[Val::A, Val::B])
            .check_invariant(|cfg| {
                if cfg.active == 0b11 {
                    Err("both stepped".into())
                } else {
                    Ok(())
                }
            })
            .run();
        assert!(!report.safe());
        assert!(matches!(report.violations[0], Violation::Invariant { .. }));
    }

    /// A deliberately broken protocol: each processor decides its own input
    /// immediately. The explorer must catch the inconsistency.
    #[derive(Debug, Clone)]
    struct DecideOwn;

    impl Protocol for DecideOwn {
        type State = (Val, bool);
        type Reg = u8;

        fn processes(&self) -> usize {
            2
        }
        fn registers(&self) -> Vec<cil_registers::RegisterSpec<u8>> {
            cil_registers::access::per_process_registers(2, 0, |_| cil_registers::ReaderSet::All)
        }
        fn init(&self, _pid: usize, input: Val) -> (Val, bool) {
            (input, false)
        }
        fn choose(&self, pid: usize, _s: &(Val, bool)) -> cil_sim::Choice<cil_sim::Op<u8>> {
            cil_sim::Choice::det(cil_sim::Op::Write(cil_registers::RegId(pid), 1))
        }
        fn transit(
            &self,
            _pid: usize,
            s: &(Val, bool),
            _op: &cil_sim::Op<u8>,
            _read: Option<&u8>,
        ) -> cil_sim::Choice<(Val, bool)> {
            cil_sim::Choice::det((s.0, true))
        }
        fn decision(&self, s: &(Val, bool)) -> Option<Val> {
            s.1.then_some(s.0)
        }
    }

    #[test]
    fn broken_protocol_is_caught() {
        let report = Explorer::new(&DecideOwn, &[Val::A, Val::B]).run();
        assert!(!report.safe());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Inconsistent { .. })));
    }

    #[test]
    fn par_run_matches_serial_exactly() {
        for jobs in [2, 3, 8] {
            for inputs in [[Val::A, Val::B], [Val::A, Val::A]] {
                let p = TwoProcessor::new();
                let serial = Explorer::new(&p, &inputs).run();
                let par = Explorer::new(&p, &inputs).jobs(jobs).par_run();
                assert_eq!(serial, par, "jobs = {jobs}, inputs = {inputs:?}");
            }
        }
    }

    #[test]
    fn par_run_matches_serial_on_broken_protocol() {
        // Violations must come back in the same order with the same cap
        // behavior.
        let serial = Explorer::new(&DecideOwn, &[Val::A, Val::B]).run();
        let par = Explorer::new(&DecideOwn, &[Val::A, Val::B])
            .jobs(4)
            .par_run();
        assert_eq!(serial, par);
    }

    #[test]
    fn par_run_matches_serial_under_bounds() {
        let p = TwoProcessor::new();
        // Depth bound.
        let serial = Explorer::new(&p, &[Val::A, Val::B]).max_depth(3).run();
        let par = Explorer::new(&p, &[Val::A, Val::B])
            .max_depth(3)
            .jobs(4)
            .par_run();
        assert_eq!(serial, par);
        // Config-count bound small enough to trip mid-level.
        let serial = Explorer::new(&p, &[Val::A, Val::B]).max_configs(20).run();
        let par = Explorer::new(&p, &[Val::A, Val::B])
            .max_configs(20)
            .jobs(4)
            .par_run();
        assert_eq!(serial, par);
    }

    #[test]
    fn par_run_matches_serial_with_invariant() {
        let p = TwoProcessor::new();
        let inv = |cfg: &Config<TwoProcessor>| {
            if cfg.active == 0b11 {
                Err("both stepped".into())
            } else {
                Ok(())
            }
        };
        let serial = Explorer::new(&p, &[Val::A, Val::B])
            .check_invariant(inv)
            .run();
        let par = Explorer::new(&p, &[Val::A, Val::B])
            .check_invariant(inv)
            .jobs(8)
            .par_run();
        assert_eq!(serial, par);
    }

    #[test]
    fn level_stats_account_for_the_whole_exploration() {
        let p = TwoProcessor::new();
        let report = Explorer::new(&p, &[Val::A, Val::B]).run();
        assert!(!report.levels.is_empty());
        // Frontiers partition the explored set; fresh counts seed the next
        // frontier; depths are consecutive from 0.
        let popped: usize = report.levels.iter().map(|l| l.frontier).sum();
        assert_eq!(popped, report.explored);
        for (i, l) in report.levels.iter().enumerate() {
            assert_eq!(l.depth, i);
            assert!(l.fresh <= l.generated, "level {i}");
            let next_frontier = report.levels.get(i + 1).map_or(0, |n| n.frontier);
            assert_eq!(l.fresh, next_frontier, "level {i}");
        }
    }

    #[test]
    fn on_level_streams_the_report_levels() {
        use std::sync::Mutex;
        let p = TwoProcessor::new();
        let streamed = Mutex::new(Vec::new());
        let report = Explorer::new(&p, &[Val::A, Val::B])
            .on_level(|l| streamed.lock().unwrap().push(*l))
            .run();
        assert_eq!(*streamed.lock().unwrap(), report.levels);

        let streamed_par = Mutex::new(Vec::new());
        let par = Explorer::new(&p, &[Val::A, Val::B])
            .jobs(4)
            .on_level(|l| streamed_par.lock().unwrap().push(*l))
            .par_run();
        assert_eq!(*streamed_par.lock().unwrap(), par.levels);
        assert_eq!(report.levels, par.levels);
    }

    #[test]
    fn par_run_with_one_job_is_the_serial_path() {
        let p = TwoProcessor::new();
        let serial = Explorer::new(&p, &[Val::A, Val::B]).run();
        let par = Explorer::new(&p, &[Val::A, Val::B]).jobs(1).par_run();
        assert_eq!(serial, par);
    }
}
