//! Exact adversary analysis by MDP value iteration.
//!
//! The paper's Theorem 7 bounds the two-processor protocol's behaviour under
//! *every* adaptive adversary: decision within expected ≤ 10 steps per
//! processor, and `P[undecided after k+2 own steps] ≤ (1/4)^{k/2}`. Because
//! the protocol's configuration space is **finite**, the worst case is not
//! just boundable but *computable*: the protocol plus an adaptive adversary
//! is a Markov decision process in which the adversary picks the next
//! processor (knowing everything except future coins) and the coins resolve
//! probabilistically.
//!
//! [`MdpSolver`] enumerates the closed configuration space and computes:
//!
//! * [`MdpSolver::expected_steps`] — the exact supremum, over all adaptive
//!   adversaries, of the expected number of steps a target processor takes
//!   before deciding (value iteration on a nonnegative total-cost MDP);
//! * [`MdpSolver::survival`] — the exact worst-case probability that the
//!   target is still undecided after `k` of its own activations;
//! * [`MdpSolver::policy_adversary`] — the optimal adversary itself, as a
//!   [`cil_sim::Adversary`] that can be replayed in Monte-Carlo runs.

use crate::config::{successors, Config};
use cil_sim::{Adversary, Protocol, Val, View};
use std::collections::HashMap;

/// Which cost the adversary maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Expected number of activations of one processor until it decides.
    StepsOf(usize),
    /// Expected total number of steps until every processor has decided.
    TotalSteps,
}

/// The enumerated MDP of a protocol from fixed inputs.
pub struct MdpSolver<P: Protocol> {
    configs: Vec<Config<P>>,
    index: HashMap<Config<P>, usize>,
    /// `moves[c][j] = (pid, branches)` for each eligible pid.
    #[allow(clippy::type_complexity)]
    moves: Vec<Vec<(usize, Vec<(f64, usize)>)>>,
    initial: usize,
}

/// Result of a value-iteration solve.
#[derive(Debug)]
pub struct Solve {
    /// Optimal (worst-case) value at the initial configuration.
    pub value: f64,
    /// Optimal value of every enumerated configuration.
    pub values: Vec<f64>,
    /// Argmax processor per configuration (None = absorbing).
    pub policy: Vec<Option<usize>>,
    /// Iterations used.
    pub iterations: usize,
    /// Sup-norm residual after each sweep (one entry per iteration). A
    /// deterministic function of the model — identical at any `--jobs` —
    /// so it exports as a convergence time series.
    pub residuals: Vec<f64>,
    /// Wall-clock nanoseconds per sweep (one entry per iteration). Real
    /// time: reproducible in shape, not in value.
    pub sweep_ns: Vec<u64>,
}

impl<P: Protocol> MdpSolver<P> {
    /// Enumerates the closed reachable configuration space.
    ///
    /// # Panics
    ///
    /// Panics if the space exceeds `max_configs` — the analysis is exact and
    /// needs the whole graph (use the Monte-Carlo harness for protocols with
    /// unbounded registers).
    pub fn build(protocol: &P, inputs: &[Val], max_configs: usize) -> Self {
        Self::build_bounded(protocol, inputs, max_configs, usize::MAX)
    }

    /// Like [`MdpSolver::build`], but stops expanding at BFS depth
    /// `max_depth`: configurations first reached there keep an empty move
    /// list, so their value stays 0 under every objective. This truncation
    /// matches the compact backend's depth-bounded mode exactly, which is
    /// what makes the two backends cross-validatable on protocols whose
    /// full reachable space is infinite (the paper's §5 family).
    ///
    /// # Panics
    ///
    /// Panics if the bounded space still exceeds `max_configs`.
    pub fn build_bounded(
        protocol: &P,
        inputs: &[Val],
        max_configs: usize,
        max_depth: usize,
    ) -> Self {
        let init = Config::initial(protocol, inputs);
        let mut configs = vec![init.clone()];
        let mut depths = vec![0usize];
        let mut index = HashMap::new();
        index.insert(init, 0usize);
        let mut moves = Vec::new();
        let mut next = 0usize;
        // Index order is BFS (first-seen) order, so `depths[next]` is the
        // configuration's true BFS depth.
        while next < configs.len() {
            let cfg = configs[next].clone();
            let depth = depths[next];
            let mut cfg_moves = Vec::new();
            if depth < max_depth {
                for pid in cfg.eligible(protocol) {
                    let mut branches = Vec::new();
                    for (p, succ) in successors(protocol, &cfg, pid) {
                        let idx = *index.entry(succ.clone()).or_insert_with(|| {
                            configs.push(succ);
                            depths.push(depth + 1);
                            configs.len() - 1
                        });
                        assert!(
                            configs.len() <= max_configs,
                            "configuration space exceeds {max_configs}"
                        );
                        branches.push((p, idx));
                    }
                    cfg_moves.push((pid, branches));
                }
            }
            moves.push(cfg_moves);
            next += 1;
        }
        MdpSolver {
            configs,
            index,
            moves,
            initial: 0,
        }
    }

    /// Number of configurations in the space.
    pub fn size(&self) -> usize {
        self.configs.len()
    }

    fn absorbing(&self, protocol: &P, idx: usize, objective: Objective) -> bool {
        let cfg = &self.configs[idx];
        match objective {
            Objective::StepsOf(t) => protocol.decision(&cfg.states[t]).is_some(),
            Objective::TotalSteps => cfg.eligible(protocol).is_empty(),
        }
    }

    /// Value iteration for the worst-case expected cost.
    ///
    /// Converges monotonically from below to the least fixpoint, which for
    /// nonnegative total-cost MDPs equals the supremum over all adversary
    /// strategies. Stops at sup-norm `tol` or `max_iter` sweeps.
    pub fn expected_steps(
        &self,
        protocol: &P,
        objective: Objective,
        tol: f64,
        max_iter: usize,
    ) -> Solve {
        let n = self.configs.len();
        let mut v = vec![0.0f64; n];
        let mut policy: Vec<Option<usize>> = vec![None; n];
        let mut iterations = 0;
        let mut residuals = Vec::new();
        let mut sweep_ns = Vec::new();
        for it in 0..max_iter {
            iterations = it + 1;
            let sweep_started = std::time::Instant::now();
            let mut delta = 0.0f64;
            for i in 0..n {
                if self.absorbing(protocol, i, objective) {
                    continue;
                }
                let mut best = f64::NEG_INFINITY;
                let mut best_pid = None;
                for (pid, branches) in &self.moves[i] {
                    let cost = match objective {
                        Objective::StepsOf(t) => f64::from(u8::from(*pid == t)),
                        Objective::TotalSteps => 1.0,
                    };
                    let val: f64 = cost + branches.iter().map(|&(p, j)| p * v[j]).sum::<f64>();
                    if val > best {
                        best = val;
                        best_pid = Some(*pid);
                    }
                }
                if best_pid.is_none() {
                    continue; // no eligible moves (should be absorbing)
                }
                delta = delta.max((best - v[i]).abs());
                v[i] = best;
                policy[i] = best_pid;
            }
            residuals.push(delta);
            sweep_ns.push(u64::try_from(sweep_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            if delta < tol {
                break;
            }
        }
        Solve {
            value: v[self.initial],
            values: v,
            policy,
            iterations,
            residuals,
            sweep_ns,
        }
    }

    /// Worst-case survival curve: for `k = 0..=k_max`, the supremum over
    /// adversaries of `P[target undecided after k more of its own
    /// activations]`, from the initial configuration.
    ///
    /// Layered fixpoint: within a layer the adversary may take any number
    /// of non-target steps; a target step consumes one unit of `k`.
    pub fn survival(
        &self,
        protocol: &P,
        target: usize,
        k_max: usize,
        tol: f64,
        max_iter: usize,
    ) -> Vec<f64> {
        let n = self.configs.len();
        let undecided: Vec<bool> = (0..n)
            .map(|i| protocol.decision(&self.configs[i].states[target]).is_none())
            .collect();
        let mut prev: Vec<f64> = undecided.iter().map(|&u| f64::from(u8::from(u))).collect();
        let mut curve = vec![prev[self.initial]];
        for _k in 1..=k_max {
            // Solve g = T(g) by iteration from 0 (least fixpoint: the
            // adversary must eventually deliver the target's activation).
            let mut g = vec![0.0f64; n];
            for _ in 0..max_iter {
                let mut delta = 0.0f64;
                for i in 0..n {
                    if !undecided[i] {
                        continue; // g stays 0
                    }
                    let mut best = 0.0f64;
                    for (pid, branches) in &self.moves[i] {
                        let val: f64 = if *pid == target {
                            branches.iter().map(|&(p, j)| p * prev[j]).sum()
                        } else {
                            branches.iter().map(|&(p, j)| p * g[j]).sum()
                        };
                        best = best.max(val);
                    }
                    if (best - g[i]).abs() > delta {
                        delta = (best - g[i]).abs();
                    }
                    g[i] = best;
                }
                if delta < tol {
                    break;
                }
            }
            curve.push(g[self.initial]);
            prev = g;
        }
        curve
    }

    /// Exports the optimal adversary from a solve as a replayable scheduler.
    pub fn policy_adversary(&self, solve: &Solve) -> PolicyAdversary<P> {
        let mut map = HashMap::new();
        for (i, cfg) in self.configs.iter().enumerate() {
            if let Some(pid) = solve.policy[i] {
                map.entry((cfg.states.clone(), cfg.regs.clone()))
                    .or_insert(pid);
            }
        }
        PolicyAdversary { map }
    }

    /// Looks up a configuration's index (for tests and diagnostics).
    pub fn find(&self, cfg: &Config<P>) -> Option<usize> {
        self.index.get(cfg).copied()
    }
}

/// The optimal adversary of an [`MdpSolver`] solve, usable as a
/// [`cil_sim::Adversary`] in Monte-Carlo runs.
pub struct PolicyAdversary<P: Protocol> {
    #[allow(clippy::type_complexity)]
    map: HashMap<(Vec<P::State>, Vec<P::Reg>), usize>,
}

impl<P: Protocol> std::fmt::Debug for PolicyAdversary<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PolicyAdversary({} configurations)", self.map.len())
    }
}

impl<P: Protocol> Adversary<P> for PolicyAdversary<P> {
    fn pick(&mut self, view: &View<'_, P>) -> usize {
        let key = (view.states.to_vec(), view.regs.to_vec());
        if let Some(&pid) = self.map.get(&key) {
            if !view.crashed[pid] && view.protocol.decision(&view.states[pid]).is_none() {
                return pid;
            }
        }
        view.eligible()[0]
    }

    fn name(&self) -> String {
        "mdp-optimal".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_core::two::TwoProcessor;
    use cil_sim::{Runner, StopWhen};

    #[test]
    fn space_is_small_and_closed() {
        let p = TwoProcessor::new();
        let m = MdpSolver::build(&p, &[Val::A, Val::B], 100_000);
        assert!(m.size() < 2_000, "space size {}", m.size());
    }

    #[test]
    fn equal_inputs_cost_exactly_two_steps() {
        let p = TwoProcessor::new();
        let m = MdpSolver::build(&p, &[Val::A, Val::A], 100_000);
        let s = m.expected_steps(&p, Objective::StepsOf(0), 1e-12, 10_000);
        assert!((s.value - 2.0).abs() < 1e-9, "value {}", s.value);
    }

    #[test]
    fn theorem_7_corollary_is_exactly_tight() {
        // The paper's Corollary bounds the expectation by 2 + 4·2 = 10.
        // The exact optimal adaptive adversary achieves it with equality —
        // the bound is tight, which the paper does not state.
        let p = TwoProcessor::new();
        let m = MdpSolver::build(&p, &[Val::A, Val::B], 100_000);
        let s = m.expected_steps(&p, Objective::StepsOf(0), 1e-12, 100_000);
        assert!(
            (s.value - 10.0).abs() < 1e-6,
            "exact optimum should be 10, got {}",
            s.value
        );
    }

    #[test]
    fn survival_curve_is_exactly_three_quarters_per_pair() {
        // Theorem 7's proof: every read–write pair after the initial write
        // decides with probability ≥ 1/4, so
        // P[not decided after k+2 own steps] ≤ (3/4)^{k/2}.
        // (The paper's text displays (1/4)^{k/2}, an evident slip: it would
        // contradict the paper's own Corollary E ≤ 2 + 4·2.)
        // The exact worst case meets (3/4)^{k/2} with equality at even k.
        let p = TwoProcessor::new();
        let m = MdpSolver::build(&p, &[Val::A, Val::B], 100_000);
        let curve = m.survival(&p, 0, 20, 1e-13, 200_000);
        assert!((curve[0] - 1.0).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "curve must be nonincreasing");
        }
        for j in 0..=9 {
            let expect = 0.75f64.powi(j as i32);
            let got = curve[2 + 2 * j];
            assert!(
                (got - expect).abs() < 1e-9,
                "survival({}) = {got}, expected (3/4)^{j} = {expect}",
                2 + 2 * j
            );
        }
        // Odd steps cannot decide (they are writes): the curve is flat
        // between consecutive even ks.
        for j in 1..=9 {
            assert!((curve[2 * j + 1] - curve[2 * j]).abs() < 1e-9);
        }
    }

    #[test]
    fn optimal_policy_replays_in_the_simulator() {
        let p = TwoProcessor::new();
        let m = MdpSolver::build(&p, &[Val::A, Val::B], 100_000);
        let s = m.expected_steps(&p, Objective::StepsOf(0), 1e-12, 100_000);
        let runs = 4_000u64;
        let mut total0 = 0u64;
        for seed in 0..runs {
            let adv = m.policy_adversary(&s);
            let out = Runner::new(&p, &[Val::A, Val::B], adv)
                .seed(seed)
                .stop_when(StopWhen::PidDecided(0))
                .max_steps(100_000)
                .run();
            assert!(out.consistent());
            total0 += out.steps[0];
        }
        let mean = total0 as f64 / runs as f64;
        // Monte-Carlo mean under the optimal policy ≈ the exact value.
        assert!(
            (mean - s.value).abs() < 0.4,
            "MC mean {mean} vs exact {}",
            s.value
        );
    }

    #[test]
    fn total_steps_objective_is_at_least_per_processor() {
        let p = TwoProcessor::new();
        let m = MdpSolver::build(&p, &[Val::A, Val::B], 100_000);
        let per = m.expected_steps(&p, Objective::StepsOf(0), 1e-10, 100_000);
        let tot = m.expected_steps(&p, Objective::TotalSteps, 1e-10, 100_000);
        assert!(tot.value >= per.value - 1e-9);
        assert!(tot.value <= 20.0 + 1e-9, "total {}", tot.value);
    }
}
