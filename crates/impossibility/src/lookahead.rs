//! A bounded-horizon optimal adversary for protocols whose full state space
//! is too large to enumerate (the §5/§6 three-processor protocols).
//!
//! The MDP solver ([`crate::mdp`]) computes the *globally* optimal adversary
//! but needs the closed configuration space. [`LookaheadAdversary`] instead
//! solves, at every scheduling point, the exact `h`-step game rooted at the
//! current configuration: it picks the processor minimizing the probability
//! that **any** processor decides within the next `h` steps (adversary moves
//! minimize; coin branches average). With `h` around 4–6 this is a far
//! stronger opponent than any heuristic in `cil-sim`, while staying
//! protocol-agnostic — a practical stand-in for the paper's "worst possible
//! sequencing of events".

use crate::config::{successors, Config};
use cil_sim::{Adversary, Protocol, View};
use std::collections::HashMap;

/// Exact `h`-step minimizing adversary.
pub struct LookaheadAdversary<P: Protocol> {
    horizon: u32,
    memo: HashMap<(Config<P>, u32), f64>,
}

impl<P: Protocol> LookaheadAdversary<P> {
    /// Creates the adversary with the given horizon (steps of lookahead).
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`.
    pub fn new(horizon: u32) -> Self {
        assert!(horizon > 0, "lookahead needs at least one step");
        LookaheadAdversary {
            horizon,
            memo: HashMap::new(),
        }
    }

    /// Minimal probability (over adversary moves) that any processor has
    /// decided within `h` further steps, starting from `cfg`.
    fn decide_prob(&mut self, protocol: &P, cfg: &Config<P>, h: u32) -> f64 {
        if cfg.any_decided(protocol) {
            return 1.0;
        }
        if h == 0 {
            return 0.0;
        }
        if let Some(&v) = self.memo.get(&(cfg.clone(), h)) {
            return v;
        }
        let eligible = cfg.eligible(protocol);
        let mut best = 1.0f64;
        for pid in eligible {
            let mut p_decide = 0.0;
            for (p, succ) in successors(protocol, cfg, pid) {
                p_decide += p * self.decide_prob(protocol, &succ, h - 1);
            }
            best = best.min(p_decide);
        }
        self.memo.insert((cfg.clone(), h), best);
        best
    }
}

impl<P: Protocol> Adversary<P> for LookaheadAdversary<P> {
    fn pick(&mut self, view: &View<'_, P>) -> usize {
        // Memoized values are rooted in absolute configurations, so they
        // stay valid across calls; cap the table to bound memory on long
        // runs.
        if self.memo.len() > 2_000_000 {
            self.memo.clear();
        }
        let cfg = Config::<P> {
            states: view.states.to_vec(),
            regs: view.regs.to_vec(),
            active: 0, // irrelevant for dynamics
        };
        let eligible = view.eligible();
        let mut best_pid = eligible[0];
        let mut best = f64::INFINITY;
        for &pid in &eligible {
            if view.crashed[pid] {
                continue;
            }
            let mut p_decide = 0.0;
            for (p, succ) in successors(view.protocol, &cfg, pid) {
                p_decide += p * self.decide_prob(view.protocol, &succ, self.horizon - 1);
            }
            if p_decide < best {
                best = p_decide;
                best_pid = pid;
            }
        }
        best_pid
    }

    fn name(&self) -> String {
        format!("lookahead({})", self.horizon)
    }
}

impl<P: Protocol> std::fmt::Debug for LookaheadAdversary<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LookaheadAdversary(h = {}, memo = {})",
            self.horizon,
            self.memo.len()
        )
    }
}

impl<P: Protocol> Adversary<P> for &mut LookaheadAdversary<P> {
    fn pick(&mut self, view: &View<'_, P>) -> usize {
        (**self).pick(view)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

/// The exact minimal probability, over all adaptive adversaries, that
/// **any** processor decides within `horizon` steps from the initial
/// configuration — the game-theoretic "how long can the adversary certainly
/// stall" curve. Deterministic protocols yield 0/1 values (Theorem 4: a
/// deterministic victim can be stalled forever, so the value is 0 for every
/// horizon); randomized protocols yield the paper's vanishing-probability
/// guarantee made exact.
pub fn min_decide_prob<P: Protocol>(protocol: &P, inputs: &[cil_sim::Val], horizon: u32) -> f64 {
    let mut la = LookaheadAdversary::new(horizon.max(1));
    let cfg = Config::initial(protocol, inputs);
    la.decide_prob(protocol, &cfg, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_core::n_unbounded::NUnbounded;
    use cil_core::three_bounded::ThreeBounded;
    use cil_core::two::TwoProcessor;
    use cil_sim::{Halt, RandomScheduler, Runner, StopWhen, Val};

    #[test]
    fn cannot_block_the_two_processor_protocol() {
        let p = TwoProcessor::new();
        let runs = 300u64;
        let mut total = 0u64;
        for seed in 0..runs {
            let out = Runner::new(&p, &[Val::A, Val::B], LookaheadAdversary::new(4))
                .seed(seed)
                .stop_when(StopWhen::PidDecided(0))
                .max_steps(100_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "seed {seed}");
            assert!(out.consistent());
            total += out.steps[0];
        }
        // Lookahead is strong but bounded by the exact optimum of 10.
        let mean = total as f64 / runs as f64;
        assert!(mean <= 11.0, "mean {mean} exceeds the exact optimum");
        assert!(mean > 3.0, "mean {mean}: lookahead suspiciously weak");
    }

    #[test]
    fn slows_down_but_cannot_block_fig2() {
        let p = NUnbounded::three();
        for seed in 0..30 {
            let out = Runner::new(&p, &[Val::A, Val::B, Val::A], LookaheadAdversary::new(3))
                .seed(seed)
                .max_steps(1_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "seed {seed}");
            assert!(out.consistent() && out.nontrivial());
        }
    }

    #[test]
    fn slows_down_but_cannot_block_the_bounded_protocol() {
        let p = ThreeBounded::new();
        for seed in 0..20 {
            let out = Runner::new(&p, &[Val::B, Val::A, Val::B], LookaheadAdversary::new(3))
                .seed(seed)
                .max_steps(2_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "seed {seed}");
            assert!(out.consistent() && out.nontrivial());
        }
    }

    #[test]
    fn min_decide_prob_is_zero_for_deterministic_victims() {
        use cil_core::deterministic::{DetRule, DetTwo};
        for rule in DetRule::ALL {
            let p = DetTwo::new(rule);
            let v = min_decide_prob(&p, &[Val::A, Val::B], 12);
            assert_eq!(v, 0.0, "{rule}: adversary can always stall");
        }
    }

    #[test]
    fn min_decide_prob_grows_for_the_randomized_protocol() {
        let p = TwoProcessor::new();
        let inputs = [Val::A, Val::B];
        // Monotone nondecreasing in the horizon, 0 at small horizons (the
        // adversary can certainly stall a few steps), positive later.
        let mut prev = 0.0;
        let mut positive_seen = false;
        for h in 1..=12 {
            let v = min_decide_prob(&p, &inputs, h);
            assert!(v >= prev - 1e-12, "horizon {h}: {v} < {prev}");
            assert!((0.0..=1.0).contains(&v));
            positive_seen |= v > 0.0;
            prev = v;
        }
        assert!(
            positive_seen,
            "randomized protocol must force positive decision probability"
        );
    }

    #[test]
    fn lookahead_is_stronger_than_random() {
        // Mean steps under lookahead(4) must exceed mean under random.
        let p = TwoProcessor::new();
        let runs = 500u64;
        let mean = |mk: &dyn Fn(u64) -> Box<dyn Adversary<TwoProcessor>>| {
            let mut total = 0u64;
            for seed in 0..runs {
                let out = Runner::new(&p, &[Val::A, Val::B], mk(seed))
                    .seed(seed)
                    .stop_when(StopWhen::PidDecided(0))
                    .max_steps(100_000)
                    .run();
                total += out.steps[0];
            }
            total as f64 / runs as f64
        };
        let random = mean(&|s| Box::new(RandomScheduler::new(s)));
        let strong = mean(&|_| Box::new(LookaheadAdversary::new(4)));
        assert!(
            strong > random + 1.0,
            "lookahead {strong} vs random {random}"
        );
    }
}
