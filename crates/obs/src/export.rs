//! OpenMetrics / Prometheus text-format rendering of a
//! [`MetricsSnapshot`], the machine-readable sibling of the canonical
//! JSON export.
//!
//! The rendering is deterministic: metric names sort, bucket boundaries
//! are derived from the snapshot shape, and nothing depends on wall-clock
//! state — so two equal snapshots render byte-identically, preserving the
//! jobs-count-invariance contract for `--metrics-out … --metrics-format
//! openmetrics`.
//!
//! Mapping notes:
//!
//! * Counters render as `<name>_total`; gauges as bare samples.
//! * Histograms (linear and log-scale) render as cumulative
//!   `_bucket{le="…"}` samples plus `_sum`/`_count`. All observed values
//!   are integers, so the inclusive `le` of a bucket covering `[lo, hi)`
//!   is `hi - 1` — exact, no epsilon games.
//! * Span stats render as three counter families (`span_count`,
//!   `span_total_ns`, `span_self_ns`) labeled by path; series render as
//!   gauges labeled by index.
//! * Metric names are sanitized to `[a-zA-Z0-9_:]` (dots and slashes
//!   become underscores).

use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// Rewrites a metric name into the OpenMetrics charset.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escapes a label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a snapshot in OpenMetrics text format, terminated by `# EOF`.
pub fn to_openmetrics(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();

    for (name, v) in &snap.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n}_total {v}");
    }

    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }

    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (i, c) in h.counts.iter().enumerate() {
            cumulative += c;
            let le = (i as u64 + 1) * h.width - 1;
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        cumulative += h.overflow;
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count());
    }

    for (name, h) in &snap.log_histograms {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (&idx, &c) in &h.buckets {
            cumulative += c;
            let (_, hi) = h.bucket_bounds(idx);
            let le = hi - 1;
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count());
    }

    for (name, values) in &snap.series {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        for (i, v) in values.iter().enumerate() {
            let _ = writeln!(out, "{n}{{index=\"{i}\"}} {v}");
        }
    }

    if !snap.spans.is_empty() {
        for (family, pick) in [
            ("span_count", 0usize),
            ("span_total_ns", 1),
            ("span_self_ns", 2),
        ] {
            let _ = writeln!(out, "# TYPE {family} counter");
            for (path, s) in &snap.spans {
                let v = [s.count, s.total_ns, s.self_ns][pick];
                let _ = writeln!(out, "{family}_total{{span=\"{}\"}} {v}", escape_label(path));
            }
        }
    }

    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::span::{SpanStat, SpanTree};

    fn sample_snapshot() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("sweep.trials").add(8);
        r.gauge("frontier.peak").set(42);
        let h = r.histogram("sweep.steps", 2, 3);
        h.observe(0);
        h.observe(3);
        h.observe(99);
        let lh = r.log_histogram("trial_ns", 2);
        lh.observe(5);
        lh.observe(1000);
        r.series("vi.residual").push(7);
        let mut tree = SpanTree::new();
        tree.add(
            "solve/sweep",
            SpanStat {
                count: 3,
                total_ns: 90,
                self_ns: 50,
            },
        );
        r.merge_spans(&tree);
        r.snapshot()
    }

    #[test]
    fn renders_every_metric_kind() {
        let text = to_openmetrics(&sample_snapshot());
        assert!(text.contains("# TYPE sweep_trials counter\nsweep_trials_total 8\n"));
        assert!(text.contains("# TYPE frontier_peak gauge\nfrontier_peak 42\n"));
        // Linear histogram: buckets [0,2) [2,4) [4,6) → le 1, 3, 5; one
        // observation overflows.
        assert!(text.contains("sweep_steps_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("sweep_steps_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("sweep_steps_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("sweep_steps_sum 102\n"));
        assert!(text.contains("sweep_steps_count 3\n"));
        assert!(text.contains("trial_ns_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("trial_ns_count 2\n"));
        assert!(text.contains("vi_residual{index=\"0\"} 7\n"));
        assert!(text.contains("span_total_ns_total{span=\"solve/sweep\"} 90\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = to_openmetrics(&sample_snapshot());
        let b = to_openmetrics(&sample_snapshot());
        assert_eq!(a, b);
    }

    #[test]
    fn sanitizes_names_and_labels() {
        assert_eq!(sanitize("sweep.trial_ns"), "sweep_trial_ns");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
