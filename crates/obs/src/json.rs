//! Minimal dependency-free JSON support: a writer for flat and nested
//! objects, and a parser for the *flat* one-line objects this workspace's
//! JSONL event streams are made of.
//!
//! The workspace builds fully offline, so `serde_json` is not available;
//! the event and metrics formats are deliberately simple enough that a
//! hand-rolled writer/parser covers them completely. Field order is the
//! insertion order of the writer, so serialization is deterministic —
//! a requirement for the byte-for-byte replay check in `cil replay`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental writer for one JSON object; fields appear in call order.
#[derive(Debug, Default)]
pub struct ObjWriter {
    buf: String,
}

impl ObjWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjWriter { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":\"{}\"", escape(key), escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Adds a raw, already-serialized JSON value (nested object/array).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), json);
        self
    }

    /// Finishes the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Serializes a slice of integers as a JSON array.
pub fn num_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// A parsed flat JSON value: the event format only uses strings and
/// unsigned integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A JSON string (unescaped).
    Str(String),
    /// A non-negative integer.
    Num(u64),
}

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Num(_) => None,
        }
    }

    /// The integer content, if this is a number.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(_) => None,
        }
    }
}

/// Parses one flat JSON object (string and unsigned-integer values only —
/// exactly what [`ObjWriter`] produces for events).
///
/// # Errors
///
/// Returns a message describing the first syntax problem encountered.
pub fn parse_flat(line: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut out = BTreeMap::new();
    let mut chars = line.trim().chars().peekable();
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        return Ok(out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => Value::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut num = String::new();
                while chars.peek().is_some_and(char::is_ascii_digit) {
                    num.push(chars.next().expect("peeked"));
                }
                Value::Num(num.parse().map_err(|_| format!("bad number '{num}'"))?)
            }
            other => return Err(format!("unexpected value start {other:?} for key '{key}'")),
        };
        out.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => return Ok(out),
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

/// A parsed JSON value tree: strings, unsigned integers, arrays, objects.
///
/// This is the nested counterpart of [`Value`]/[`parse_flat`], used to read
/// back the canonical metrics exports (which nest histograms inside the
/// snapshot object). Floats, booleans and `null` never appear in this
/// workspace's formats and are rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A JSON string (unescaped).
    Str(String),
    /// A non-negative integer.
    Num(u64),
    /// An array of values.
    Arr(Vec<Node>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Node>),
}

impl Node {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Node::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is a number.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            Node::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Node]> {
        match self {
            Node::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Node>> {
        match self {
            Node::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON value with arbitrary nesting (string and unsigned
/// integer scalars only).
///
/// # Errors
///
/// Returns a message describing the first syntax problem encountered,
/// including trailing garbage after the value.
pub fn parse_value(text: &str) -> Result<Node, String> {
    let mut chars = text.trim().chars().peekable();
    let node = parse_node(&mut chars)?;
    skip_ws(&mut chars);
    match chars.next() {
        None => Ok(node),
        Some(c) => Err(format!("trailing garbage starting at '{c}'")),
    }
}

fn parse_node(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Node, String> {
    skip_ws(chars);
    match chars.peek() {
        Some('"') => Ok(Node::Str(parse_string(chars)?)),
        Some('{') => {
            chars.next();
            let mut out = BTreeMap::new();
            skip_ws(chars);
            if chars.peek() == Some(&'}') {
                chars.next();
                return Ok(Node::Obj(out));
            }
            loop {
                skip_ws(chars);
                let key = parse_string(chars)?;
                skip_ws(chars);
                expect(chars, ':')?;
                let value = parse_node(chars)?;
                out.insert(key, value);
                skip_ws(chars);
                match chars.next() {
                    Some(',') => continue,
                    Some('}') => return Ok(Node::Obj(out)),
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some('[') => {
            chars.next();
            let mut out = Vec::new();
            skip_ws(chars);
            if chars.peek() == Some(&']') {
                chars.next();
                return Ok(Node::Arr(out));
            }
            loop {
                out.push(parse_node(chars)?);
                skip_ws(chars);
                match chars.next() {
                    Some(',') => continue,
                    Some(']') => return Ok(Node::Arr(out)),
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() => {
            let mut num = String::new();
            while chars.peek().is_some_and(char::is_ascii_digit) {
                num.push(chars.next().expect("peeked"));
            }
            Ok(Node::Num(
                num.parse().map_err(|_| format!("bad number '{num}'"))?,
            ))
        }
        other => Err(format!("unexpected value start {other:?}")),
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected '{want}', got {other:?}")),
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u{hex}"))?;
                    out.push(char::from_u32(code).ok_or(format!("bad codepoint \\u{hex}"))?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_ordered_fields() {
        let s = ObjWriter::new()
            .str("type", "step")
            .num("index", 3)
            .str("value", "Some(7)")
            .finish();
        assert_eq!(s, r#"{"type":"step","index":3,"value":"Some(7)"}"#);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let line = ObjWriter::new().str("k", nasty).finish();
        let parsed = parse_flat(&line).unwrap();
        assert_eq!(parsed["k"], Value::Str(nasty.to_string()));
    }

    #[test]
    fn parse_reads_strings_and_numbers() {
        let m = parse_flat(r#"{"a": "x", "b": 42}"#).unwrap();
        assert_eq!(m["a"].as_str(), Some("x"));
        assert_eq!(m["b"].as_num(), Some(42));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_flat("not json").is_err());
        assert!(parse_flat(r#"{"a": }"#).is_err());
        assert!(parse_flat(r#"{"a": "unterminated"#).is_err());
    }

    #[test]
    fn num_array_formats() {
        assert_eq!(num_array(&[]), "[]");
        assert_eq!(num_array(&[1, 2, 3]), "[1,2,3]");
    }

    #[test]
    fn parse_value_handles_nesting() {
        let n = parse_value(r#"{"a":{"b":[1,2,{"c":"x"}]},"d":7}"#).unwrap();
        let obj = n.as_obj().unwrap();
        assert_eq!(obj["d"].as_num(), Some(7));
        let arr = obj["a"].as_obj().unwrap()["b"].as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1));
        assert_eq!(arr[2].as_obj().unwrap()["c"].as_str(), Some("x"));
    }

    #[test]
    fn parse_value_rejects_trailing_garbage_and_other_scalars() {
        assert!(parse_value(r#"{"a":1} junk"#).is_err());
        assert!(parse_value(r#"{"a":true}"#).is_err());
        assert!(parse_value(r#"{"a":-1}"#).is_err());
        assert!(parse_value(r#"[1,2"#).is_err());
    }

    #[test]
    fn parse_value_round_trips_writer_output() {
        let written = ObjWriter::new()
            .str("s", "v\"w")
            .num("n", 3)
            .raw("inner", &ObjWriter::new().num("x", 1).finish())
            .raw("list", &num_array(&[4, 5]))
            .finish();
        let node = parse_value(&written).unwrap();
        let obj = node.as_obj().unwrap();
        assert_eq!(obj["s"].as_str(), Some("v\"w"));
        assert_eq!(obj["inner"].as_obj().unwrap()["x"].as_num(), Some(1));
        assert_eq!(obj["list"].as_arr().unwrap().len(), 2);
    }
}
