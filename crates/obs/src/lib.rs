//! # cil-obs — observability for the CIL reproduction
//!
//! The engines in this workspace (the serialized executor, the parallel
//! Monte-Carlo sweep, the BFS model checker) validate the paper's
//! quantitative claims with millions of runs; this crate makes those
//! engines observable without perturbing them:
//!
//! * [`metrics`] — a lock-free registry of monotonic counters, gauges,
//!   fixed-bucket and log-scale histograms, append-only series, and span
//!   timing stats. Updates are single relaxed atomics and merge
//!   commutatively, preserving the sweep engine's jobs-count-invariance;
//!   snapshots render as canonical JSON ([`MetricsSnapshot::to_json`]) and
//!   parse back with [`MetricsSnapshot::from_json`].
//! * [`span`] — hierarchical wall-clock timing: [`SpanTimer`] guards fold
//!   per-phase totals (with child-exclusive self time) into a mergeable
//!   [`SpanTree`], with a zero-cost disabled mode and a deterministic tick
//!   clock for reproducibility tests.
//! * [`export`] — OpenMetrics/Prometheus text-format rendering of a
//!   snapshot ([`export::to_openmetrics`]), byte-deterministic like the
//!   JSON export.
//! * [`event`] — structured, typed run events (span begin/end, step taken,
//!   register read/write, coin flip, decision, violation) serialized as
//!   JSONL through a pluggable [`EventSink`]. A captured stream is enough
//!   to replay a run exactly and verify the replay byte for byte.
//! * [`progress`] — live progress: a throttled trials/sec + ETA ticker
//!   ([`ProgressMeter`]) and a per-BFS-level frontier/dedup reporter
//!   ([`LevelReporter`]), both rendering to stderr only.
//!
//! Everything is dependency-free and instrumentation is always an
//! `Option`: a disabled sink, meter, or timer costs one branch on the hot
//! path (verified by `cil-bench`'s `obs` benchmark).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod span;

pub use event::{CoinStage, EventSink, JsonlSink, MemorySink, NullSink, OpKind, RunEvent};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, LogHistogram, LogHistogramSnapshot, MergeError,
    MetricsSnapshot, QuantileBound, Registry, Series,
};
pub use progress::{LevelReporter, ProgressMeter};
pub use span::{SpanGuard, SpanStat, SpanTimer, SpanTree};
