//! Structured run events and pluggable sinks.
//!
//! Every instrumented engine (the serialized executor, the trial sweep, the
//! BFS explorer) reports what it does as a stream of typed [`RunEvent`]s:
//! span begin/end, one event per step taken (with the register operation
//! and the value read or written), coin flips, decisions, and safety
//! violations. Events serialize to **JSONL** — one flat, deterministic JSON
//! object per line — and parse back, so a captured stream is a replayable,
//! diffable artifact: `cil replay` re-executes a capture's schedule and
//! compares the regenerated lines byte for byte.
//!
//! Sinks are deliberately dumb: [`EventSink::emit`] takes a fully-formed
//! event and does whatever I/O it wants. Instrumentation is an
//! `Option<&mut dyn EventSink>` at every call site, so a disabled stream
//! costs one branch per step and no formatting.

use crate::json::{parse_flat, ObjWriter, Value};
use std::io::Write;

/// Which register operation a step performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// An atomic register read.
    Read,
    /// An atomic register write.
    Write,
}

impl OpKind {
    fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
        }
    }
}

/// Where in a step a coin was flipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinStage {
    /// While choosing the step's operation.
    Choose,
    /// While choosing the successor state.
    Transit,
}

impl CoinStage {
    fn name(self) -> &'static str {
        match self {
            CoinStage::Choose => "choose",
            CoinStage::Transit => "transit",
        }
    }
}

/// One structured observation from an instrumented engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunEvent {
    /// A unit of work began (a run, a sweep, a BFS level, …).
    SpanBegin {
        /// Span name, e.g. `"run"`.
        name: String,
        /// Free-form context, e.g. the protocol name.
        detail: String,
    },
    /// The matching unit of work finished.
    SpanEnd {
        /// Span name.
        name: String,
        /// Free-form outcome, e.g. the halt reason.
        detail: String,
    },
    /// One step: a register operation taken by a processor.
    Step {
        /// Global step index (0-based).
        index: u64,
        /// Processor that took the step.
        pid: usize,
        /// Read or write.
        op: OpKind,
        /// Register id.
        reg: usize,
        /// Value written, or value read, as the register type's `Debug`
        /// rendering.
        value: String,
    },
    /// A probabilistic branch was sampled.
    CoinFlip {
        /// Step index at which the flip happened.
        index: u64,
        /// Flipping processor.
        pid: usize,
        /// Operation choice or state transition.
        stage: CoinStage,
        /// Number of weighted branches.
        branches: usize,
    },
    /// A processor decided (irrevocably).
    Decision {
        /// Step index of the deciding step.
        index: u64,
        /// Deciding processor.
        pid: usize,
        /// The decided value (`Val`'s integer encoding).
        value: u64,
    },
    /// A safety property failed.
    Violation {
        /// Trial index / step index, context-dependent.
        index: u64,
        /// Violation kind (e.g. `"inconsistent"`).
        kind: String,
        /// Free-form description.
        detail: String,
    },
    /// A controlled native scheduler granted a thread its next step
    /// (emitted by `cil-conc` before the corresponding [`RunEvent::Step`]).
    Grant {
        /// Global step index the grant is for (matches the step's index).
        index: u64,
        /// Thread (processor) granted the step.
        pid: usize,
        /// Number of runnable threads the strategy chose among.
        runnable: usize,
    },
}

impl RunEvent {
    /// Serializes the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            RunEvent::SpanBegin { name, detail } => ObjWriter::new()
                .str("type", "span_begin")
                .str("name", name)
                .str("detail", detail)
                .finish(),
            RunEvent::SpanEnd { name, detail } => ObjWriter::new()
                .str("type", "span_end")
                .str("name", name)
                .str("detail", detail)
                .finish(),
            RunEvent::Step {
                index,
                pid,
                op,
                reg,
                value,
            } => ObjWriter::new()
                .str("type", "step")
                .num("index", *index)
                .num("pid", *pid as u64)
                .str("op", op.name())
                .num("reg", *reg as u64)
                .str("value", value)
                .finish(),
            RunEvent::CoinFlip {
                index,
                pid,
                stage,
                branches,
            } => ObjWriter::new()
                .str("type", "coin_flip")
                .num("index", *index)
                .num("pid", *pid as u64)
                .str("stage", stage.name())
                .num("branches", *branches as u64)
                .finish(),
            RunEvent::Decision { index, pid, value } => ObjWriter::new()
                .str("type", "decision")
                .num("index", *index)
                .num("pid", *pid as u64)
                .num("value", *value)
                .finish(),
            RunEvent::Violation {
                index,
                kind,
                detail,
            } => ObjWriter::new()
                .str("type", "violation")
                .num("index", *index)
                .str("kind", kind)
                .str("detail", detail)
                .finish(),
            RunEvent::Grant {
                index,
                pid,
                runnable,
            } => ObjWriter::new()
                .str("type", "grant")
                .num("index", *index)
                .num("pid", *pid as u64)
                .num("runnable", *runnable as u64)
                .finish(),
        }
    }

    /// Parses one JSON line produced by [`RunEvent::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message if the line is not valid flat JSON, has an unknown
    /// `type`, or is missing a field.
    pub fn from_json(line: &str) -> Result<RunEvent, String> {
        let map = parse_flat(line)?;
        let str_of = |key: &str| -> Result<String, String> {
            map.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}' in {line}"))
        };
        let num_of = |key: &str| -> Result<u64, String> {
            map.get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("missing numeric field '{key}' in {line}"))
        };
        match str_of("type")?.as_str() {
            "span_begin" => Ok(RunEvent::SpanBegin {
                name: str_of("name")?,
                detail: str_of("detail")?,
            }),
            "span_end" => Ok(RunEvent::SpanEnd {
                name: str_of("name")?,
                detail: str_of("detail")?,
            }),
            "step" => Ok(RunEvent::Step {
                index: num_of("index")?,
                pid: num_of("pid")? as usize,
                op: match str_of("op")?.as_str() {
                    "read" => OpKind::Read,
                    "write" => OpKind::Write,
                    other => return Err(format!("unknown op '{other}'")),
                },
                reg: num_of("reg")? as usize,
                value: str_of("value")?,
            }),
            "coin_flip" => Ok(RunEvent::CoinFlip {
                index: num_of("index")?,
                pid: num_of("pid")? as usize,
                stage: match str_of("stage")?.as_str() {
                    "choose" => CoinStage::Choose,
                    "transit" => CoinStage::Transit,
                    other => return Err(format!("unknown coin stage '{other}'")),
                },
                branches: num_of("branches")? as usize,
            }),
            "decision" => Ok(RunEvent::Decision {
                index: num_of("index")?,
                pid: num_of("pid")? as usize,
                value: num_of("value")?,
            }),
            "violation" => Ok(RunEvent::Violation {
                index: num_of("index")?,
                kind: str_of("kind")?,
                detail: str_of("detail")?,
            }),
            "grant" => Ok(RunEvent::Grant {
                index: num_of("index")?,
                pid: num_of("pid")? as usize,
                runnable: num_of("runnable")? as usize,
            }),
            other => Err(format!("unknown event type '{other}'")),
        }
    }
}

/// Where events go. Implementations decide the encoding and the I/O.
pub trait EventSink {
    /// Consumes one event.
    fn emit(&mut self, event: &RunEvent);

    /// Flushes buffered output, if any.
    fn flush(&mut self) {}
}

/// A sink that drops everything — for measuring instrumentation overhead.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &RunEvent) {}
}

/// A sink that keeps events in memory (tests, programmatic consumers).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Events in emission order.
    pub events: Vec<RunEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &RunEvent) {
        self.events.push(event.clone());
    }
}

/// A sink that serializes each event as one JSON line into a writer.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer (a `Vec<u8>`, a `BufWriter<File>`, …).
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &RunEvent) {
        let _ = writeln!(self.writer, "{}", event.to_json());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<RunEvent> {
        vec![
            RunEvent::SpanBegin {
                name: "run".into(),
                detail: "TwoProcessor".into(),
            },
            RunEvent::Step {
                index: 0,
                pid: 1,
                op: OpKind::Write,
                reg: 1,
                value: "Some(Val(7))".into(),
            },
            RunEvent::CoinFlip {
                index: 1,
                pid: 0,
                stage: CoinStage::Transit,
                branches: 2,
            },
            RunEvent::Decision {
                index: 5,
                pid: 0,
                value: 1,
            },
            RunEvent::Violation {
                index: 3,
                kind: "inconsistent".into(),
                detail: "values {a, b}".into(),
            },
            RunEvent::Grant {
                index: 4,
                pid: 1,
                runnable: 2,
            },
            RunEvent::SpanEnd {
                name: "run".into(),
                detail: "Done".into(),
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_json() {
        for e in samples() {
            let line = e.to_json();
            let back = RunEvent::from_json(&line).unwrap();
            assert_eq!(back, e, "{line}");
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        for e in samples() {
            sink.emit(&e);
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), samples().len());
        assert!(text.lines().all(|l| l.starts_with("{\"type\":\"")));
    }

    #[test]
    fn memory_sink_keeps_order() {
        let mut sink = MemorySink::new();
        for e in samples() {
            sink.emit(&e);
        }
        assert_eq!(sink.events, samples());
    }

    #[test]
    fn from_json_rejects_unknown_types() {
        assert!(RunEvent::from_json(r#"{"type":"warp"}"#).is_err());
        assert!(RunEvent::from_json(r#"{"type":"step","index":1}"#).is_err());
    }
}
