//! Live progress reporting: a throttled stderr ticker for long-running
//! engines.
//!
//! [`ProgressMeter`] counts completed work items (trials, leaves) with a
//! relaxed atomic, and re-renders a single `\r`-overwritten stderr line at
//! most once per throttle interval — workers tick freely from any thread
//! and almost every tick is one atomic add plus one atomic load.
//! [`LevelReporter`] renders one line per BFS level (levels are orders of
//! magnitude rarer than items, so no throttling is needed there).
//!
//! Progress output goes to **stderr** only: stdout stays reserved for
//! results, and none of the deterministic outputs (sweep digests, reports)
//! depend on whether a meter is attached.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Milliseconds between renders.
const THROTTLE_MS: u64 = 200;

/// A thread-safe work counter with a throttled stderr rendering.
#[derive(Debug)]
pub struct ProgressMeter {
    label: String,
    total: Option<u64>,
    done: AtomicU64,
    started: Instant,
    /// Milliseconds-since-start of the last render; workers race to claim
    /// the next render with a compare-exchange.
    last_render: AtomicU64,
    quiet: bool,
}

impl ProgressMeter {
    /// A meter for `total` work items (`None` = unknown total), labelled in
    /// the rendered line.
    pub fn new(label: &str, total: Option<u64>) -> Self {
        ProgressMeter {
            label: label.to_string(),
            total,
            done: AtomicU64::new(0),
            started: Instant::now(),
            last_render: AtomicU64::new(0),
            quiet: false,
        }
    }

    /// Disables stderr output (the counters still work) — used by tests
    /// and benchmarks.
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Records `n` completed items; re-renders if the throttle interval
    /// has elapsed.
    pub fn tick(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        let elapsed_ms = self.started.elapsed().as_millis() as u64;
        let last = self.last_render.load(Ordering::Relaxed);
        if elapsed_ms.saturating_sub(last) < THROTTLE_MS {
            return;
        }
        // One worker wins the race to render this interval.
        if self
            .last_render
            .compare_exchange(last, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.render(done, false);
        }
    }

    /// Items completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Completed items per second since the meter started.
    pub fn rate(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.done() as f64 / secs
        }
    }

    /// Estimated seconds until `total` items are done (`None` if the total
    /// is unknown or the rate is still zero).
    pub fn eta_secs(&self) -> Option<f64> {
        let total = self.total?;
        let rate = self.rate();
        if rate <= 0.0 {
            return None;
        }
        Some(total.saturating_sub(self.done()) as f64 / rate)
    }

    /// Renders a final line (with newline) and returns the counter.
    pub fn finish(&self) -> u64 {
        let done = self.done();
        self.render(done, true);
        done
    }

    fn render(&self, done: u64, last: bool) {
        if self.quiet {
            return;
        }
        let mut line = format!("\r{}: {done}", self.label);
        if let Some(total) = self.total {
            let pct = if total == 0 {
                100.0
            } else {
                100.0 * done as f64 / total as f64
            };
            line.push_str(&format!("/{total} ({pct:.1}%)"));
        }
        line.push_str(&format!("  {:.0}/s", self.rate()));
        if let (false, Some(eta)) = (last, self.eta_secs()) {
            line.push_str(&format!("  ETA {eta:.1}s"));
        }
        if last {
            line.push_str(&format!(
                "  in {:.2}s",
                self.started.elapsed().as_secs_f64()
            ));
            eprintln!("{line}");
        } else {
            eprint!("{line}");
        }
    }
}

/// Per-level progress for breadth-first exploration: frontier size,
/// successors generated, and the dedup hit rate, one stderr line per level.
#[derive(Debug)]
pub struct LevelReporter {
    label: String,
    started: Instant,
    quiet: bool,
}

impl LevelReporter {
    /// A reporter labelled in each rendered line.
    pub fn new(label: &str) -> Self {
        LevelReporter {
            label: label.to_string(),
            started: Instant::now(),
            quiet: false,
        }
    }

    /// Disables stderr output.
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Reports one completed BFS level: `frontier` configurations expanded,
    /// `generated` successors produced, `fresh` of them new.
    pub fn level(&self, depth: usize, frontier: usize, generated: usize, fresh: usize) {
        if self.quiet {
            return;
        }
        let dups = generated.saturating_sub(fresh);
        let hit_rate = if generated == 0 {
            0.0
        } else {
            100.0 * dups as f64 / generated as f64
        };
        eprintln!(
            "{}: depth {depth:>3}  frontier {frontier:>9}  generated {generated:>9}  \
             dedup-hit {hit_rate:5.1}%  t={:.2}s",
            self.label,
            self.started.elapsed().as_secs_f64()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_accumulate_across_threads() {
        let m = ProgressMeter::new("test", Some(800)).quiet();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        m.tick(1);
                    }
                });
            }
        });
        assert_eq!(m.finish(), 800);
        assert!(m.rate() > 0.0);
        assert_eq!(m.eta_secs().map(|e| e.round() as u64), Some(0));
    }

    #[test]
    fn unknown_total_has_no_eta() {
        let m = ProgressMeter::new("x", None).quiet();
        m.tick(5);
        assert_eq!(m.done(), 5);
        assert!(m.eta_secs().is_none());
    }

    #[test]
    fn level_reporter_is_callable_when_quiet() {
        let r = LevelReporter::new("bfs").quiet();
        r.level(0, 1, 5, 5);
        r.level(1, 5, 20, 12);
    }
}
