//! Hierarchical timing spans: where does the wall clock go?
//!
//! A [`SpanTimer`] tracks a stack of named phases ("sweep" → "trial" →
//! "decide") against a monotonic clock and folds every exited span into a
//! [`SpanTree`]: per-path counts, total time, and *self* time (total minus
//! time spent in child spans). Trees from different workers merge
//! commutatively — counts and durations add — so per-phase totals are
//! independent of how work was sharded, matching the jobs-count-invariance
//! contract of the rest of `cil-obs`.
//!
//! Three clocks:
//!
//! * [`SpanTimer::monotonic`] — real elapsed nanoseconds via
//!   [`std::time::Instant`]; what profiling runs use.
//! * [`SpanTimer::ticks`] — a deterministic clock that advances by one on
//!   every reading, so durations are a pure function of the enter/exit
//!   sequence. Tests use it to pin span-tree bytes across `--jobs`.
//! * [`SpanTimer::disabled`] — a no-op: [`SpanTimer::enter`] returns an
//!   inert guard without touching any state, so an instrumented hot loop
//!   pays only a branch on a `bool` when telemetry is off.
//!
//! ```
//! use cil_obs::span::SpanTimer;
//!
//! let timer = SpanTimer::ticks();
//! {
//!     let _outer = timer.enter("solve");
//!     let _inner = timer.enter("sweep");
//! } // guards drop innermost-first
//! let tree = timer.finish();
//! assert_eq!(tree.get("solve").unwrap().count, 1);
//! assert_eq!(tree.get("solve/sweep").unwrap().count, 1);
//! // self time excludes the child span:
//! let solve = tree.get("solve").unwrap();
//! assert_eq!(solve.self_ns, solve.total_ns - tree.get("solve/sweep").unwrap().total_ns);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// Separator between path segments in a [`SpanTree`] key.
pub const PATH_SEP: char = '/';

/// Aggregated timing for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span was entered and exited.
    pub count: u64,
    /// Total nanoseconds (or ticks) spent inside the span, children
    /// included. Saturating.
    pub total_ns: u64,
    /// Nanoseconds spent in the span itself, child spans excluded.
    /// Saturating.
    pub self_ns: u64,
}

impl SpanStat {
    /// Folds another stat in: counts and durations add (saturating).
    /// Commutative and associative.
    pub fn merge(&mut self, other: &SpanStat) {
        self.count = self.count.saturating_add(other.count);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.self_ns = self.self_ns.saturating_add(other.self_ns);
    }
}

/// Aggregated spans keyed by slash-joined path ("solve/sweep"). Paths sort
/// lexicographically, which groups every subtree under its root — the
/// iteration order doubles as a pre-order walk for rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    stats: BTreeMap<String, SpanStat>,
}

impl SpanTree {
    /// An empty tree.
    pub fn new() -> Self {
        SpanTree::default()
    }

    /// True if no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// The stat for a path, if any span was recorded there.
    pub fn get(&self, path: &str) -> Option<&SpanStat> {
        self.stats.get(path)
    }

    /// Folds one stat into a path (creating it if new).
    pub fn add(&mut self, path: &str, stat: SpanStat) {
        self.stats.entry(path.to_string()).or_default().merge(&stat);
    }

    /// Merges another tree in path-by-path. Commutative and associative.
    pub fn merge(&mut self, other: &SpanTree) {
        for (path, stat) in &other.stats {
            self.add(path, *stat);
        }
    }

    /// Iterates `(path, stat)` in sorted path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SpanStat)> {
        self.stats.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folded-stack lines (`a;b;c <self_ns>`), one per path with nonzero
    /// self time — the input format of standard flamegraph tooling.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, stat) in &self.stats {
            if stat.self_ns == 0 {
                continue;
            }
            out.push_str(&path.replace(PATH_SEP, ";"));
            out.push(' ');
            out.push_str(&stat.self_ns.to_string());
            out.push('\n');
        }
        out
    }
}

enum Clock {
    Monotonic(Instant),
    Ticks(u64),
}

impl Clock {
    fn now(&mut self) -> u64 {
        match self {
            Clock::Monotonic(epoch) => {
                u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Clock::Ticks(t) => {
                *t += 1;
                *t
            }
        }
    }
}

struct Frame {
    name: String,
    start: u64,
    child_ns: u64,
}

struct TimerState {
    clock: Clock,
    stack: Vec<Frame>,
    tree: SpanTree,
}

/// A per-thread span stopwatch. Not `Sync`: each worker owns its own timer
/// and the resulting [`SpanTree`]s are merged afterwards.
pub struct SpanTimer {
    state: Option<RefCell<TimerState>>,
}

impl SpanTimer {
    /// A timer whose [`enter`](SpanTimer::enter) is a no-op.
    pub fn disabled() -> Self {
        SpanTimer { state: None }
    }

    /// A timer against the process monotonic clock (nanoseconds).
    pub fn monotonic() -> Self {
        SpanTimer::with_clock(Clock::Monotonic(Instant::now()))
    }

    /// A timer against a deterministic tick clock: every reading advances
    /// time by exactly one, so span durations count clock readings (an
    /// enter plus an exit each take one tick) and are reproducible.
    pub fn ticks() -> Self {
        SpanTimer::with_clock(Clock::Ticks(0))
    }

    fn with_clock(clock: Clock) -> Self {
        SpanTimer {
            state: Some(RefCell::new(TimerState {
                clock,
                stack: Vec::new(),
                tree: SpanTree::new(),
            })),
        }
    }

    /// True unless this timer was constructed with
    /// [`disabled`](SpanTimer::disabled).
    pub fn enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Opens a span; it closes (and is folded into the tree) when the
    /// returned guard drops. Guards must drop innermost-first, which plain
    /// lexical scoping guarantees.
    pub fn enter(&self, name: &str) -> SpanGuard<'_> {
        if let Some(state) = &self.state {
            let mut s = state.borrow_mut();
            let start = s.clock.now();
            s.stack.push(Frame {
                name: name.to_string(),
                start,
                child_ns: 0,
            });
            SpanGuard { timer: Some(self) }
        } else {
            SpanGuard { timer: None }
        }
    }

    fn exit(&self) {
        let Some(state) = &self.state else { return };
        let mut s = state.borrow_mut();
        let now = s.clock.now();
        let Some(frame) = s.stack.pop() else { return };
        let total = now.saturating_sub(frame.start);
        let mut path = String::new();
        for parent in &s.stack {
            path.push_str(&parent.name);
            path.push(PATH_SEP);
        }
        path.push_str(&frame.name);
        if let Some(parent) = s.stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(total);
        }
        s.tree.add(
            &path,
            SpanStat {
                count: 1,
                total_ns: total,
                self_ns: total.saturating_sub(frame.child_ns),
            },
        );
    }

    /// Consumes the timer and returns the accumulated tree. Spans still
    /// open are discarded (exit your guards first). A disabled timer
    /// returns an empty tree.
    pub fn finish(self) -> SpanTree {
        match self.state {
            Some(state) => state.into_inner().tree,
            None => SpanTree::new(),
        }
    }
}

/// Closes its span on drop. Returned by [`SpanTimer::enter`].
pub struct SpanGuard<'a> {
    timer: Option<&'a SpanTimer>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(timer) = self.timer {
            timer.exit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_splits_self_from_total() {
        let timer = SpanTimer::ticks();
        {
            let _a = timer.enter("a");
            {
                let _b = timer.enter("b");
            }
            {
                let _b = timer.enter("b");
            }
        }
        let tree = timer.finish();
        let a = *tree.get("a").unwrap();
        let b = *tree.get("a/b").unwrap();
        assert_eq!(a.count, 1);
        assert_eq!(b.count, 2);
        // Each b span takes 2 ticks (enter + exit reading); a's enter/exit
        // bracket everything: total = 2·2 + its own 1 exit reading + the
        // two b enters' offsets… what matters is the invariant:
        assert_eq!(a.self_ns, a.total_ns - b.total_ns);
        assert!(a.total_ns > b.total_ns);
    }

    #[test]
    fn tick_clock_is_deterministic() {
        let run = || {
            let timer = SpanTimer::ticks();
            {
                let _x = timer.enter("x");
                let _y = timer.enter("y");
            }
            timer.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disabled_timer_records_nothing() {
        let timer = SpanTimer::disabled();
        assert!(!timer.enabled());
        {
            let _g = timer.enter("phase");
        }
        assert!(timer.finish().is_empty());
    }

    #[test]
    fn merge_is_commutative_and_saturating() {
        let mut a = SpanTree::new();
        a.add(
            "p",
            SpanStat {
                count: 1,
                total_ns: u64::MAX - 1,
                self_ns: 5,
            },
        );
        let mut b = SpanTree::new();
        b.add(
            "p",
            SpanStat {
                count: 2,
                total_ns: 10,
                self_ns: 7,
            },
        );
        b.add(
            "q",
            SpanStat {
                count: 1,
                total_ns: 3,
                self_ns: 3,
            },
        );
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("p").unwrap().total_ns, u64::MAX); // saturated
        assert_eq!(ab.get("p").unwrap().count, 3);
    }

    #[test]
    fn folded_output_uses_semicolons_and_self_time() {
        let timer = SpanTimer::ticks();
        {
            let _a = timer.enter("root");
            let _b = timer.enter("leaf");
        }
        let folded = timer.finish().folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("root "));
        assert!(lines[1].starts_with("root;leaf "));
    }

    #[test]
    fn monotonic_clock_moves_forward() {
        let timer = SpanTimer::monotonic();
        {
            let _g = timer.enter("work");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let tree = timer.finish();
        let stat = tree.get("work").unwrap();
        assert_eq!(stat.count, 1);
        assert_eq!(stat.total_ns, stat.self_ns);
    }
}
