//! Lock-free metrics: monotonic counters, gauges, fixed-bucket and
//! log-scale histograms, append-only series, and span trees behind a named
//! registry.
//!
//! Every hot-path mutation is a single relaxed atomic RMW, so instrumented
//! hot loops (sweep workers, BFS expansion) pay one uncontended atomic per
//! update and nothing else. All accumulators are **commutative**:
//! per-worker updates interleave in any order and still produce the same
//! totals, which is what keeps the sweep engine's jobs-count-invariance
//! intact — `--jobs 1` and `--jobs 8` export byte-identical snapshots
//! ([`MetricsSnapshot::to_json`] iterates `BTreeMap`s, so the rendering is
//! canonical too).
//!
//! Timing values are nanoseconds and can be enormous; every `sum`-style
//! accumulator therefore **saturates** instead of wrapping, so a pile of
//! minute-scale observations degrades to a pinned `u64::MAX` rather than a
//! silently wrong small number.
//!
//! ```
//! use cil_obs::metrics::Registry;
//!
//! let registry = Registry::new();
//! let trials = registry.counter("sweep.trials");
//! let steps = registry.histogram("sweep.steps", 1, 64);
//! let latency = registry.log_histogram("sweep.trial_ns", 5);
//! trials.inc();
//! steps.observe(12);
//! latency.observe(1_250_000);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("sweep.trials"), Some(1));
//! assert!(snap.to_json().contains("\"sweep.steps\""));
//! ```

use crate::json::{num_array, Node, ObjWriter};
use crate::span::{SpanStat, SpanTree};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Adds `v` to an atomic with saturating arithmetic.
fn saturating_fetch_add(cell: &AtomicU64, v: u64) {
    // Always returns Some, so the update never fails.
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
        Some(cur.saturating_add(v))
    });
}

/// A snapshot merge failed because the two sides disagree on a metric's
/// identity — same name, different shape or kind. Carries the offending
/// metric key so the CLI can point at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    /// The metric name both sides define incompatibly.
    pub metric: String,
    /// What differs (widths, bucket counts, sub-bucket bits, …).
    pub detail: String,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metric '{}': {}", self.metric, self.detail)
    }
}

impl std::error::Error for MergeError {}

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating).
    pub fn add(&self, n: u64) {
        saturating_fetch_add(&self.value, n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can be set or raised. The merge operation is
/// `max`, which is commutative, so merged snapshots report the largest
/// value any worker observed (frontier high-water marks, peak memory, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger.
    pub fn raise(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed-width buckets `[0, w), [w, 2w), …` plus an
/// overflow bucket. With `width = 1` the first `buckets` values are counted
/// exactly — how the sweep exports the paper's decided-by-k distribution.
#[derive(Debug)]
pub struct Histogram {
    width: u64,
    counts: Vec<AtomicU64>,
    overflow: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with `buckets` buckets of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `buckets` is zero.
    pub fn linear(width: u64, buckets: usize) -> Self {
        assert!(width > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. The running sum saturates at `u64::MAX`.
    pub fn observe(&self, v: u64) {
        let idx = (v / self.width) as usize;
        match self.counts.get(idx) {
            Some(bucket) => bucket.fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        saturating_fetch_add(&self.sum, v);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            width: self.width,
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket width.
    pub width: u64,
    /// Count per bucket; bucket `i` covers `[i·width, (i+1)·width)`.
    pub counts: Vec<u64>,
    /// Observations past the last bucket.
    pub overflow: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// Adds another histogram's buckets in (commutative, saturating sums).
    ///
    /// # Errors
    ///
    /// Returns the shape difference if the widths or bucket counts differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> Result<(), String> {
        if self.width != other.width {
            return Err(format!(
                "histogram widths differ ({} vs {})",
                self.width, other.width
            ));
        }
        if self.counts.len() != other.counts.len() {
            return Err(format!(
                "histogram bucket counts differ ({} vs {})",
                self.counts.len(),
                other.counts.len()
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.sum = self.sum.saturating_add(other.sum);
        Ok(())
    }

    fn to_json(&self) -> String {
        ObjWriter::new()
            .num("width", self.width)
            .raw("counts", &num_array(&self.counts))
            .num("overflow", self.overflow)
            .num("sum", self.sum)
            .num("count", self.count())
            .finish()
    }
}

/// A log2-bucketed histogram with `2^sub_bits` linear sub-buckets per
/// octave (HDR-histogram style): values up to `2^(sub_bits+1)` are counted
/// exactly, and every larger bucket has relative width at most
/// `2^-sub_bits`. The full `u64` range is covered — nanosecond timings
/// from single digits to minutes and beyond land in ~`(65-n)·2^n` buckets
/// (1920 for the default `sub_bits = 5`, each within 3.2% relative error).
#[derive(Debug)]
pub struct LogHistogram {
    sub_bits: u32,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

/// Index of the bucket containing `v` for the given sub-bucket resolution.
fn log_bucket_index(sub_bits: u32, v: u64) -> usize {
    if v < 1u64 << (sub_bits + 1) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - sub_bits;
    ((shift as usize) << sub_bits) + (v >> shift) as usize
}

/// Half-open value range `[lo, hi)` covered by bucket `index`.
fn log_bucket_bounds(sub_bits: u32, index: usize) -> (u64, u64) {
    if index < 1usize << (sub_bits + 1) {
        return (index as u64, index as u64 + 1);
    }
    let shift = (index >> sub_bits) as u32 - 1;
    let m = (index - ((shift as usize + 1) << sub_bits)) as u64 + (1u64 << sub_bits);
    let lo = m << shift;
    // The top bucket's upper bound is 2^64; pin it to u64::MAX.
    (lo, lo.saturating_add(1u64 << shift))
}

fn log_bucket_count(sub_bits: u32) -> usize {
    log_bucket_index(sub_bits, u64::MAX) + 1
}

impl LogHistogram {
    /// A log-scale histogram with `2^sub_bits` sub-buckets per octave.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= sub_bits <= 10` (beyond 10 the dense bucket
    /// array stops being "small").
    pub fn new(sub_bits: u32) -> Self {
        assert!(
            (1..=10).contains(&sub_bits),
            "sub_bits must be in 1..=10, got {sub_bits}"
        );
        LogHistogram {
            sub_bits,
            counts: (0..log_bucket_count(sub_bits))
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. The running sum saturates at `u64::MAX`.
    pub fn observe(&self, v: u64) {
        let idx = log_bucket_index(self.sub_bits, v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.sum, v);
    }

    /// A point-in-time sparse copy of the nonzero buckets.
    pub fn snapshot(&self) -> LogHistogramSnapshot {
        let mut buckets = BTreeMap::new();
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c > 0 {
                buckets.insert(i as u32, c);
            }
        }
        LogHistogramSnapshot {
            sub_bits: self.sub_bits,
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A quantile estimate from a [`LogHistogramSnapshot`]: the true quantile
/// lies in `[lo, hi)` (the containing bucket), so the bucket half-width is
/// the reported error bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantileBound {
    /// Inclusive lower bound on the quantile value.
    pub lo: u64,
    /// Exclusive upper bound on the quantile value.
    pub hi: u64,
}

impl QuantileBound {
    /// Midpoint estimate.
    pub fn mid(&self) -> u64 {
        self.lo + (self.hi - self.lo) / 2
    }

    /// Half the bucket width — the worst-case absolute error of
    /// [`mid`](QuantileBound::mid).
    pub fn err(&self) -> u64 {
        (self.hi - self.lo).div_ceil(2)
    }
}

/// Immutable sparse copy of a [`LogHistogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogramSnapshot {
    /// Sub-bucket resolution (relative bucket width ≤ `2^-sub_bits`).
    pub sub_bits: u32,
    /// Nonzero bucket counts keyed by bucket index.
    pub buckets: BTreeMap<u32, u64>,
    /// Sum of all observed values (saturating).
    pub sum: u64,
}

impl LogHistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Half-open value range `[lo, hi)` of a bucket index.
    pub fn bucket_bounds(&self, index: u32) -> (u64, u64) {
        log_bucket_bounds(self.sub_bits, index as usize)
    }

    /// The bucket containing the `q`-quantile (`0 < q <= 1`) under the
    /// nearest-rank definition, or `None` if the histogram is empty or `q`
    /// is out of range. The true quantile of the observed values lies
    /// within the returned bounds.
    pub fn quantile(&self, q: f64) -> Option<QuantileBound> {
        let total = self.count();
        if total == 0 || !(q > 0.0 && q <= 1.0) {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (&idx, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                let (lo, hi) = self.bucket_bounds(idx);
                return Some(QuantileBound { lo, hi });
            }
        }
        None
    }

    /// Adds another histogram's buckets in (commutative, saturating sums).
    ///
    /// # Errors
    ///
    /// Returns the shape difference if the sub-bucket resolutions differ.
    pub fn merge(&mut self, other: &LogHistogramSnapshot) -> Result<(), String> {
        if self.sub_bits != other.sub_bits {
            return Err(format!(
                "log-histogram sub_bits differ ({} vs {})",
                self.sub_bits, other.sub_bits
            ));
        }
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        self.sum = self.sum.saturating_add(other.sum);
        Ok(())
    }

    fn to_json(&self) -> String {
        let mut buckets = ObjWriter::new();
        for (idx, c) in &self.buckets {
            buckets = buckets.num(&idx.to_string(), *c);
        }
        ObjWriter::new()
            .num("sub_bits", u64::from(self.sub_bits))
            .raw("buckets", &buckets.finish())
            .num("sum", self.sum)
            .num("count", self.count())
            .finish()
    }
}

/// An append-only series of values: one slot per step (VI sweep residuals,
/// per-level node counts). Merging is element-wise saturating addition
/// with zero-padding, which is commutative — shards that each contribute
/// disjoint portions (or identical serial prefixes) combine cleanly.
#[derive(Debug, Default)]
pub struct Series {
    values: Mutex<Vec<u64>>,
}

impl Series {
    /// Appends a value.
    pub fn push(&self, v: u64) {
        self.values.lock().expect("series poisoned").push(v);
    }

    /// Number of values recorded so far.
    pub fn len(&self) -> usize {
        self.values.lock().expect("series poisoned").len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of the values.
    pub fn snapshot(&self) -> Vec<u64> {
        self.values.lock().expect("series poisoned").clone()
    }
}

/// Element-wise saturating sum of two series, zero-padded to the longer.
fn merge_series(mine: &mut Vec<u64>, other: &[u64]) {
    if other.len() > mine.len() {
        mine.resize(other.len(), 0);
    }
    for (a, b) in mine.iter_mut().zip(other) {
        *a = a.saturating_add(*b);
    }
}

enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    LogHistogram(Arc<LogHistogram>),
    Series(Arc<Series>),
}

/// A named collection of metrics.
///
/// Registration (name lookup) takes a mutex — do it once, outside hot
/// loops — and hands back `Arc` handles whose updates are plain atomics.
#[derive(Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
    spans: Mutex<SpanTree>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter with the given name, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut slots = self.slots.lock().expect("registry poisoned");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(Counter::default())))
        {
            Slot::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// The gauge with the given name, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut slots = self.slots.lock().expect("registry poisoned");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Arc::new(Gauge::default())))
        {
            Slot::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// The histogram with the given name, created on first use with the
    /// given shape.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, width: u64, buckets: usize) -> Arc<Histogram> {
        let mut slots = self.slots.lock().expect("registry poisoned");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Arc::new(Histogram::linear(width, buckets))))
        {
            Slot::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// The log-scale histogram with the given name, created on first use
    /// with the given sub-bucket resolution.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn log_histogram(&self, name: &str, sub_bits: u32) -> Arc<LogHistogram> {
        let mut slots = self.slots.lock().expect("registry poisoned");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::LogHistogram(Arc::new(LogHistogram::new(sub_bits))))
        {
            Slot::LogHistogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' is not a log histogram"),
        }
    }

    /// The series with the given name, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn series(&self, name: &str) -> Arc<Series> {
        let mut slots = self.slots.lock().expect("registry poisoned");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Series(Arc::new(Series::default())))
        {
            Slot::Series(s) => Arc::clone(s),
            _ => panic!("metric '{name}' is not a series"),
        }
    }

    /// Folds a worker's span tree into the registry's accumulated spans.
    pub fn merge_spans(&self, tree: &SpanTree) {
        self.spans.lock().expect("registry poisoned").merge(tree);
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().expect("registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Slot::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Slot::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
                Slot::LogHistogram(h) => {
                    snap.log_histograms.insert(name.clone(), h.snapshot());
                }
                Slot::Series(s) => {
                    snap.series.insert(name.clone(), s.snapshot());
                }
            }
        }
        for (path, stat) in self.spans.lock().expect("registry poisoned").iter() {
            snap.spans.insert(path.to_string(), *stat);
        }
        snap
    }
}

/// A point-in-time copy of a [`Registry`], mergeable and serializable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Log-scale histogram states by name.
    pub log_histograms: BTreeMap<String, LogHistogramSnapshot>,
    /// Series values by name.
    pub series: BTreeMap<String, Vec<u64>>,
    /// Span timing stats by slash-joined path.
    pub spans: BTreeMap<String, SpanStat>,
}

impl MetricsSnapshot {
    /// A named counter's value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A named histogram's state.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// A named log-scale histogram's state.
    pub fn log_histogram(&self, name: &str) -> Option<&LogHistogramSnapshot> {
        self.log_histograms.get(name)
    }

    /// Merges another snapshot in: counters, histograms, series and spans
    /// add, gauges take the max. Commutative and associative, mirroring
    /// how per-worker partials combine.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError`] naming the first metric present in both
    /// snapshots with incompatible shapes; `self` may have absorbed some
    /// metrics already when that happens.
    pub fn merge(&mut self, other: &MetricsSnapshot) -> Result<(), MergeError> {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h).map_err(|detail| MergeError {
                    metric: name.clone(),
                    detail,
                })?,
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        for (name, h) in &other.log_histograms {
            match self.log_histograms.get_mut(name) {
                Some(mine) => mine.merge(h).map_err(|detail| MergeError {
                    metric: name.clone(),
                    detail,
                })?,
                None => {
                    self.log_histograms.insert(name.clone(), h.clone());
                }
            }
        }
        for (name, v) in &other.series {
            merge_series(self.series.entry(name.clone()).or_default(), v);
        }
        for (path, stat) in &other.spans {
            self.spans.entry(path.clone()).or_default().merge(stat);
        }
        Ok(())
    }

    /// Canonical JSON rendering: keys sorted, shape
    /// `{"counters":{…},"gauges":{…},"histograms":{…},"log_histograms":{…},"series":{…},"spans":{…}}`.
    /// Equal snapshots produce byte-identical JSON.
    pub fn to_json(&self) -> String {
        let map_json = |m: &BTreeMap<String, u64>| {
            let mut w = ObjWriter::new();
            for (k, v) in m {
                w = w.num(k, *v);
            }
            w.finish()
        };
        let mut hists = ObjWriter::new();
        for (k, h) in &self.histograms {
            hists = hists.raw(k, &h.to_json());
        }
        let mut log_hists = ObjWriter::new();
        for (k, h) in &self.log_histograms {
            log_hists = log_hists.raw(k, &h.to_json());
        }
        let mut series = ObjWriter::new();
        for (k, v) in &self.series {
            series = series.raw(k, &num_array(v));
        }
        let mut spans = ObjWriter::new();
        for (k, s) in &self.spans {
            spans = spans.raw(
                k,
                &ObjWriter::new()
                    .num("count", s.count)
                    .num("total_ns", s.total_ns)
                    .num("self_ns", s.self_ns)
                    .finish(),
            );
        }
        ObjWriter::new()
            .raw("counters", &map_json(&self.counters))
            .raw("gauges", &map_json(&self.gauges))
            .raw("histograms", &hists.finish())
            .raw("log_histograms", &log_hists.finish())
            .raw("series", &series.finish())
            .raw("spans", &spans.finish())
            .finish()
    }

    /// Reconstructs a snapshot from its canonical JSON (the inverse of
    /// [`to_json`](MetricsSnapshot::to_json)). Missing sections parse as
    /// empty, so pre-span exports still load.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed field.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let root = crate::json::parse_value(text)?;
        let root = root.as_obj().ok_or("metrics snapshot must be an object")?;
        let mut snap = MetricsSnapshot::default();

        let num_map = |node: &Node, what: &str| -> Result<BTreeMap<String, u64>, String> {
            let obj = node.as_obj().ok_or(format!("'{what}' must be an object"))?;
            obj.iter()
                .map(|(k, v)| {
                    v.as_num()
                        .map(|n| (k.clone(), n))
                        .ok_or(format!("'{what}.{k}' must be a number"))
                })
                .collect()
        };
        let get_num = |obj: &BTreeMap<String, Node>, key: &str, ctx: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Node::as_num)
                .ok_or(format!("'{ctx}' needs numeric field '{key}'"))
        };

        if let Some(node) = root.get("counters") {
            snap.counters = num_map(node, "counters")?;
        }
        if let Some(node) = root.get("gauges") {
            snap.gauges = num_map(node, "gauges")?;
        }
        if let Some(node) = root.get("histograms") {
            let obj = node.as_obj().ok_or("'histograms' must be an object")?;
            for (name, h) in obj {
                let h = h.as_obj().ok_or(format!("histogram '{name}' malformed"))?;
                let counts = h
                    .get("counts")
                    .and_then(Node::as_arr)
                    .ok_or(format!("histogram '{name}' needs 'counts'"))?
                    .iter()
                    .map(|n| n.as_num().ok_or(format!("histogram '{name}' bad count")))
                    .collect::<Result<Vec<_>, _>>()?;
                snap.histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        width: get_num(h, "width", name)?,
                        counts,
                        overflow: get_num(h, "overflow", name)?,
                        sum: get_num(h, "sum", name)?,
                    },
                );
            }
        }
        if let Some(node) = root.get("log_histograms") {
            let obj = node.as_obj().ok_or("'log_histograms' must be an object")?;
            for (name, h) in obj {
                let h = h
                    .as_obj()
                    .ok_or(format!("log histogram '{name}' malformed"))?;
                let buckets = num_map(
                    h.get("buckets")
                        .ok_or(format!("log histogram '{name}' needs 'buckets'"))?,
                    name,
                )?
                .into_iter()
                .map(|(k, v)| {
                    k.parse::<u32>()
                        .map(|idx| (idx, v))
                        .map_err(|_| format!("log histogram '{name}' bad bucket index '{k}'"))
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?;
                let sub_bits = u32::try_from(get_num(h, "sub_bits", name)?)
                    .map_err(|_| format!("log histogram '{name}' bad sub_bits"))?;
                snap.log_histograms.insert(
                    name.clone(),
                    LogHistogramSnapshot {
                        sub_bits,
                        buckets,
                        sum: get_num(h, "sum", name)?,
                    },
                );
            }
        }
        if let Some(node) = root.get("series") {
            let obj = node.as_obj().ok_or("'series' must be an object")?;
            for (name, arr) in obj {
                let values = arr
                    .as_arr()
                    .ok_or(format!("series '{name}' must be an array"))?
                    .iter()
                    .map(|n| n.as_num().ok_or(format!("series '{name}' bad value")))
                    .collect::<Result<Vec<_>, _>>()?;
                snap.series.insert(name.clone(), values);
            }
        }
        if let Some(node) = root.get("spans") {
            let obj = node.as_obj().ok_or("'spans' must be an object")?;
            for (path, s) in obj {
                let s = s.as_obj().ok_or(format!("span '{path}' malformed"))?;
                snap.spans.insert(
                    path.clone(),
                    SpanStat {
                        count: get_num(s, "count", path)?,
                        total_ns: get_num(s, "total_ns", path)?,
                        self_ns: get_num(s, "self_ns", path)?,
                    },
                );
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up_across_threads() {
        let registry = Registry::new();
        let c = registry.counter("hits");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(registry.snapshot().counter("hits"), Some(8000));
    }

    #[test]
    fn gauge_raise_keeps_max() {
        let g = Gauge::default();
        g.raise(5);
        g.raise(3);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::linear(2, 3); // [0,2) [2,4) [4,6) + overflow
        for v in [0, 1, 2, 5, 99] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.sum, 107);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let h = Histogram::linear(1, 2);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.snapshot().sum, u64::MAX);

        let mut a = h.snapshot();
        let b = h.snapshot();
        a.merge(&b).unwrap();
        assert_eq!(a.sum, u64::MAX);
        assert_eq!(a.count(), 4);

        let c = Counter::default();
        c.add(u64::MAX);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_merge_reports_shape_mismatch() {
        let mut a = Histogram::linear(1, 2).snapshot();
        let b = Histogram::linear(2, 2).snapshot();
        let c = Histogram::linear(1, 3).snapshot();
        assert!(a.merge(&b).unwrap_err().contains("widths differ"));
        assert!(a.merge(&c).unwrap_err().contains("bucket counts differ"));
    }

    #[test]
    fn snapshot_merge_names_offending_metric() {
        let left = Registry::new();
        left.histogram("sweep.steps", 1, 4);
        let right = Registry::new();
        right.histogram("sweep.steps", 2, 4);
        let mut a = left.snapshot();
        let err = a.merge(&right.snapshot()).unwrap_err();
        assert_eq!(err.metric, "sweep.steps");
        assert!(err.to_string().contains("sweep.steps"));
    }

    #[test]
    fn log_bucket_index_is_monotone_and_bounds_invert() {
        for sub_bits in [1u32, 3, 5, 8] {
            let mut last = None;
            for v in (0..200u64).chain([1 << 20, (1 << 20) + 7, u64::MAX / 3, u64::MAX]) {
                let idx = log_bucket_index(sub_bits, v);
                let (lo, hi) = log_bucket_bounds(sub_bits, idx);
                assert!(
                    lo <= v && (v < hi || hi == u64::MAX),
                    "v={v} in [{lo},{hi})"
                );
                if let Some(prev) = last {
                    assert!(idx >= prev, "index not monotone at v={v}");
                }
                last = Some(idx);
                // Relative bucket width bound: (hi - lo) / lo <= 2^-sub_bits.
                if lo >= 1 << (sub_bits + 1) && hi != u64::MAX {
                    assert!((hi - lo) <= lo >> sub_bits);
                }
            }
        }
    }

    #[test]
    fn log_histogram_quantiles_bound_true_values() {
        let h = LogHistogram::new(5);
        for v in 1..=1000u64 {
            h.observe(v * v); // 1 .. 1_000_000
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        for (q, truth) in [(0.5, 500u64 * 500), (0.9, 900 * 900), (0.99, 990 * 990)] {
            let b = s.quantile(q).unwrap();
            assert!(
                b.lo <= truth && truth < b.hi,
                "q={q}: true {truth} not in [{}, {})",
                b.lo,
                b.hi
            );
            assert!(b.mid().abs_diff(truth) <= b.err());
        }
        assert!(s.quantile(0.0).is_none());
        assert!(s.quantile(1.5).is_none());
    }

    #[test]
    fn log_histogram_merge_matches_combined_stream() {
        let a = LogHistogram::new(4);
        let b = LogHistogram::new(4);
        let all = LogHistogram::new(4);
        for v in [0u64, 1, 17, 40_000, 1_000_000_000] {
            a.observe(v);
            all.observe(v);
        }
        for v in [3u64, 17, 999, u64::MAX] {
            b.observe(v);
            all.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot()).unwrap();
        assert_eq!(merged, all.snapshot());
        assert!(merged
            .merge(&LogHistogram::new(5).snapshot())
            .unwrap_err()
            .contains("sub_bits"));
    }

    #[test]
    fn series_merge_pads_and_adds() {
        let r = Registry::new();
        let s = r.series("vi.residual");
        s.push(10);
        s.push(4);
        let mut a = r.snapshot();
        let r2 = Registry::new();
        let s2 = r2.series("vi.residual");
        s2.push(1);
        s2.push(1);
        s2.push(1);
        a.merge(&r2.snapshot()).unwrap();
        assert_eq!(a.series["vi.residual"], vec![11, 5, 1]);
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        let make = |seed: u64| {
            let r = Registry::new();
            r.counter("c").add(seed);
            r.gauge("g").raise(seed * 3);
            r.histogram("h", 1, 4).observe(seed % 4);
            r.log_histogram("lh", 5).observe(seed * 1000);
            r.series("s").push(seed);
            r.snapshot()
        };
        let (a, b) = (make(2), make(7));
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), Some(9));
        assert_eq!(ab.gauges["g"], 21);
    }

    #[test]
    fn json_rendering_is_canonical() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").add(2);
        r.histogram("h", 1, 2).observe(1);
        let json = r.snapshot().to_json();
        assert_eq!(
            json,
            r#"{"counters":{"a":2,"b":1},"gauges":{},"histograms":{"h":{"width":1,"counts":[0,1],"overflow":0,"sum":1,"count":1}},"log_histograms":{},"series":{},"spans":{}}"#
        );
    }

    #[test]
    fn json_round_trips_every_section() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.gauge("g").set(9);
        r.histogram("h", 2, 3).observe(5);
        r.log_histogram("lh", 5).observe(123_456);
        r.series("s").push(42);
        let mut tree = SpanTree::new();
        tree.add(
            "solve/sweep",
            SpanStat {
                count: 7,
                total_ns: 100,
                self_ns: 60,
            },
        );
        r.merge_spans(&tree);
        let snap = r.snapshot();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        // And round-tripping is byte-stable.
        assert_eq!(parsed.to_json(), snap.to_json());
    }

    #[test]
    fn from_json_rejects_malformed_snapshots() {
        assert!(MetricsSnapshot::from_json("[1,2]").is_err());
        assert!(MetricsSnapshot::from_json(r#"{"counters":{"a":"x"}}"#).is_err());
        assert!(MetricsSnapshot::from_json(r#"{"histograms":{"h":{"width":1}}}"#).is_err());
        // Pre-span exports (three sections only) still load.
        let old = r#"{"counters":{"a":1},"gauges":{},"histograms":{}}"#;
        let snap = MetricsSnapshot::from_json(old).unwrap();
        assert_eq!(snap.counter("a"), Some(1));
        assert!(snap.spans.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }
}
