//! Lock-free metrics: monotonic counters, gauges, and fixed-bucket
//! histograms behind a named registry.
//!
//! Every mutation is a single relaxed atomic RMW, so instrumented hot loops
//! (sweep workers, BFS expansion) pay one uncontended atomic per update and
//! nothing else. All accumulators are **commutative**: per-worker updates
//! interleave in any order and still produce the same totals, which is what
//! keeps the sweep engine's jobs-count-invariance intact — `--jobs 1` and
//! `--jobs 8` export byte-identical snapshots ([`MetricsSnapshot::to_json`]
//! iterates `BTreeMap`s, so the rendering is canonical too).
//!
//! ```
//! use cil_obs::metrics::Registry;
//!
//! let registry = Registry::new();
//! let trials = registry.counter("sweep.trials");
//! let steps = registry.histogram("sweep.steps", 1, 64);
//! trials.inc();
//! steps.observe(12);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("sweep.trials"), Some(1));
//! assert!(snap.to_json().contains("\"sweep.steps\""));
//! ```

use crate::json::{num_array, ObjWriter};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can be set or raised. The merge operation is
/// `max`, which is commutative, so merged snapshots report the largest
/// value any worker observed (frontier high-water marks, peak memory, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger.
    pub fn raise(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed-width buckets `[0, w), [w, 2w), …` plus an
/// overflow bucket. With `width = 1` the first `buckets` values are counted
/// exactly — how the sweep exports the paper's decided-by-k distribution.
#[derive(Debug)]
pub struct Histogram {
    width: u64,
    counts: Vec<AtomicU64>,
    overflow: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with `buckets` buckets of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `buckets` is zero.
    pub fn linear(width: u64, buckets: usize) -> Self {
        assert!(width > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = (v / self.width) as usize;
        match self.counts.get(idx) {
            Some(bucket) => bucket.fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            width: self.width,
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket width.
    pub width: u64,
    /// Count per bucket; bucket `i` covers `[i·width, (i+1)·width)`.
    pub counts: Vec<u64>,
    /// Observations past the last bucket.
    pub overflow: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// Adds another histogram's buckets in (commutative).
    ///
    /// # Panics
    ///
    /// Panics if the shapes (width, bucket count) differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.width, other.width, "histogram widths differ");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram bucket counts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.sum += other.sum;
    }

    fn to_json(&self) -> String {
        ObjWriter::new()
            .num("width", self.width)
            .raw("counts", &num_array(&self.counts))
            .num("overflow", self.overflow)
            .num("sum", self.sum)
            .num("count", self.count())
            .finish()
    }
}

enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics.
///
/// Registration (name lookup) takes a mutex — do it once, outside hot
/// loops — and hands back `Arc` handles whose updates are plain atomics.
#[derive(Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter with the given name, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut slots = self.slots.lock().expect("registry poisoned");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(Counter::default())))
        {
            Slot::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// The gauge with the given name, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut slots = self.slots.lock().expect("registry poisoned");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Arc::new(Gauge::default())))
        {
            Slot::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// The histogram with the given name, created on first use with the
    /// given shape.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, width: u64, buckets: usize) -> Arc<Histogram> {
        let mut slots = self.slots.lock().expect("registry poisoned");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Arc::new(Histogram::linear(width, buckets))))
        {
            Slot::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().expect("registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Slot::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Slot::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A point-in-time copy of a [`Registry`], mergeable and serializable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A named counter's value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A named histogram's state.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Merges another snapshot in: counters and histograms add, gauges
    /// take the max. Commutative and associative, mirroring how per-worker
    /// partials combine.
    ///
    /// # Panics
    ///
    /// Panics if a histogram present in both snapshots has a different
    /// shape in each.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Canonical JSON rendering: keys sorted, shape
    /// `{"counters":{…},"gauges":{…},"histograms":{…}}`. Equal snapshots
    /// produce byte-identical JSON.
    pub fn to_json(&self) -> String {
        let map_json = |m: &BTreeMap<String, u64>| {
            let mut w = ObjWriter::new();
            for (k, v) in m {
                w = w.num(k, *v);
            }
            w.finish()
        };
        let mut hists = ObjWriter::new();
        for (k, h) in &self.histograms {
            hists = hists.raw(k, &h.to_json());
        }
        ObjWriter::new()
            .raw("counters", &map_json(&self.counters))
            .raw("gauges", &map_json(&self.gauges))
            .raw("histograms", &hists.finish())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up_across_threads() {
        let registry = Registry::new();
        let c = registry.counter("hits");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(registry.snapshot().counter("hits"), Some(8000));
    }

    #[test]
    fn gauge_raise_keeps_max() {
        let g = Gauge::default();
        g.raise(5);
        g.raise(3);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::linear(2, 3); // [0,2) [2,4) [4,6) + overflow
        for v in [0, 1, 2, 5, 99] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.sum, 107);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        let make = |seed: u64| {
            let r = Registry::new();
            r.counter("c").add(seed);
            r.gauge("g").raise(seed * 3);
            r.histogram("h", 1, 4).observe(seed % 4);
            r.snapshot()
        };
        let (a, b) = (make(2), make(7));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), Some(9));
        assert_eq!(ab.gauges["g"], 21);
    }

    #[test]
    fn json_rendering_is_canonical() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").add(2);
        r.histogram("h", 1, 2).observe(1);
        let json = r.snapshot().to_json();
        assert_eq!(
            json,
            r#"{"counters":{"a":2,"b":1},"gauges":{},"histograms":{"h":{"width":1,"counts":[0,1],"overflow":0,"sum":1,"count":1}}}"#
        );
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }
}
