//! Property-based tests of the protocols' pure transition logic, via the
//! public `Protocol` interface: invariants every `choose`/`transit` pair
//! must satisfy regardless of state, plus circular-order laws of the §6
//! counter.

use cil_core::n_unbounded::{NReg, NUnbounded};
use cil_core::three_bounded::{ahead, ThreeBounded};
use cil_core::two::TwoProcessor;
use cil_sim::{Choice, Op, Protocol, RandomScheduler, Runner, Val, Xoshiro256StarStar};
use proptest::prelude::*;

/// Drive a protocol with real steps, checking structural invariants at
/// every state it actually visits.
fn check_visited_states<P: Protocol>(
    protocol: &P,
    inputs: &[Val],
    seed: u64,
    check: impl Fn(usize, &P::State),
) {
    use cil_registers::{Pid, SharedMemory};
    use cil_sim::Rng as _;
    let mut memory = SharedMemory::new(protocol.registers()).unwrap();
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut sched = Xoshiro256StarStar::new(seed ^ 0xFEED);
    let mut states: Vec<P::State> = inputs
        .iter()
        .enumerate()
        .map(|(pid, &v)| protocol.init(pid, v))
        .collect();
    for _ in 0..200 {
        let eligible: Vec<usize> = (0..states.len())
            .filter(|&i| protocol.decision(&states[i]).is_none())
            .collect();
        if eligible.is_empty() {
            break;
        }
        let pid = eligible[sched.below(eligible.len() as u64) as usize];
        check(pid, &states[pid]);
        let op = protocol.choose(pid, &states[pid]).sample(&mut rng).clone();
        let read = match &op {
            Op::Read(r) => Some(memory.read(Pid(pid), *r).unwrap().clone()),
            Op::Write(r, v) => {
                memory.write(Pid(pid), *r, v.clone()).unwrap();
                None
            }
        };
        states[pid] = protocol
            .transit(pid, &states[pid], &op, read.as_ref())
            .sample(&mut rng)
            .clone();
    }
}

fn choice_weights_positive<T>(c: &Choice<T>) -> bool {
    !c.branches().is_empty() && c.branches().iter().all(|&(w, _)| w > 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn circular_distance_is_antisymmetric(x in 1u8..=9, y in 1u8..=9) {
        let d = ahead(x, y);
        prop_assert!((-4..=4).contains(&d));
        if d != 0 && d.abs() != 4 {
            // -4/+4 is the ambiguous antipode of the 9-cycle; elsewhere the
            // relation is perfectly antisymmetric.
            prop_assert_eq!(ahead(y, x), -d);
        }
        prop_assert_eq!(ahead(x, x), 0);
    }

    #[test]
    fn circular_distance_respects_unit_steps(x in 1u8..=9) {
        let next = if x == 9 { 1 } else { x + 1 };
        prop_assert_eq!(ahead(next, x), 1);
        prop_assert_eq!(ahead(x, next), -1);
    }

    #[test]
    fn every_visited_choice_is_well_formed_two(seed in any::<u64>(), a in 0u64..2, b in 0u64..2) {
        let p = TwoProcessor::new();
        check_visited_states(&p, &[Val(a), Val(b)], seed, |pid, s| {
            assert!(choice_weights_positive(&p.choose(pid, s)));
            // Preference is always defined for this protocol.
            assert!(p.preference(pid, s).is_some());
        });
    }

    #[test]
    fn every_visited_choice_is_well_formed_fig2(seed in any::<u64>()) {
        let p = NUnbounded::three();
        check_visited_states(&p, &[Val::A, Val::B, Val::A], seed, |pid, s| {
            assert!(choice_weights_positive(&p.choose(pid, s)));
        });
    }

    #[test]
    fn every_visited_choice_is_well_formed_fig3(seed in any::<u64>()) {
        let p = ThreeBounded::new();
        check_visited_states(&p, &[Val::B, Val::A, Val::B], seed, |pid, s| {
            assert!(choice_weights_positive(&p.choose(pid, s)));
            assert!(p.preference(pid, s).is_some());
        });
    }

    #[test]
    fn fig2_writes_only_monotone_nums(seed in any::<u64>()) {
        // The num field in any processor's own register never decreases —
        // the global-ordering invariant Theorem 9 builds on.
        let p = NUnbounded::three();
        let out = Runner::new(&p, &[Val::A, Val::B, Val::A], RandomScheduler::new(seed))
            .seed(seed)
            .record_trace(true)
            .max_steps(100_000)
            .run();
        let mut last: Vec<Option<NReg>> = vec![None; 3];
        for e in out.trace.unwrap().events() {
            if let Op::Write(_, v) = &e.op {
                if let Some(prev) = last[e.pid] {
                    prop_assert!(
                        v.num >= prev.num,
                        "P{} wrote num {} after {}",
                        e.pid, v.num, prev.num
                    );
                }
                last[e.pid] = Some(*v);
            }
        }
    }

    #[test]
    fn decisions_are_irrevocable_across_protocols(seed in any::<u64>()) {
        // Run to completion and confirm decision states report stable values.
        let p = NUnbounded::three();
        let out = Runner::new(&p, &[Val::A, Val::B, Val::B], RandomScheduler::new(seed))
            .seed(seed)
            .run();
        for (pid, s) in out.final_states.iter().enumerate() {
            if let Some(v) = p.decision(s) {
                prop_assert_eq!(Some(v), out.decisions[pid]);
            }
        }
    }

    #[test]
    fn registers_declared_match_protocol_arity(n in 2usize..8) {
        let p = NUnbounded::new(n);
        let specs = p.registers();
        prop_assert_eq!(specs.len(), n);
        for (i, s) in specs.iter().enumerate() {
            prop_assert_eq!(s.id.0, i);
            prop_assert_eq!(s.writer.0, i);
            prop_assert!(!s.readers.allows(i.into()), "writer must not self-read");
        }
    }
}
