//! The Figure 2 protocol over **single-writer single-reader** registers —
//! the variant the paper defers to the full paper ("In the full paper we
//! prove that the same protocol also works with 1-writer 1-reader
//! registers").
//!
//! Instead of one 1-writer (n−1)-reader register per processor, every
//! ordered pair `(i, j)` gets its own register `r_{i→j}` written by `P_i`
//! and read only by `P_j` — the most restricted register class of the
//! paper, the one Lamport's constructions actually provide. A phase of
//! `P_i` becomes:
//!
//! 1. write the current `(pref, num)` into all `n − 1` outgoing copies
//!    (one register operation each — the copies are briefly *incoherent*,
//!    which is exactly the new difficulty of this variant);
//! 2. read the `n − 1` incoming registers `r_{j→i}`;
//! 3. conclude exactly as in Fig. 2 (same decision and advance rules,
//!    including this repository's corrected leader-self gap-2 rule — see
//!    [`crate::n_unbounded::NUnbounded`]);
//! 4. coin: write the new contents (all copies, next phase) or retain.
//!
//! **Why the correctness argument survives copy incoherence.** The barrier
//! argument for the corrected rule needs: every register value with
//! `num ≥ m` (the decided level) carries the decided pref `v`. A winner
//! `W` deciding at level `m` has *all* its outgoing copies at `(v, m)`
//! before its decision reads (copies are written at the start of the
//! phase), and they stay frozen. Any processor climbing to level `m` does
//! the climb-phase reads *after* `W` observed it at `≤ m − 2` — and a
//! read of `r_{W→j}` at any such time returns `(v, m)` — so its view's
//! maximal level is `m` and, by induction over the order in which `num ≥ m`
//! copy-values are written, all leaders it sees carry `v`; it adopts `v`.
//! A peer's lagging copy only makes views *staler* (smaller `num`), never
//! fresher, so incoherence cannot manufacture a spurious leader.

use crate::n_unbounded::{NReg, NUnbounded, PhaseOutcome, PhaseScan};
use cil_registers::{ReaderSet, RegId, RegisterSpec};
use cil_sim::{Choice, Op, Protocol, Val};

/// Internal state of one processor of the 1W1R variant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WState {
    /// Writing the current register contents into outgoing copy `idx`.
    WriteCopies {
        /// Value being replicated.
        reg: NReg,
        /// Index into the peer list (0-based).
        idx: usize,
    },
    /// Reading incoming register `idx`.
    Reading {
        /// Own (fully replicated) register contents.
        my: NReg,
        /// Index into the peer list.
        idx: usize,
        /// Running leader-scan statistics folded over the values read so
        /// far this phase (replaces storing the raw reads).
        scan: PhaseScan,
    },
    /// End of phase: coin between replicating `new` and retaining `old`.
    /// The coin is flipped once; the chosen value is then replicated to all
    /// copies by the following [`WState::WriteCopies`] phase.
    CoinThenWrite {
        /// Current contents.
        old: NReg,
        /// Computed new contents.
        new: NReg,
    },
    /// Decision state.
    Decided {
        /// The irrevocable output value.
        value: Val,
    },
}

/// The Fig. 2 protocol over per-pair 1W1R registers, with the corrected
/// decision rule. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NUnbounded1W1R {
    n: usize,
}

impl NUnbounded1W1R {
    /// Creates the protocol for `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "coordination needs at least two processors");
        NUnbounded1W1R { n }
    }

    /// The three-processor instance (the §5 setting).
    pub fn three() -> Self {
        NUnbounded1W1R::new(3)
    }

    /// Peers of `pid` in fixed order.
    fn peers(&self, pid: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&j| j != pid)
    }

    /// Register `r_{writer→reader}`.
    fn pair_reg(&self, writer: usize, reader: usize) -> RegId {
        debug_assert_ne!(writer, reader);
        let slot = self
            .peers(writer)
            .position(|j| j == reader)
            .expect("reader is a peer");
        RegId(writer * (self.n - 1) + slot)
    }
}

impl Protocol for NUnbounded1W1R {
    type State = WState;
    type Reg = NReg;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> Vec<RegisterSpec<NReg>> {
        let mut specs = Vec::with_capacity(self.n * (self.n - 1));
        for writer in 0..self.n {
            for reader in self.peers(writer) {
                let id = self.pair_reg(writer, reader);
                specs.push(
                    RegisterSpec::new(
                        id,
                        format!("r{writer}->{reader}"),
                        writer.into(),
                        ReaderSet::only([reader.into()]),
                        NReg::BOT,
                    )
                    // Same unbounded `(pref, num)` contents as Fig. 2: the
                    // declared width is the full packed word.
                    .with_width(64),
                );
            }
        }
        // pair_reg enumerates ids densely in writer-major order.
        specs.sort_by_key(|s| s.id.0);
        specs
    }

    fn init(&self, _pid: usize, input: Val) -> WState {
        WState::WriteCopies {
            reg: NReg {
                pref: Some(input),
                num: 1,
            },
            idx: 0,
        }
    }

    fn choose(&self, pid: usize, state: &WState) -> Choice<Op<NReg>> {
        match state {
            WState::WriteCopies { reg, idx } => {
                let reader = self.peers(pid).nth(*idx).expect("peer in range");
                Choice::det(Op::Write(self.pair_reg(pid, reader), *reg))
            }
            WState::Reading { idx, .. } => {
                let writer = self.peers(pid).nth(*idx).expect("peer in range");
                Choice::det(Op::Read(self.pair_reg(writer, pid)))
            }
            WState::CoinThenWrite { old, new } => {
                // The phase coin: heads installs the new contents, tails
                // retains the old — realized as the *first copy write* of
                // the chosen value; the remaining copies follow.
                let reader = self.peers(pid).next().expect("n >= 2");
                let reg = self.pair_reg(pid, reader);
                Choice::coin(Op::Write(reg, *new), Op::Write(reg, *old))
            }
            WState::Decided { .. } => unreachable!("decided processors take no steps"),
        }
    }

    fn transit(
        &self,
        _pid: usize,
        state: &WState,
        op: &Op<NReg>,
        read: Option<&NReg>,
    ) -> Choice<WState> {
        match state {
            WState::WriteCopies { reg, idx } => {
                if *idx + 1 < self.n - 1 {
                    Choice::det(WState::WriteCopies {
                        reg: *reg,
                        idx: idx + 1,
                    })
                } else {
                    Choice::det(WState::Reading {
                        my: *reg,
                        idx: 0,
                        scan: PhaseScan::start(*reg),
                    })
                }
            }
            WState::Reading { my, idx, scan } => {
                let v = *read.expect("reading phase reads");
                let mut scan = *scan;
                scan.observe(*my, v);
                if *idx + 1 < self.n - 1 {
                    Choice::det(WState::Reading {
                        my: *my,
                        idx: idx + 1,
                        scan,
                    })
                } else {
                    match NUnbounded::conclude_scan(*my, scan, true) {
                        PhaseOutcome::Decide(v) => Choice::det(WState::Decided { value: v }),
                        PhaseOutcome::Advance(new) => {
                            Choice::det(WState::CoinThenWrite { old: *my, new })
                        }
                    }
                }
            }
            WState::CoinThenWrite { .. } => {
                let written = match op {
                    Op::Write(_, w) => *w,
                    Op::Read(_) => unreachable!("coin step writes"),
                };
                // The first copy is already written (this step); replicate
                // to the remaining copies, then read.
                if self.n - 1 > 1 {
                    Choice::det(WState::WriteCopies {
                        reg: written,
                        idx: 1,
                    })
                } else {
                    Choice::det(WState::Reading {
                        my: written,
                        idx: 0,
                        scan: PhaseScan::start(written),
                    })
                }
            }
            WState::Decided { .. } => unreachable!("decided processors take no steps"),
        }
    }

    fn decision(&self, state: &WState) -> Option<Val> {
        match state {
            WState::Decided { value } => Some(*value),
            _ => None,
        }
    }

    fn preference(&self, _pid: usize, state: &WState) -> Option<Val> {
        match state {
            WState::WriteCopies { reg, .. } => reg.pref,
            WState::Reading { my, .. } | WState::CoinThenWrite { old: my, .. } => my.pref,
            WState::Decided { value } => Some(*value),
        }
    }

    fn name(&self) -> String {
        format!("{}-processor unbounded, 1W1R registers", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_sim::{
        CrashPlan, Halt, LaggardFirst, RandomScheduler, Runner, Solo, SplitKeeper, StopWhen,
    };

    #[test]
    fn registers_are_strictly_single_reader() {
        let p = NUnbounded1W1R::three();
        let specs = cil_sim::Protocol::registers(&p);
        assert_eq!(specs.len(), 6);
        for s in &specs {
            let readers: Vec<usize> = (0..3).filter(|&j| s.readers.allows(j.into())).collect();
            assert_eq!(readers.len(), 1, "register {} has {readers:?}", s.name);
            assert_ne!(s.writer.0, readers[0], "writer reads its own register");
        }
    }

    #[test]
    fn pair_register_ids_are_dense_and_distinct() {
        let p = NUnbounded1W1R::new(5);
        let mut ids = std::collections::HashSet::new();
        for w in 0..5 {
            for r in 0..5 {
                if w != r {
                    assert!(ids.insert(p.pair_reg(w, r)));
                }
            }
        }
        assert_eq!(ids.len(), 20);
        assert!(ids.iter().all(|id| id.0 < 20));
    }

    #[test]
    fn solo_processor_decides() {
        let p = NUnbounded1W1R::three();
        let out = Runner::new(&p, &[Val::B, Val::A, Val::A], Solo::new(0))
            .stop_when(StopWhen::PidDecided(0))
            .seed(5)
            .max_steps(100_000)
            .run();
        assert_eq!(out.decisions[0], Some(Val::B));
        assert_eq!(out.steps[1] + out.steps[2], 0);
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        let p = NUnbounded1W1R::three();
        for seed in 0..50 {
            let out = Runner::new(&p, &[Val::A; 3], RandomScheduler::new(seed))
                .seed(seed)
                .max_steps(1_000_000)
                .run();
            assert_eq!(out.agreement(), Some(Val::A), "seed {seed}");
        }
    }

    #[test]
    fn mixed_inputs_safe_across_seeds_and_adversaries() {
        let p = NUnbounded1W1R::three();
        let inputs = [Val::A, Val::B, Val::A];
        for seed in 0..300 {
            let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                .seed(seed ^ 0x1337)
                .max_steps(2_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "seed {seed}");
            assert!(out.consistent(), "seed {seed}");
            assert!(out.nontrivial(), "seed {seed}");
        }
        for seed in 0..100 {
            let out = Runner::new(&p, &inputs, SplitKeeper::new())
                .seed(seed)
                .max_steps(2_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "sk seed {seed}");
            assert!(out.consistent());
            let out = Runner::new(&p, &inputs, LaggardFirst::new())
                .seed(seed)
                .max_steps(2_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "lf seed {seed}");
            assert!(out.consistent());
        }
    }

    #[test]
    fn larger_n_works_too() {
        for n in [4usize, 5] {
            let p = NUnbounded1W1R::new(n);
            let inputs: Vec<Val> = (0..n).map(|i| Val((i % 2) as u64)).collect();
            for seed in 0..60 {
                let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                    .seed(seed)
                    .max_steps(5_000_000)
                    .run();
                assert_eq!(out.halt, Halt::Done, "n={n} seed={seed}");
                assert!(out.consistent() && out.nontrivial(), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn tolerates_crashes() {
        let p = NUnbounded1W1R::three();
        for seed in 0..50 {
            let out = Runner::new(&p, &[Val::A, Val::B, Val::A], RandomScheduler::new(seed))
                .seed(seed)
                .crashes(CrashPlan::none().crash(1, 2).crash(2, 6))
                .max_steps(2_000_000)
                .run();
            assert!(out.decisions[0].is_some(), "survivor stuck, seed {seed}");
            assert!(out.consistent() && out.nontrivial());
        }
    }

    #[test]
    fn copies_can_be_transiently_incoherent_but_converge() {
        // Drive P0 mid-replication and observe the two outgoing copies
        // disagreeing, then let it finish and observe coherence.
        let p = NUnbounded1W1R::three();
        let out = Runner::new(
            &p,
            &[Val::A, Val::B, Val::A],
            cil_sim::FixedSchedule::new(vec![0]),
        )
        .seed(1)
        .max_steps(1)
        .record_trace(true)
        .run();
        // After exactly one step, P0 wrote only its first copy.
        let r01 = out.final_regs[p.pair_reg(0, 1).0];
        let r02 = out.final_regs[p.pair_reg(0, 2).0];
        assert_ne!(r01, r02, "copies should be incoherent mid-replication");
        assert_eq!(r02, NReg::BOT);
    }
}
