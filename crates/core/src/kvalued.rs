//! k-valued coordination from binary coordination (§4, Theorem 5).
//!
//! Theorem 5: given a binary coordination protocol `CP₂` for `n` processors,
//! a protocol `CP_k` for any value-set size `k` can be constructed with a
//! `⌈log₂ k⌉` complexity multiplier. The extended abstract states the
//! theorem without a construction; we implement the standard bit-by-bit
//! reduction, augmented with **candidate-publication registers** so that
//! nontriviality carries over:
//!
//! * every processor publishes its current *candidate* value (initially its
//!   input) in a single-writer register;
//! * round `r` (for `r = 0 … ⌈log₂k⌉−1`) runs an independent instance of the
//!   binary protocol on bit `r` of the candidate;
//! * if the decided bit agrees with the candidate, proceed; otherwise scan
//!   the other processors' candidate registers for one whose low bits match
//!   the decided prefix, adopt it, republish, and proceed;
//! * after the last round the candidate equals the decided prefix — decide.
//!
//! **Why the scan always succeeds:** by validity of the binary instance, the
//! decided bit `b_r` was proposed by some processor whose candidate matched
//! the decided prefix through round `r` at the moment it entered round `r`
//! — and every later value that processor publishes also matches (adoption
//! only ever extends agreement with the decided prefix). So that register
//! matches at *every* point after its owner entered round `r`, and a single
//! scan over all peers must encounter it.
//!
//! **Consistency** is inherited: all processors see the same decided bit per
//! round (consistency of the inner protocol), hence build the same prefix.
//! **Nontriviality**: candidates only ever copy published candidates, and
//! the initial candidates are inputs of processors that took a step.
//!
//! The complexity multiplier (`⌈log₂ k⌉` inner executions plus `O(n)`
//! bookkeeping per round) is measured in experiment EXP-3.

use cil_registers::{ReaderSet, RegId, RegisterSpec};
use cil_sim::{Choice, Op, Protocol, Val};
use std::hash::Hash;

/// Register contents of the composite protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KReg<R> {
    /// A register belonging to one of the inner binary instances.
    Inner(R),
    /// A candidate-publication register (`None` = ⊥, not yet published).
    Cand(Option<u64>),
}

/// Phase of the composite state machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KPhase<S> {
    /// About to publish the initial candidate.
    PublishInit,
    /// Running the inner binary instance of the current round.
    Inner(S),
    /// The decided bit disagreed with the candidate: scanning peers'
    /// candidate registers for one matching the decided prefix.
    Scan {
        /// Index into the peer list.
        next: usize,
    },
    /// Adopted a matching candidate; about to republish it.
    Republish,
    /// All rounds decided.
    Done(Val),
}

/// Internal state of one processor of the composite protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KState<S> {
    /// Current candidate value (`< k`).
    pub cand: u64,
    /// Current round (0-based bit index).
    pub round: u32,
    /// Decided bits so far (low `round` bits).
    pub prefix: u64,
    /// Current phase.
    pub phase: KPhase<S>,
}

/// The Theorem 5 construction over an inner binary protocol `P`.
///
/// `P` must be a coordination protocol for the same number of processors
/// whose inputs/decisions are `Val(0)`/`Val(1)` — e.g.
/// [`crate::two::TwoProcessor`] for `n = 2` or
/// [`crate::n_unbounded::NUnbounded`] for any `n`.
#[derive(Debug, Clone)]
pub struct KValued<P> {
    inner: P,
    k: u64,
    rounds: u32,
    inner_regs: usize,
}

impl<P: Protocol> KValued<P> {
    /// Builds `CP_k` from the binary protocol `inner`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(inner: P, k: u64) -> Self {
        assert!(k >= 2, "coordination needs at least two values");
        let rounds = 64 - (k - 1).leading_zeros();
        let inner_regs = inner.registers().len();
        KValued {
            inner,
            k,
            rounds,
            inner_regs,
        }
    }

    /// Number of binary rounds `⌈log₂ k⌉`.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The value-set size.
    pub fn k(&self) -> u64 {
        self.k
    }

    fn n(&self) -> usize {
        self.inner.processes()
    }

    /// Register id of the `idx`-th inner register of round `r`.
    fn inner_reg(&self, round: u32, idx: usize) -> RegId {
        RegId(round as usize * self.inner_regs + idx)
    }

    /// Register id of processor `pid`'s candidate register.
    fn cand_reg(&self, pid: usize) -> RegId {
        RegId(self.rounds as usize * self.inner_regs + pid)
    }

    fn peers(&self, pid: usize) -> impl Iterator<Item = usize> + '_ {
        let n = self.n();
        (0..n).filter(move |&j| j != pid)
    }

    fn bit(cand: u64, round: u32) -> u64 {
        (cand >> round) & 1
    }

    /// The phase entered after round `round` decided and the candidate
    /// already matches the prefix.
    fn enter_round(&self, pid: usize, cand: u64, next_round: u32) -> KPhase<P::State> {
        if next_round == self.rounds {
            KPhase::Done(Val(cand))
        } else {
            KPhase::Inner(self.inner.init(pid, Val(Self::bit(cand, next_round))))
        }
    }

    /// Remaps an inner op into the composite register space.
    fn remap_op(&self, round: u32, op: Op<P::Reg>) -> Op<KReg<P::Reg>> {
        match op {
            Op::Read(RegId(i)) => Op::Read(self.inner_reg(round, i)),
            Op::Write(RegId(i), v) => Op::Write(self.inner_reg(round, i), KReg::Inner(v)),
        }
    }

    /// Maps a composite op back into the inner instance's register space.
    fn unmap_op(&self, round: u32, op: &Op<KReg<P::Reg>>) -> Op<P::Reg> {
        let base = round as usize * self.inner_regs;
        match op {
            Op::Read(RegId(i)) => Op::Read(RegId(i - base)),
            Op::Write(RegId(i), KReg::Inner(v)) => Op::Write(RegId(i - base), v.clone()),
            Op::Write(_, KReg::Cand(_)) => unreachable!("inner ops never touch candidates"),
        }
    }
}

impl<P: Protocol> Protocol for KValued<P> {
    type State = KState<P::State>;
    type Reg = KReg<P::Reg>;

    fn processes(&self) -> usize {
        self.n()
    }

    fn registers(&self) -> Vec<RegisterSpec<Self::Reg>> {
        let mut specs = Vec::new();
        for round in 0..self.rounds {
            for spec in self.inner.registers() {
                let id = self.inner_reg(round, spec.id.0);
                specs.push(
                    RegisterSpec::new(
                        id,
                        format!("round{round}.{}", spec.name),
                        spec.writer,
                        spec.readers.clone(),
                        KReg::Inner(spec.init),
                    )
                    // Each inner instance inherits its register's bound.
                    .with_width(spec.width_bits),
                );
            }
        }
        // Candidate registers hold {⊥} ∪ 0..k, packed as 0..=k.
        let cand_width = 64 - self.k.leading_zeros();
        for pid in 0..self.n() {
            specs.push(
                RegisterSpec::new(
                    self.cand_reg(pid),
                    format!("cand{pid}"),
                    pid.into(),
                    ReaderSet::only(self.peers(pid).map(Into::into)),
                    KReg::Cand(None),
                )
                .with_width(cand_width),
            );
        }
        specs
    }

    fn init(&self, _pid: usize, input: Val) -> Self::State {
        assert!(input.0 < self.k, "input {input} outside 0..{}", self.k);
        KState {
            cand: input.0,
            round: 0,
            prefix: 0,
            phase: KPhase::PublishInit,
        }
    }

    fn choose(&self, pid: usize, state: &Self::State) -> Choice<Op<Self::Reg>> {
        match &state.phase {
            KPhase::PublishInit | KPhase::Republish => {
                Choice::det(Op::Write(self.cand_reg(pid), KReg::Cand(Some(state.cand))))
            }
            KPhase::Inner(s) => {
                let round = state.round;
                self.inner.choose(pid, s).map(|op| self.remap_op(round, op))
            }
            KPhase::Scan { next } => {
                let peer = self.peers(pid).nth(*next).expect("peer in range");
                Choice::det(Op::Read(self.cand_reg(peer)))
            }
            KPhase::Done(_) => unreachable!("decided processors take no steps"),
        }
    }

    fn transit(
        &self,
        pid: usize,
        state: &Self::State,
        op: &Op<Self::Reg>,
        read: Option<&Self::Reg>,
    ) -> Choice<Self::State> {
        let mut next = state.clone();
        match &state.phase {
            KPhase::PublishInit => {
                next.phase = self.enter_round(pid, state.cand, 0);
                Choice::det(next)
            }
            KPhase::Republish => {
                next.phase = self.enter_round(pid, state.cand, state.round);
                Choice::det(next)
            }
            KPhase::Inner(s) => {
                let inner_op = self.unmap_op(state.round, op);
                let inner_read = read.map(|r| match r {
                    KReg::Inner(v) => v,
                    KReg::Cand(_) => unreachable!("inner reads stay in the instance"),
                });
                self.inner
                    .transit(pid, s, &inner_op, inner_read)
                    .map(move |s2| {
                        let mut n2 = next.clone();
                        match self.inner.decision(&s2) {
                            None => n2.phase = KPhase::Inner(s2),
                            Some(bit) => {
                                debug_assert!(bit.0 <= 1, "inner protocol must be binary");
                                let r = n2.round;
                                n2.prefix |= bit.0 << r;
                                if Self::bit(n2.cand, r) == bit.0 {
                                    n2.round = r + 1;
                                    n2.phase = self.enter_round(pid, n2.cand, r + 1);
                                } else {
                                    n2.phase = KPhase::Scan { next: 0 };
                                }
                            }
                        }
                        n2
                    })
            }
            KPhase::Scan { next: idx } => {
                let v = read.expect("scan reads");
                let mask = (1u64 << (state.round + 1)) - 1;
                let want = state.prefix & mask;
                let matches = matches!(v, KReg::Cand(Some(c)) if c & mask == want);
                if matches {
                    if let KReg::Cand(Some(c)) = v {
                        next.cand = *c;
                        next.round += 1;
                        next.phase = KPhase::Republish;
                    }
                } else if *idx + 1 < self.n() - 1 {
                    next.phase = KPhase::Scan { next: idx + 1 };
                } else {
                    // Unreachable by the proposer argument (module docs);
                    // restart the scan to stay total.
                    next.phase = KPhase::Scan { next: 0 };
                }
                Choice::det(next)
            }
            KPhase::Done(_) => unreachable!("decided processors take no steps"),
        }
    }

    fn decision(&self, state: &Self::State) -> Option<Val> {
        match state.phase {
            KPhase::Done(v) => Some(v),
            _ => None,
        }
    }

    fn preference(&self, _pid: usize, state: &Self::State) -> Option<Val> {
        Some(Val(state.cand))
    }

    fn name(&self) -> String {
        format!("{}-valued over [{}]", self.k, self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::n_unbounded::NUnbounded;
    use crate::two::TwoProcessor;
    use cil_sim::{Halt, LaggardFirst, RandomScheduler, Runner, Solo, SplitKeeper, StopWhen};

    #[test]
    fn rounds_is_ceil_log2() {
        let p = |k| KValued::new(TwoProcessor::new(), k).rounds();
        assert_eq!(p(2), 1);
        assert_eq!(p(3), 2);
        assert_eq!(p(4), 2);
        assert_eq!(p(5), 3);
        assert_eq!(p(8), 3);
        assert_eq!(p(9), 4);
        assert_eq!(p(64), 6);
    }

    #[test]
    fn two_processors_agree_on_one_of_their_inputs() {
        let p = KValued::new(TwoProcessor::new(), 8);
        for seed in 0..300 {
            let inputs = [Val(seed % 8), Val((seed * 5 + 3) % 8)];
            let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                .seed(seed ^ 0xF00D)
                .max_steps(100_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "seed {seed}");
            assert!(out.consistent(), "seed {seed}");
            assert!(out.nontrivial(), "seed {seed}");
            let v = out.agreement().expect("both decided");
            assert!(inputs.contains(&v), "decided non-input {v}");
        }
    }

    #[test]
    fn three_processors_with_fig2_inner() {
        let p = KValued::new(NUnbounded::three(), 16);
        for seed in 0..100 {
            let inputs = [
                Val(seed % 16),
                Val((seed * 7 + 1) % 16),
                Val((seed * 3 + 9) % 16),
            ];
            let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                .seed(seed)
                .max_steps(1_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "seed {seed}");
            assert!(out.consistent(), "seed {seed}");
            assert!(out.nontrivial(), "seed {seed}");
        }
    }

    #[test]
    fn adaptive_adversaries_do_not_break_it() {
        let p = KValued::new(TwoProcessor::new(), 4);
        for seed in 0..100 {
            let out = Runner::new(&p, &[Val(1), Val(2)], SplitKeeper::new())
                .seed(seed)
                .max_steps(100_000)
                .run();
            assert_eq!(out.halt, Halt::Done);
            assert!(out.consistent());
            let v = out.agreement().unwrap();
            assert!(v == Val(1) || v == Val(2));
        }
        for seed in 0..100 {
            let out = Runner::new(&p, &[Val(3), Val(0)], LaggardFirst::new())
                .seed(seed)
                .max_steps(100_000)
                .run();
            assert_eq!(out.halt, Halt::Done);
            assert!(out.consistent());
        }
    }

    #[test]
    fn solo_processor_decides_its_own_input() {
        let p = KValued::new(TwoProcessor::new(), 8);
        let out = Runner::new(&p, &[Val(5), Val(2)], Solo::new(0))
            .stop_when(StopWhen::PidDecided(0))
            .run();
        assert_eq!(out.decisions[0], Some(Val(5)));
    }

    #[test]
    fn equal_inputs_decide_that_input() {
        let p = KValued::new(TwoProcessor::new(), 32);
        for seed in 0..50 {
            let out = Runner::new(&p, &[Val(23), Val(23)], RandomScheduler::new(seed))
                .seed(seed)
                .run();
            assert_eq!(out.agreement(), Some(Val(23)));
        }
    }

    #[test]
    fn cost_grows_roughly_with_log_k() {
        // EXP-3 shape check: steps(k=64) should be well below
        // 64/2 × steps(k=2) — logarithmic, not linear, in k.
        let mean_steps = |k: u64| {
            let p = KValued::new(TwoProcessor::new(), k);
            let runs = 200u64;
            let mut total = 0u64;
            for seed in 0..runs {
                let inputs = [Val(seed % k), Val((seed + 1) % k)];
                let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                    .seed(seed)
                    .run();
                total += out.total_steps;
            }
            total as f64 / runs as f64
        };
        let s2 = mean_steps(2);
        let s64 = mean_steps(64);
        assert!(
            s64 < 10.0 * s2,
            "k=64 cost {s64} vs k=2 cost {s2}: not logarithmic"
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_input_is_rejected() {
        let p = KValued::new(TwoProcessor::new(), 4);
        let _ = p.init(0, Val(4));
    }
}
