//! The unbounded-register coordination protocol (§5, Figure 2), for three
//! processors and its natural generalization to arbitrary `n`.
//!
//! Each processor `P_i` owns a single-writer register holding a pair
//! `(pref, num)`: its currently preferred decision value and a round
//! counter used to keep a (global, because unbounded) ordering of the
//! processors. All registers start at `(⊥, 0)`. One *phase* of `P_i`
//! (Fig. 2):
//!
//! 1. read every other processor's register;
//! 2. let `maxnum` be the largest `num` field (its own included); the
//!    *leading* processors are those with `num = maxnum`;
//! 3. **decide** if (a) all prefs are equal, or (b) all leading processors
//!    share one pref and every other processor's `num ≤ maxnum − 2`
//!    (the paper: "greater by two or more") — the decision value is the
//!    leaders' pref;
//! 4. otherwise toss a fair coin. Heads: write `(newpref, num+1)` where
//!    `newpref` adopts the leaders' pref if they are unanimous, else keeps
//!    its own. Tails: rewrite the old register unchanged ("in order to break
//!    symmetry this new contents is only used in half of the time").
//!
//! §5 presents the `n = 3` case ([`ThreeUnbounded`]); the "full paper"
//! generalization to `n` processors keeps the same leader/gap-2 rules and is
//! what [`NUnbounded`] implements. Quantitative claims reproduced by the
//! bench harness: `P[num = k] ≤ (3/4)^k` (Theorem 9) and constant expected
//! running time (its Corollary).
//!
//! The registers are formally unbounded, but large `num` values occur with
//! geometrically vanishing probability — that observation is the paper's
//! motivation for the bounded protocol of §6.

use cil_registers::{ReaderSet, RegisterSpec};
use cil_sim::{Choice, Op, Protocol, Val};

/// Contents of one `(pref, num)` register. `pref = None` is the paper's ⊥.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NReg {
    /// Currently preferred decision value.
    pub pref: Option<Val>,
    /// Round counter (the paper's `num` field).
    pub num: u64,
}

impl NReg {
    /// The initial register contents `(⊥, 0)`.
    pub const BOT: NReg = NReg { pref: None, num: 0 };
}

/// Internal state of one processor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NState {
    /// About to perform the initial write of `(input, 1)`.
    Start {
        /// The processor's input value.
        input: Val,
    },
    /// Mid-phase: reading the other registers one at a time.
    Reading {
        /// Own register contents (the paper's `newreg` after its write).
        my: NReg,
        /// Index into the list of peers still to be read.
        peer_idx: usize,
        /// Running leader-scan statistics folded over the values read so
        /// far this phase (replaces storing the raw reads).
        scan: PhaseScan,
    },
    /// End of phase, no decision: about to write, coin picks new vs old.
    WriteBack {
        /// Current register contents (the paper's `oldreg`).
        old: NReg,
        /// Computed new contents (the paper's `newreg`).
        new: NReg,
    },
    /// Decision state.
    Decided {
        /// The irrevocable output value.
        value: Val,
    },
}

/// The Figure 2 protocol generalized to `n ≥ 2` processors
/// (1-writer, (n−1)-reader registers, as in the paper's 1-writer 2-reader
/// presentation for `n = 3`).
///
/// # The corrected gap-2 decision rule (a bug in the extended abstract)
///
/// Figure 2's gap-2 rule lets **any** processor decide the leaders' pref as
/// soon as it *observes* unanimous leaders two ahead of everyone else. This
/// repository's harness found that rule to be **inconsistent as literally
/// stated — already at `n = 3`** (Theorem 8 is stated without proof in the
/// extended abstract). The mechanism: the observer's per-register reads
/// happen at different times. A laggard `L` can read `r_x = (v, 1)` early,
/// then `r_y = (w, 3)` much later; its view shows a unanimous leader `y`
/// with everyone else ≥ 2 behind, so `L` decides `w` — but in the meantime
/// `x` climbed to `num = 3` *keeping* pref `v` (it read `y`'s register
/// before `y` became leader and saw split leaders), and `x`, `y` go on to
/// decide `v`. See `literal_fig2_rule_admits_inconsistency` in this
/// module's tests for the pinned interleaving, found by random search and
/// reproducible by seed.
///
/// The sound rule — used here by default for every `n`, and presumably what
/// the unpublished "full paper" proof needed — restricts the gap-2 decision
/// to the **leader itself**: decide only if *my own* `num` equals `maxnum`,
/// all leaders are unanimous, and everyone else is ≥ 2 behind. The
/// decider's own register is never stale, and its frozen `(v, m)` register
/// then acts as a barrier: any processor whose register ever shows
/// `num ≥ m` wrote that value after reading the barrier register as a
/// unanimous leader (its own pre-crossing reads of third parties can only
/// under-report their `num`), so by induction on the order of `num ≥ m`
/// writes every such register carries pref `v`.
///
/// [`NUnbounded::literal_fig2`] builds the uncorrected protocol for the
/// negative demonstration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NUnbounded {
    n: usize,
    /// Restrict the gap-2 decision to leaders themselves (the corrected
    /// rule; `false` reproduces the extended abstract's literal — unsound —
    /// Figure 2).
    strict_leader_decide: bool,
    /// Ablation: always install the new register contents instead of
    /// flipping the paper's retain-coin ("this new contents is only used in
    /// half of the time ... in order to break symmetry"). Safe but removes
    /// the randomness the termination guarantee relies on; EXP-10 measures
    /// the consequences.
    always_write: bool,
}

/// The paper's §5 three-processor protocol is exactly [`NUnbounded`] with
/// `n = 3`.
pub type ThreeUnbounded = NUnbounded;

impl NUnbounded {
    /// Creates the protocol for `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "coordination needs at least two processors");
        NUnbounded {
            n,
            strict_leader_decide: true,
            always_write: false,
        }
    }

    /// The §5 protocol (`n = 3`) with the corrected decision rule.
    pub fn three() -> Self {
        NUnbounded::new(3)
    }

    /// The **literal** Figure 2 protocol of the extended abstract, in which
    /// any processor may decide on an *observed* gap-2 leader. Kept for the
    /// negative demonstration: this rule is inconsistent (see the type-level
    /// docs); do not use it for anything but experiments.
    pub fn literal_fig2(n: usize) -> Self {
        assert!(n >= 2, "coordination needs at least two processors");
        NUnbounded {
            n,
            strict_leader_decide: false,
            always_write: false,
        }
    }

    /// Ablation for EXP-10: remove the retain-coin — every phase installs
    /// its newly computed register contents deterministically. Safety is
    /// untouched (the decision rules are unchanged); what breaks is the
    /// symmetry-breaking that randomized termination relies on.
    pub fn ablate_always_write(n: usize) -> Self {
        let mut p = NUnbounded::new(n);
        p.always_write = true;
        p
    }

    /// The peers of `pid`, in the fixed order they are read each phase.
    fn peers(&self, pid: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&j| j != pid)
    }

    /// End-of-phase computation: decide, or compute the next register
    /// contents. Pure function of the registers seen this phase.
    /// `strict` restricts the gap-2 decision to leaders themselves (the
    /// soundness fix described on [`NUnbounded`]). Test-only slice form;
    /// the executor hot path (here and in the 1W1R variant) folds the same
    /// statistics incrementally via [`PhaseScan`] instead of materializing
    /// the reads.
    #[cfg(test)]
    pub(crate) fn conclude(my: NReg, seen: &[NReg], strict: bool) -> PhaseOutcome {
        let mut scan = PhaseScan::start(my);
        for r in seen {
            scan.observe(my, *r);
        }
        Self::conclude_scan(my, scan, strict)
    }

    /// [`conclude`](Self::conclude) over pre-folded scan statistics — one
    /// alloc-free pass, no `all`/`leaders` temporaries.
    pub(crate) fn conclude_scan(my: NReg, scan: PhaseScan, strict: bool) -> PhaseOutcome {
        // Decision case 1: the pref of all registers is the same.
        if scan.all_same {
            if let Some(v) = my.pref {
                return PhaseOutcome::Decide(v);
            }
            // All ⊥ cannot happen for the phase owner (it wrote (input,1)),
            // but keep the math total: fall through to advance.
        }

        // Decision case 2: leaders unanimous and everyone else ≥ 2 behind.
        // In strict mode only the leader itself may use this rule.
        if scan.unanimous && (!strict || my.num == scan.maxnum) {
            if let Some(v) = scan.leader_pref {
                let others_far_behind = scan.second.is_none_or(|s| s + 2 <= scan.maxnum);
                if others_far_behind {
                    return PhaseOutcome::Decide(v);
                }
            }
        }

        // Advance: adopt the leaders' pref when unanimous, else keep own.
        let newpref = if scan.unanimous && scan.leader_pref.is_some() {
            scan.leader_pref
        } else {
            my.pref
        };
        PhaseOutcome::Advance(NReg {
            pref: newpref,
            num: my.num + 1,
        })
    }
}

/// Constant-size running statistics of one read phase: everything the
/// end-of-phase rule needs about `{my} ∪ seen`, folded one register at a
/// time. Replaces the per-step `all`/`leaders` vector materialization —
/// the read loop stays allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhaseScan {
    /// Largest `num` observed so far (own register included).
    maxnum: u64,
    /// Pref of the first register observed at the current `maxnum`.
    leader_pref: Option<Val>,
    /// Whether every register at the current `maxnum` shares `leader_pref`.
    unanimous: bool,
    /// Largest `num` observed strictly below the current `maxnum`, if any
    /// register is behind at all (drives the gap-2 rule).
    second: Option<u64>,
    /// Whether every pref observed equals the phase owner's own pref.
    all_same: bool,
}

impl PhaseScan {
    /// Statistics of the singleton view `{my}` at the start of a phase.
    pub fn start(my: NReg) -> Self {
        PhaseScan {
            maxnum: my.num,
            leader_pref: my.pref,
            unanimous: true,
            second: None,
            all_same: true,
        }
    }

    /// Folds one peer register into the statistics. `my` is the phase
    /// owner's own contents (needed for the all-prefs-equal rule).
    pub fn observe(&mut self, my: NReg, r: NReg) {
        self.all_same &= r.pref == my.pref;
        if r.num > self.maxnum {
            // The old leading pack falls behind; it is the best candidate
            // for the runner-up num.
            self.second = Some(self.second.map_or(self.maxnum, |s| s.max(self.maxnum)));
            self.maxnum = r.num;
            self.leader_pref = r.pref;
            self.unanimous = true;
        } else if r.num == self.maxnum {
            self.unanimous &= r.pref == self.leader_pref;
        } else {
            self.second = Some(self.second.map_or(r.num, |s| s.max(r.num)));
        }
    }
}

/// Result of the end-of-phase computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PhaseOutcome {
    /// Decide this value and quit.
    Decide(Val),
    /// Write this new register contents (with probability 1/2; retain the
    /// old contents otherwise).
    Advance(NReg),
}

impl Protocol for NUnbounded {
    type State = NState;
    type Reg = NReg;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> Vec<RegisterSpec<NReg>> {
        cil_registers::access::per_process_registers(self.n, NReg::BOT, |i| {
            // 1-writer (n−1)-reader: everyone but the owner reads.
            ReaderSet::only((0..self.n).filter(|&j| j != i).map(Into::into))
        })
        .into_iter()
        // §5's registers are unbounded in principle (num grows without
        // bound); the declared width is the full word the packing uses
        // (pref in the top 16 bits, num in the low 48 — see `packing.rs`).
        .map(|s| s.with_width(64))
        .collect()
    }

    fn init(&self, _pid: usize, input: Val) -> NState {
        NState::Start { input }
    }

    fn choose(&self, pid: usize, state: &NState) -> Choice<Op<NReg>> {
        match state {
            NState::Start { input } => Choice::det(Op::Write(
                pid.into(),
                NReg {
                    pref: Some(*input),
                    num: 1,
                },
            )),
            NState::Reading { peer_idx, .. } => {
                let peer = self.peers(pid).nth(*peer_idx).expect("peer index in range");
                Choice::det(Op::Read(peer.into()))
            }
            NState::WriteBack { old, new } => {
                if self.always_write {
                    // Ablated variant: no retain-coin.
                    Choice::det(Op::Write(pid.into(), *new))
                } else {
                    Choice::coin(
                        // Heads: install the new contents; tails: retain.
                        Op::Write(pid.into(), *new),
                        Op::Write(pid.into(), *old),
                    )
                }
            }
            NState::Decided { .. } => unreachable!("decided processors take no steps"),
        }
    }

    fn transit(
        &self,
        _pid: usize,
        state: &NState,
        op: &Op<NReg>,
        read: Option<&NReg>,
    ) -> Choice<NState> {
        match state {
            NState::Start { input } => {
                let my = NReg {
                    pref: Some(*input),
                    num: 1,
                };
                Choice::det(NState::Reading {
                    my,
                    peer_idx: 0,
                    scan: PhaseScan::start(my),
                })
            }
            NState::Reading { my, peer_idx, scan } => {
                let v = *read.expect("reading phase reads");
                let mut scan = *scan;
                scan.observe(*my, v);
                if *peer_idx + 1 < self.n - 1 {
                    Choice::det(NState::Reading {
                        my: *my,
                        peer_idx: peer_idx + 1,
                        scan,
                    })
                } else {
                    match Self::conclude_scan(*my, scan, self.strict_leader_decide) {
                        PhaseOutcome::Decide(v) => Choice::det(NState::Decided { value: v }),
                        PhaseOutcome::Advance(new) => {
                            Choice::det(NState::WriteBack { old: *my, new })
                        }
                    }
                }
            }
            NState::WriteBack { .. } => {
                let written = match op {
                    Op::Write(_, w) => *w,
                    Op::Read(_) => unreachable!("write-back writes"),
                };
                Choice::det(NState::Reading {
                    my: written,
                    peer_idx: 0,
                    scan: PhaseScan::start(written),
                })
            }
            NState::Decided { .. } => unreachable!("decided processors take no steps"),
        }
    }

    fn decision(&self, state: &NState) -> Option<Val> {
        match state {
            NState::Decided { value } => Some(*value),
            _ => None,
        }
    }

    fn preference(&self, _pid: usize, state: &NState) -> Option<Val> {
        match state {
            NState::Start { input } => Some(*input),
            NState::Reading { my, .. } | NState::WriteBack { old: my, .. } => my.pref,
            NState::Decided { value } => Some(*value),
        }
    }

    fn name(&self) -> String {
        if self.n == 3 {
            "three-processor unbounded (Fig. 2)".into()
        } else {
            format!("{}-processor unbounded (Fig. 2 generalized)", self.n)
        }
    }
}

/// The largest `num` field appearing in a set of final registers — the
/// quantity bounded by Theorem 9 (`P[num = k] ≤ (3/4)^k`).
pub fn max_num(regs: &[NReg]) -> u64 {
    regs.iter().map(|r| r.num).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_sim::{
        CrashPlan, Halt, LaggardFirst, RandomScheduler, RoundRobin, Runner, Solo, SplitKeeper,
        StopWhen,
    };

    fn abc() -> [Val; 3] {
        [Val::A, Val::B, Val::A]
    }

    #[test]
    fn solo_processor_decides_after_two_phases() {
        // P0 alone: writes (a,1); phase 1 reads ⊥s — no decision (others'
        // num 0 is only 1 behind); advances to (a,2) (needs a heads coin);
        // next phase others are 2 behind -> decide a.
        let p = NUnbounded::three();
        let out = Runner::new(&p, &abc(), Solo::new(0))
            .stop_when(StopWhen::PidDecided(0))
            .seed(7)
            .max_steps(10_000)
            .run();
        assert_eq!(out.decisions[0], Some(Val::A));
        assert_eq!(out.steps[1], 0);
        assert_eq!(out.steps[2], 0);
        // 1 initial write + phases of 2 reads + 1 write; tails retries make
        // the exact count coin-dependent but small.
        assert!(out.steps[0] >= 6, "steps {}", out.steps[0]);
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        let p = NUnbounded::three();
        for seed in 0..100 {
            let out = Runner::new(&p, &[Val::B, Val::B, Val::B], RandomScheduler::new(seed))
                .seed(seed)
                .run();
            assert_eq!(out.agreement(), Some(Val::B), "seed {seed}");
            assert!(out.nontrivial());
        }
    }

    #[test]
    fn mixed_inputs_consistent_across_seeds_and_adversaries() {
        let p = NUnbounded::three();
        for seed in 0..300 {
            let out = Runner::new(&p, &abc(), RandomScheduler::new(seed))
                .seed(seed ^ 0xBEEF)
                .max_steps(1_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "seed {seed}");
            assert!(out.consistent(), "seed {seed}");
            assert!(out.nontrivial(), "seed {seed}");
        }
        for seed in 0..100 {
            let out = Runner::new(&p, &abc(), SplitKeeper::new())
                .seed(seed)
                .max_steps(1_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "split-keeper seed {seed}");
            assert!(out.consistent());
        }
        for seed in 0..100 {
            let out = Runner::new(&p, &abc(), LaggardFirst::new())
                .seed(seed)
                .max_steps(1_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "laggard seed {seed}");
            assert!(out.consistent());
        }
    }

    #[test]
    fn generalization_holds_for_larger_n() {
        for n in [2usize, 4, 5, 6] {
            let p = NUnbounded::new(n);
            let inputs: Vec<Val> = (0..n).map(|i| Val((i % 2) as u64)).collect();
            for seed in 0..100 {
                let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                    .seed(seed)
                    .max_steps(2_000_000)
                    .run();
                assert_eq!(out.halt, Halt::Done, "n={n} seed={seed}");
                assert!(out.consistent(), "n={n} seed={seed}");
                assert!(out.nontrivial(), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn tolerates_n_minus_one_crashes() {
        let p = NUnbounded::new(4);
        let inputs = [Val::A, Val::B, Val::A, Val::B];
        for seed in 0..50 {
            // Crash P1..P3 early at staggered adversarial points.
            let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                .seed(seed)
                .crashes(CrashPlan::none().crash(1, 1).crash(2, 5).crash(3, 9))
                .max_steps(1_000_000)
                .run();
            assert!(out.decisions[0].is_some(), "survivor stuck, seed {seed}");
            assert!(out.consistent());
            assert!(out.nontrivial());
        }
    }

    #[test]
    fn num_fields_stay_small_in_practice() {
        // Theorem 9 shape: large num values are geometrically rare.
        let p = NUnbounded::three();
        let mut max_seen = 0;
        for seed in 0..500 {
            let out = Runner::new(&p, &abc(), RandomScheduler::new(seed))
                .seed(seed)
                .run();
            max_seen = max_seen.max(max_num(&out.final_regs));
        }
        assert!(max_seen < 40, "max num {max_seen} suspiciously large");
    }

    #[test]
    fn conclude_decides_on_unanimous_prefs() {
        let a = |num| NReg {
            pref: Some(Val::A),
            num,
        };
        assert_eq!(
            NUnbounded::conclude(a(3), &[a(1), a(7)], false),
            PhaseOutcome::Decide(Val::A)
        );
    }

    #[test]
    fn conclude_decides_on_gap_two_leader() {
        let r = |p, num| NReg { pref: Some(p), num };
        // Leader at 5 with pref b, others at ≤ 3: decide b.
        assert_eq!(
            NUnbounded::conclude(r(Val::B, 5), &[r(Val::A, 3), r(Val::A, 2)], false),
            PhaseOutcome::Decide(Val::B)
        );
        // Gap of only 1: no decision; leader keeps its pref, advances.
        assert_eq!(
            NUnbounded::conclude(r(Val::B, 5), &[r(Val::A, 4), r(Val::A, 2)], false),
            PhaseOutcome::Advance(r(Val::B, 6))
        );
    }

    #[test]
    fn conclude_adopts_unanimous_leader_pref() {
        let r = |p, num| NReg { pref: Some(p), num };
        // Two leaders at 4 both prefer a; the phase owner at 3 adopts a.
        assert_eq!(
            NUnbounded::conclude(r(Val::B, 3), &[r(Val::A, 4), r(Val::A, 4)], false),
            PhaseOutcome::Advance(r(Val::A, 4))
        );
    }

    #[test]
    fn conclude_keeps_own_pref_on_split_leaders() {
        let r = |p, num| NReg { pref: Some(p), num };
        assert_eq!(
            NUnbounded::conclude(r(Val::B, 4), &[r(Val::A, 4), r(Val::A, 2)], false),
            PhaseOutcome::Advance(r(Val::B, 5))
        );
    }

    #[test]
    fn conclude_ignores_bot_registers_for_decision_one() {
        // Peer registers still ⊥: not "all prefs equal".
        let my = NReg {
            pref: Some(Val::A),
            num: 1,
        };
        assert_eq!(
            NUnbounded::conclude(my, &[NReg::BOT, NReg::BOT], false),
            PhaseOutcome::Advance(NReg {
                pref: Some(Val::A),
                num: 2
            })
        );
    }

    #[test]
    fn bot_peers_two_behind_allow_decision() {
        // Own num 2, ⊥ peers at 0: gap-2 rule fires (wait-freedom).
        let my = NReg {
            pref: Some(Val::A),
            num: 2,
        };
        assert_eq!(
            NUnbounded::conclude(my, &[NReg::BOT, NReg::BOT], false),
            PhaseOutcome::Decide(Val::A)
        );
    }

    /// The pre-refactor end-of-phase rule, materializing `all`/`leaders`
    /// vectors — kept as the oracle for the alloc-free scan fold.
    fn conclude_reference(my: NReg, seen: &[NReg], strict: bool) -> PhaseOutcome {
        let all: Vec<NReg> = std::iter::once(my).chain(seen.iter().copied()).collect();
        let maxnum = all.iter().map(|r| r.num).max().expect("non-empty");
        let leaders: Vec<NReg> = all.iter().copied().filter(|r| r.num == maxnum).collect();
        let leader_pref = leaders[0].pref;
        let leaders_unanimous = leaders.iter().all(|r| r.pref == leader_pref);
        let all_same = all.iter().all(|r| r.pref == all[0].pref);
        if all_same {
            if let Some(v) = all[0].pref {
                return PhaseOutcome::Decide(v);
            }
        }
        if leaders_unanimous && (!strict || my.num == maxnum) {
            if let Some(v) = leader_pref {
                let others_far_behind = all
                    .iter()
                    .filter(|r| r.num != maxnum)
                    .all(|r| r.num + 2 <= maxnum);
                if others_far_behind {
                    return PhaseOutcome::Decide(v);
                }
            }
        }
        let newpref = if leaders_unanimous && leader_pref.is_some() {
            leader_pref
        } else {
            my.pref
        };
        PhaseOutcome::Advance(NReg {
            pref: newpref,
            num: my.num + 1,
        })
    }

    #[test]
    fn scan_fold_matches_vector_reference_exhaustively() {
        // Every (pref, num) register over prefs {⊥, a, b} × nums {0..5},
        // phase owner plus two peers, both strictness modes — the scan fold
        // must agree with the materializing reference everywhere.
        let regs: Vec<NReg> = [None, Some(Val::A), Some(Val::B)]
            .into_iter()
            .flat_map(|pref| (0..5u64).map(move |num| NReg { pref, num }))
            .collect();
        for &my in &regs {
            for &p1 in &regs {
                for &p2 in &regs {
                    for strict in [false, true] {
                        assert_eq!(
                            NUnbounded::conclude(my, &[p1, p2], strict),
                            conclude_reference(my, &[p1, p2], strict),
                            "my={my:?} p1={p1:?} p2={p2:?} strict={strict}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn literal_fig2_rule_admits_inconsistency() {
        // The pinned counterexample to the extended abstract's literal
        // Figure 2 (see the type-level docs): under a plain random
        // scheduler, a laggard with temporally-incoherent reads decides on
        // a stale gap-2 leader while the two climbers decide the other way.
        // Found by random search; the seed pins the interleaving.
        let p = NUnbounded::literal_fig2(3);
        let inputs = [Val(0), Val(1), Val(0)];
        let out = Runner::new(&p, &inputs, RandomScheduler::new(4235))
            .seed(4235 ^ 0x5CA1E)
            .max_steps(10_000_000)
            .run();
        assert!(
            !out.consistent(),
            "expected the literal Fig. 2 rule to split: {:?}",
            out.decisions
        );
    }

    #[test]
    fn corrected_rule_fixes_the_pinned_counterexample() {
        let p = NUnbounded::three();
        let inputs = [Val(0), Val(1), Val(0)];
        let out = Runner::new(&p, &inputs, RandomScheduler::new(4235))
            .seed(4235 ^ 0x5CA1E)
            .max_steps(10_000_000)
            .run();
        assert!(out.consistent(), "{:?}", out.decisions);
        assert!(out.nontrivial());
    }

    #[test]
    fn round_robin_schedule_terminates_quickly() {
        let p = NUnbounded::three();
        let out = Runner::new(&p, &abc(), RoundRobin::new())
            .seed(3)
            .max_steps(100_000)
            .run();
        assert_eq!(out.halt, Halt::Done);
        assert!(out.total_steps < 1_000);
    }
}
