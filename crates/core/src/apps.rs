//! Small applications of coordination, mirroring the paper's motivation.
//!
//! §1 of the paper: "the mutual exclusion problem can be formulated in our
//! context as choosing the identity of a processor who is to enter the
//! critical region. In this case, the input value of every processor in the
//! trial region is simply its own identity." [`elect_leader`] is exactly
//! that formulation, and [`MutexLog`] validates the mutual-exclusion safety
//! property over a sequence of such elections.

use cil_sim::{Adversary, Protocol, RunOutcome, Runner, Val};

/// Runs one leader election: every processor proposes its own identity and
/// the coordination protocol picks the winner.
///
/// Returns the elected processor id and the raw outcome. The election is
/// valid by nontriviality (the winner is some *participating* processor)
/// and unique by consistency.
///
/// # Panics
///
/// Panics if the run does not reach agreement within `max_steps` (the
/// randomized protocols make this astronomically unlikely for sensible
/// budgets).
pub fn elect_leader<P, A>(
    protocol: &P,
    adversary: A,
    seed: u64,
    max_steps: u64,
) -> (usize, RunOutcome<P>)
where
    P: Protocol,
    A: Adversary<P>,
{
    let n = protocol.processes();
    let inputs: Vec<Val> = (0..n).map(|i| Val(i as u64)).collect();
    let out = Runner::new(protocol, &inputs, adversary)
        .seed(seed)
        .max_steps(max_steps)
        .run();
    let winner = out
        .agreement()
        .expect("election did not reach agreement within the step budget");
    assert!((winner.0 as usize) < n, "winner must be a participant");
    (winner.0 as usize, out)
}

/// A checker for the mutual-exclusion safety property across rounds of
/// elections: at most one processor per round enters the critical section,
/// and it must be a processor that actually competed.
#[derive(Debug, Default)]
pub struct MutexLog {
    entries: Vec<(u64, usize)>, // (round, pid)
}

impl MutexLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `pid` entered the critical section in `round`.
    pub fn enter(&mut self, round: u64, pid: usize) {
        self.entries.push((round, pid));
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Verifies mutual exclusion: no round has two different entrants.
    pub fn mutual_exclusion_holds(&self) -> bool {
        use std::collections::HashMap;
        let mut by_round: HashMap<u64, usize> = HashMap::new();
        for &(round, pid) in &self.entries {
            match by_round.insert(round, pid) {
                Some(prev) if prev != pid => return false,
                _ => {}
            }
        }
        true
    }
}

/// A replicated command log built from repeated coordination instances —
/// the canonical downstream use of consensus (state-machine replication in
/// miniature).
///
/// Each *slot* of the log runs one fresh instance of the given coordination
/// protocol; every processor proposes the next command from its own queue,
/// and the instance's agreed value becomes the slot's committed entry.
/// Consistency of each instance makes all replicas' logs identical;
/// nontriviality makes every committed entry a genuinely proposed command.
#[derive(Debug)]
pub struct ReplicatedLog {
    committed: Vec<Val>,
}

impl ReplicatedLog {
    /// Builds a log of `slots` entries over protocol instances produced by
    /// `protocol` (one reusable instance is fine — protocols are pure) with
    /// per-slot adversaries from `adversary` and per-processor command
    /// queues (`commands[pid][slot]`).
    ///
    /// # Panics
    ///
    /// Panics if a slot fails to reach agreement within `max_steps` (the
    /// protocols make this vanishingly unlikely), or if any command queue
    /// is shorter than `slots`.
    pub fn build<P, A>(
        protocol: &P,
        commands: &[Vec<Val>],
        slots: usize,
        mut adversary: impl FnMut(u64) -> A,
        max_steps: u64,
    ) -> Self
    where
        P: Protocol,
        A: Adversary<P>,
    {
        let n = protocol.processes();
        assert_eq!(commands.len(), n, "one command queue per processor");
        let mut committed = Vec::with_capacity(slots);
        for slot in 0..slots {
            let inputs: Vec<Val> = (0..n)
                .map(|pid| {
                    *commands[pid]
                        .get(slot)
                        .expect("command queue long enough for every slot")
                })
                .collect();
            let out = Runner::new(protocol, &inputs, adversary(slot as u64))
                .seed(slot as u64 ^ 0x10C)
                .max_steps(max_steps)
                .run();
            assert!(out.consistent(), "slot {slot}: replicas diverged");
            assert!(out.nontrivial(), "slot {slot}: committed a non-command");
            let v = out
                .agreement()
                .expect("slot did not commit within the step budget");
            committed.push(v);
        }
        ReplicatedLog { committed }
    }

    /// The committed entries, in slot order.
    pub fn entries(&self) -> &[Val] {
        &self.committed
    }

    /// Number of committed slots.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Verifies that every committed entry was proposed by some processor
    /// for that slot.
    pub fn every_entry_was_proposed(&self, commands: &[Vec<Val>]) -> bool {
        self.committed
            .iter()
            .enumerate()
            .all(|(slot, v)| commands.iter().any(|q| q.get(slot) == Some(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::n_unbounded::NUnbounded;
    use crate::two::TwoProcessor;
    use cil_sim::RandomScheduler;

    #[test]
    fn two_processor_election_names_a_participant() {
        let p = TwoProcessor::new();
        for seed in 0..50 {
            let (winner, out) = elect_leader(&p, RandomScheduler::new(seed), seed, 100_000);
            assert!(winner < 2);
            assert!(out.consistent());
        }
    }

    #[test]
    fn three_processor_election_is_unique_per_round() {
        let p = NUnbounded::three();
        let mut log = MutexLog::new();
        for round in 0..30 {
            let (winner, _) = elect_leader(&p, RandomScheduler::new(round), round, 1_000_000);
            log.enter(round, winner);
        }
        assert_eq!(log.len(), 30);
        assert!(log.mutual_exclusion_holds());
    }

    #[test]
    fn mutex_log_detects_violations() {
        let mut log = MutexLog::new();
        log.enter(0, 1);
        log.enter(0, 2);
        assert!(!log.mutual_exclusion_holds());
    }

    #[test]
    fn mutex_log_allows_repeated_entries_by_the_same_winner() {
        let mut log = MutexLog::new();
        log.enter(0, 1);
        log.enter(0, 1);
        log.enter(1, 2);
        assert!(log.mutual_exclusion_holds());
    }

    #[test]
    fn replicated_log_commits_proposed_commands_in_order() {
        let p = NUnbounded::three();
        let commands: Vec<Vec<Val>> = (0..3)
            .map(|pid| (0..10).map(|s| Val(pid * 100 + s)).collect())
            .collect();
        let log = ReplicatedLog::build(
            &p,
            &commands,
            10,
            |slot| RandomScheduler::new(slot * 7 + 1),
            1_000_000,
        );
        assert_eq!(log.len(), 10);
        assert!(log.every_entry_was_proposed(&commands));
    }

    #[test]
    fn replicated_log_with_unanimous_queues_is_that_queue() {
        let p = TwoProcessor::new();
        let q: Vec<Val> = (0..5).map(Val).collect();
        let commands = vec![q.clone(), q.clone()];
        let log = ReplicatedLog::build(&p, &commands, 5, RandomScheduler::new, 100_000);
        assert_eq!(log.entries(), &q[..]);
    }

    #[test]
    fn replicated_log_survives_adaptive_scheduling() {
        let p = NUnbounded::three();
        let commands: Vec<Vec<Val>> = (0..3)
            .map(|pid| (0..6).map(|s| Val(pid + 2 * s)).collect())
            .collect();
        let log =
            ReplicatedLog::build(&p, &commands, 6, |_| cil_sim::SplitKeeper::new(), 1_000_000);
        assert_eq!(log.len(), 6);
        assert!(log.every_entry_was_proposed(&commands));
    }

    #[test]
    #[should_panic(expected = "command queue")]
    fn short_command_queue_is_rejected() {
        let p = TwoProcessor::new();
        let commands = vec![vec![Val(1)], vec![Val(2)]];
        let _ = ReplicatedLog::build(&p, &commands, 3, RandomScheduler::new, 100_000);
    }
}
