//! Deterministic two-processor protocols — the victims of Theorem 4.
//!
//! §3 of the paper proves that **no** deterministic protocol solves
//! coordination, however clever and however asymmetric: every consistent,
//! nontrivial deterministic protocol has an infinite schedule along which
//! every configuration stays bivalent and nobody ever decides.
//!
//! [`DetTwo`] is the Figure 1 machine with the coin replaced by a
//! deterministic [`DetRule`]. Each rule preserves Figure 1's decision logic,
//! so the Theorem 6 consistency argument applies verbatim — these protocols
//! never err. What each of them loses is termination, exactly as Theorem 4
//! predicts; the `cil-mc` crate *constructs* the non-terminating schedule for
//! each of them mechanically (Lemma 2 → bivalent initial configuration,
//! Lemma 3 → bivalence-preserving extension).

use cil_registers::{ReaderSet, RegId, RegisterSpec};
use cil_sim::{Choice, Op, Protocol, Val};

/// The deterministic replacement for Figure 1's coin at line (2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetRule {
    /// Always adopt the value just read (the "copycat").
    AlwaysAdopt,
    /// Always rewrite the own value (the "stubborn").
    AlwaysKeep,
    /// Adopt the larger of the two values (a symmetric tie-break attempt).
    AdoptIfGreater,
    /// Alternate between keeping and adopting on successive conflicts
    /// (a time-varying tie-break attempt).
    Alternate,
}

impl DetRule {
    /// The value written at line (2) for this rule. `flag` is the
    /// per-processor alternation bit (used by [`DetRule::Alternate`]).
    fn written(self, mine: Val, seen: Val, flag: bool) -> Val {
        match self {
            DetRule::AlwaysAdopt => seen,
            DetRule::AlwaysKeep => mine,
            DetRule::AdoptIfGreater => {
                if seen > mine {
                    seen
                } else {
                    mine
                }
            }
            DetRule::Alternate => {
                if flag {
                    seen
                } else {
                    mine
                }
            }
        }
    }

    /// All rules, for sweeps.
    pub const ALL: [DetRule; 4] = [
        DetRule::AlwaysAdopt,
        DetRule::AlwaysKeep,
        DetRule::AdoptIfGreater,
        DetRule::Alternate,
    ];
}

impl std::fmt::Display for DetRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DetRule::AlwaysAdopt => "always-adopt",
            DetRule::AlwaysKeep => "always-keep",
            DetRule::AdoptIfGreater => "adopt-if-greater",
            DetRule::Alternate => "alternate",
        };
        f.write_str(s)
    }
}

/// Internal state: Figure 1's program counter plus the alternation bit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DetState {
    /// About to write the input (line 0).
    Start {
        /// The processor's input value.
        input: Val,
    },
    /// About to read the other register (line 1).
    AboutToRead {
        /// Own register contents.
        mine: Val,
        /// Alternation bit for [`DetRule::Alternate`].
        flag: bool,
    },
    /// About to write deterministically (line 2).
    AboutToWrite {
        /// Own register contents.
        mine: Val,
        /// The disagreeing value just read.
        seen: Val,
        /// Alternation bit.
        flag: bool,
    },
    /// Decision state.
    Decided {
        /// The irrevocable output value.
        value: Val,
    },
}

/// A deterministic variant of the two-processor protocol.
///
/// The two processors may even use *different* rules (the paper's
/// impossibility result does not assume symmetric protocols); construct with
/// [`DetTwo::asymmetric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetTwo {
    rules: [DetRule; 2],
}

impl DetTwo {
    /// Both processors use `rule`.
    pub fn new(rule: DetRule) -> Self {
        DetTwo {
            rules: [rule, rule],
        }
    }

    /// Each processor uses its own rule.
    pub fn asymmetric(rule0: DetRule, rule1: DetRule) -> Self {
        DetTwo {
            rules: [rule0, rule1],
        }
    }

    /// The rules in use.
    pub fn rules(&self) -> [DetRule; 2] {
        self.rules
    }
}

impl Protocol for DetTwo {
    type State = DetState;
    type Reg = Option<Val>;

    fn processes(&self) -> usize {
        2
    }

    fn registers(&self) -> Vec<RegisterSpec<Option<Val>>> {
        // Same 2-bit 1W1R layout as the randomized Fig. 1 protocol: the
        // domain {⊥, a, b} packs to {0, 1, 2}.
        vec![
            RegisterSpec::new(RegId(0), "r0", 0.into(), ReaderSet::only([1.into()]), None)
                .with_width(2),
            RegisterSpec::new(RegId(1), "r1", 1.into(), ReaderSet::only([0.into()]), None)
                .with_width(2),
        ]
    }

    fn init(&self, _pid: usize, input: Val) -> DetState {
        DetState::Start { input }
    }

    fn choose(&self, pid: usize, state: &DetState) -> Choice<Op<Option<Val>>> {
        match state {
            DetState::Start { input } => Choice::det(Op::Write(RegId(pid), Some(*input))),
            DetState::AboutToRead { .. } => Choice::det(Op::Read(RegId(1 - pid))),
            DetState::AboutToWrite { mine, seen, flag } => {
                let v = self.rules[pid].written(*mine, *seen, *flag);
                Choice::det(Op::Write(RegId(pid), Some(v)))
            }
            DetState::Decided { .. } => unreachable!("decided processors take no steps"),
        }
    }

    fn transit(
        &self,
        _pid: usize,
        state: &DetState,
        op: &Op<Option<Val>>,
        read: Option<&Option<Val>>,
    ) -> Choice<DetState> {
        match state {
            DetState::Start { input } => Choice::det(DetState::AboutToRead {
                mine: *input,
                flag: false,
            }),
            DetState::AboutToRead { mine, flag } => match read.expect("line 1 reads") {
                None => Choice::det(DetState::Decided { value: *mine }),
                Some(seen) if seen == mine => Choice::det(DetState::Decided { value: *mine }),
                Some(seen) => Choice::det(DetState::AboutToWrite {
                    mine: *mine,
                    seen: *seen,
                    flag: *flag,
                }),
            },
            DetState::AboutToWrite { flag, .. } => {
                let written = match op {
                    Op::Write(_, Some(v)) => *v,
                    _ => unreachable!("line 2 writes a concrete value"),
                };
                Choice::det(DetState::AboutToRead {
                    mine: written,
                    flag: !*flag,
                })
            }
            DetState::Decided { .. } => unreachable!("decided processors take no steps"),
        }
    }

    fn decision(&self, state: &DetState) -> Option<Val> {
        match state {
            DetState::Decided { value } => Some(*value),
            _ => None,
        }
    }

    fn preference(&self, _pid: usize, state: &DetState) -> Option<Val> {
        Some(match state {
            DetState::Start { input } => *input,
            DetState::AboutToRead { mine, .. } | DetState::AboutToWrite { mine, .. } => *mine,
            DetState::Decided { value } => *value,
        })
    }

    fn name(&self) -> String {
        format!(
            "deterministic two-processor ({} / {})",
            self.rules[0], self.rules[1]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_sim::{FixedSchedule, Halt, RandomScheduler, Runner, Solo, StopWhen};

    #[test]
    fn every_rule_is_consistent_under_random_schedules() {
        for rule in DetRule::ALL {
            let p = DetTwo::new(rule);
            for seed in 0..200 {
                let out = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(seed))
                    .max_steps(10_000)
                    .run();
                assert!(out.consistent(), "{rule} inconsistent at seed {seed}");
                assert!(out.nontrivial(), "{rule} trivial at seed {seed}");
            }
        }
    }

    #[test]
    fn solo_runs_always_decide_the_own_input() {
        for rule in DetRule::ALL {
            let p = DetTwo::new(rule);
            let out = Runner::new(&p, &[Val::A, Val::B], Solo::new(1))
                .stop_when(StopWhen::PidDecided(1))
                .run();
            assert_eq!(out.decisions[1], Some(Val::B), "{rule}");
        }
    }

    #[test]
    fn always_keep_deadlocks_on_disagreement() {
        // Both stubborn: registers stay a/b forever; nobody ever decides.
        let p = DetTwo::new(DetRule::AlwaysKeep);
        let out = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(1))
            .max_steps(5_000)
            .run();
        assert_eq!(out.halt, Halt::MaxSteps);
        assert!(out.decisions.iter().all(Option::is_none));
    }

    #[test]
    fn always_adopt_swaps_forever_under_lockstep_schedule() {
        // The classic livelock: strict alternation write-read-write-read
        // makes the copycats swap values forever.
        let p = DetTwo::new(DetRule::AlwaysAdopt);
        let lockstep: Vec<usize> = (0..4_000).map(|i| i % 2).collect();
        let out = Runner::new(&p, &[Val::A, Val::B], FixedSchedule::new(lockstep))
            .max_steps(4_000)
            .run();
        assert_eq!(out.halt, Halt::MaxSteps, "lockstep should livelock");
        assert!(out.decisions.iter().all(Option::is_none));
    }

    #[test]
    fn adopt_if_greater_starves_the_loser_after_a_decision() {
        // P0 decides `a` solo; P1 (holding the greater value b) then keeps
        // b forever against the frozen r0 = a: non-termination by schedule.
        let p = DetTwo::new(DetRule::AdoptIfGreater);
        let out = Runner::new(&p, &[Val::A, Val::B], Solo::new(0))
            .max_steps(5_000)
            .run();
        assert_eq!(out.decisions[0], Some(Val::A));
        assert_eq!(out.decisions[1], None, "P1 must spin forever");
        assert_eq!(out.halt, Halt::MaxSteps);
        assert!(out.consistent());
    }

    #[test]
    fn asymmetric_rules_are_supported() {
        let p = DetTwo::asymmetric(DetRule::AlwaysAdopt, DetRule::AlwaysKeep);
        assert_eq!(p.rules(), [DetRule::AlwaysAdopt, DetRule::AlwaysKeep]);
        for seed in 0..100 {
            let out = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(seed))
                .max_steps(10_000)
                .run();
            assert!(out.consistent());
        }
    }

    #[test]
    fn all_choices_are_deterministic() {
        // The Theorem 4 machinery requires single-branch choices everywhere.
        let p = DetTwo::new(DetRule::Alternate);
        let s = DetState::AboutToWrite {
            mine: Val::A,
            seen: Val::B,
            flag: true,
        };
        assert!(p.choose(0, &s).is_det());
        assert!(p.choose(1, &s).is_det());
    }
}
