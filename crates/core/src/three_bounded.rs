//! The three-processor protocol with **bounded** registers (§6, Figure 3).
//!
//! §5's protocol needs unbounded `num` fields to maintain a global ordering
//! of the processors. §6 replaces the counter with a **circular** one over
//! `1..=9` and keeps only a *local* (non-transitive) ordering, which turns
//! out to suffice. Every register holds one of finitely many values — the
//! paper's headline "bounded size single reader single writer registers ...
//! implementable in existing technology".
//!
//! # The paper's design, rule by rule
//!
//! * Register values are `[m, x]` with counter `m ∈ 1..=9` and value field
//!   `x ∈ {a, b}`; at the *boundary* counters `3, 6, 9` there are additional
//!   `[m, pref-a] / [m, pref-b]` states; plus terminal `[dec-a] / [dec-b]`;
//!   plus a third *history* field (see T3). Counters are circularly ordered
//!   `[1] < [2] < … < [9] < [1] < …`, and the protocol maintains the
//!   invariant that all live registers lie inside one of the overlapping
//!   windows `([8..3]), ([2..6]), ([5..9])`, so "ahead/behind" is locally
//!   well defined (here: signed circular distance in `−4..=4`).
//! * Each **phase**: read the two peer registers — re-reading the first one
//!   if it was ahead of the second, so *the processor ahead is read last*
//!   (the paper: "the protocol works only if the value of the processor
//!   ahead is read last") — then compute a new register value and write it
//!   with probability 1/2, retaining the old value otherwise.
//! * **A₃ movement** (value states `[m, x]`): advance the counter by one;
//!   the new value field follows conditions c1/c2 of the paper:
//!   c1 — some leading processor has value or pref `a` and none has
//!   `pref-b` → move with `a`; c2 — some leading processor has `pref-b`, or
//!   all leading processors have `b` → move with `b` (and the symmetric
//!   rules with `a`/`b` exchanged). Leaders are the registers at the maximal
//!   circular position; ⊥ registers count as position 1 with no value.
//! * **A₂ embedding**: when a leading processor reaches a boundary (`3`, `6`
//!   or `9`) and the last processor is ≥ 2 steps behind, it moves to the
//!   `pref` state and runs the two-processor protocol with the other leader
//!   (they are at most 1 apart): read the partner's value; equal → decide;
//!   different → coin between keeping and adopting (Fig. 1's line (2)).
//!   When the third processor catches up to within 1 step, revert to the
//!   value state and resume A₃.
//! * **T1**: a processor that reads `[dec-x]` moves to `[dec-x]` (and
//!   decides `x`).
//! * **T2**: a processor in a value state that sees both other processors at
//!   least 2 steps behind writes `[dec-x]` and decides its value `x`.
//! * **T3**: each register's third field records, at every *section exit*
//!   (advancing `3→4`, `6→7` or `9→1`), whether the processor held only `a`
//!   ("A"), only `b` ("B"), or both ("C") inside the section just completed.
//!   If all three processors are out of a section with history "A" — we
//!   additionally require, conservatively, that all three *current* values
//!   are `a` — decide `a` (symmetrically for `b`). This is the rule that
//!   terminates the "unanimous lockstep" runs which T2 can never catch.
//!
//! # Reconstruction caveats
//!
//! The extended abstract specifies Figure 3 through the conditions c1–c5 and
//! T1–T3 but omits the diagram's full arrow set; this module is a faithful
//! reconstruction of the prose with two conservative choices, both noted
//! above: (i) T3 additionally requires current unanimity, (ii) a processor
//! in a `pref` state whose peers are both still ⊥ decides its preference
//! (the A₂ partner "register" is ⊥, which in Fig. 1 means decide). Bounded
//! consistency is machine-checked in `cil-mc` and hammered by adversarial
//! Monte Carlo here and in EXP-6.

use cil_registers::{ReaderSet, RegisterSpec};
use cil_sim::{Choice, Op, Protocol, Val};

/// The value/pref tag of a live register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// A value state `[m, x]`.
    V(Val),
    /// A boundary preference state `[m, pref-x]` (A₂ embedding).
    Pref(Val),
}

impl Tag {
    /// The underlying value `x`.
    pub fn value(self) -> Val {
        match self {
            Tag::V(v) | Tag::Pref(v) => v,
        }
    }

    /// Whether this is a `pref` state.
    pub fn is_pref(self) -> bool {
        matches!(self, Tag::Pref(_))
    }
}

/// The third register field (T3): what the processor held during the last
/// *completed* section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Held only `a`.
    A,
    /// Held only `b`.
    B,
    /// Held both (or no section completed yet — the initial value).
    C,
}

/// A live (non-decided) register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunReg {
    /// Circular counter `1..=9`.
    pub ctr: u8,
    /// Value or preference tag.
    pub tag: Tag,
    /// T3 history field.
    pub hist: Hist,
}

/// Contents of one shared register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BReg {
    /// ⊥ — the owner has not taken its first step.
    Bot,
    /// A live protocol value.
    Run(RunReg),
    /// Terminal `[dec-x]`.
    Dec(Val),
}

/// Boundary counters where the A₂ embedding lives.
pub const BOUNDARIES: [u8; 3] = [3, 6, 9];

/// Signed circular distance: how far `x` is ahead of `y`, in `−4..=4`.
/// Well defined while the window invariant (spread ≤ 4) holds.
pub fn ahead(x: u8, y: u8) -> i8 {
    let d = (i16::from(x) + 9 - i16::from(y)) % 9;
    if d <= 4 {
        d as i8
    } else {
        (d - 9) as i8
    }
}

fn wrap_next(ctr: u8) -> u8 {
    if ctr == 9 {
        1
    } else {
        ctr + 1
    }
}

fn is_boundary(ctr: u8) -> bool {
    BOUNDARIES.contains(&ctr)
}

/// The position a peer register occupies for ordering purposes.
/// ⊥ counts as the starting position 1; decided registers have none.
fn pos_of(reg: &BReg) -> Option<u8> {
    match reg {
        BReg::Bot => Some(1),
        BReg::Run(r) => Some(r.ctr),
        BReg::Dec(_) => None,
    }
}

/// Phase-reading stage: which peer reads have completed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stage {
    /// About to read the first peer (`pid + 1`).
    First,
    /// About to read the second peer (`pid + 2`).
    Second {
        /// The first peer's value.
        first: BReg,
    },
    /// First peer was ahead of the second: re-reading it so the processor
    /// ahead is read last.
    ReRead {
        /// The second peer's value.
        second: BReg,
    },
}

/// Internal state of one processor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BState {
    /// About to write the initial `[1, input]`.
    Start {
        /// The processor's input value.
        input: Val,
    },
    /// Mid-phase: reading peers.
    Phase {
        /// Own register contents.
        my: RunReg,
        /// Values held since the last section exit (T3 bookkeeping).
        saw_a: bool,
        /// See `saw_a`.
        saw_b: bool,
        /// Read progress.
        stage: Stage,
    },
    /// About to write the terminal `[dec-v]`.
    WriteDec {
        /// The decision value.
        v: Val,
        /// Own register contents (unused after the decision, kept for
        /// debugging).
        my: RunReg,
    },
    /// End of phase: about to write `new` (heads) or retain `my` (tails).
    WriteBack {
        /// Current register contents.
        my: RunReg,
        /// Computed next contents.
        new: RunReg,
        /// Whether installing `new` exits a section (resets T3 tracking).
        crossed: bool,
        /// T3 tracking.
        saw_a: bool,
        /// T3 tracking.
        saw_b: bool,
    },
    /// Decision state.
    Decided {
        /// The irrevocable output value.
        value: Val,
    },
}

/// Outcome of the end-of-phase computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Decide(Val),
    Move { new: RunReg, crossed: bool },
}

/// Ablation switches for [`ThreeBounded`], used by the EXP-10 ablation
/// study to demonstrate *why* each of the paper's ingredients is there.
/// The default is the faithful protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedOptions {
    /// Re-read the first peer when it was ahead of the second ("the value
    /// of the processor ahead is read last" — the paper says the protocol
    /// works *only if* this holds).
    pub reread_ahead_last: bool,
    /// Enable the T3 history rule (without it, unanimous lockstep runs can
    /// only terminate through coin-drift into T2).
    pub t3: bool,
    /// The T2/A₂ lead gap (paper: 2). Setting 1 lets a processor decide on
    /// a lead its peers may erase — expected to break consistency.
    pub decide_gap: i8,
}

impl Default for BoundedOptions {
    fn default() -> Self {
        BoundedOptions {
            reread_ahead_last: true,
            t3: true,
            decide_gap: 2,
        }
    }
}

/// The §6 bounded-register protocol for exactly three processors over the
/// binary value set `{a, b}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreeBounded {
    opts: BoundedOptions,
}

impl ThreeBounded {
    /// Creates the faithful protocol.
    pub fn new() -> Self {
        ThreeBounded::default()
    }

    /// Creates an ablated variant (for the EXP-10 study; see
    /// [`BoundedOptions`]).
    pub fn with_options(opts: BoundedOptions) -> Self {
        ThreeBounded { opts }
    }

    /// The options in effect.
    pub fn options(&self) -> BoundedOptions {
        self.opts
    }

    fn other(v: Val) -> Val {
        if v == Val::A {
            Val::B
        } else {
            Val::A
        }
    }

    fn summarize(saw_a: bool, saw_b: bool) -> Hist {
        match (saw_a, saw_b) {
            (true, false) => Hist::A,
            (false, true) => Hist::B,
            _ => Hist::C,
        }
    }

    /// c1/c2 of the paper: the value carried by an A₃ advance, given the
    /// mover's current value `v` and the leader tags.
    fn advance_value(v: Val, leader_tags: &[Tag]) -> Val {
        let o = Self::other(v);
        let c1 = leader_tags.iter().any(|t| t.value() == v)
            && !leader_tags.iter().any(|t| t.is_pref() && t.value() == o);
        if c1 {
            return v;
        }
        let c2 = leader_tags.iter().any(|t| t.is_pref() && t.value() == o)
            || (!leader_tags.is_empty() && leader_tags.iter().all(|t| *t == Tag::V(o)));
        if c2 {
            o
        } else {
            v
        }
    }

    /// The end-of-phase computation for a processor holding `my`, having
    /// read `peers` (with the ahead one read last — see [`Stage`]).
    fn compute(
        opts: BoundedOptions,
        my: &RunReg,
        saw_a: bool,
        saw_b: bool,
        peers: [&BReg; 2],
    ) -> Outcome {
        // T1: adopt any decision seen.
        for p in peers {
            if let BReg::Dec(v) = p {
                return Outcome::Decide(*v);
            }
        }
        let my_val = my.tag.value();
        let peer_pos: Vec<u8> = peers.iter().map(|p| pos_of(p).expect("live")).collect();
        let behind: Vec<i8> = peer_pos.iter().map(|&p| ahead(my.ctr, p)).collect();

        if let Tag::Pref(v) = my.tag {
            // --- A₂ embedding at a boundary ---
            // The laggard caught up to within 1: revert to the value state.
            let laggard_behind = *behind.iter().max().expect("two peers");
            if laggard_behind <= 1 {
                return Outcome::Move {
                    new: RunReg {
                        ctr: my.ctr,
                        tag: Tag::V(v),
                        hist: my.hist,
                    },
                    crossed: false,
                };
            }
            // Partner = the peer at the greater position (the co-leader).
            let partner_idx = if ahead(
                pos_of(peers[0]).expect("live"),
                pos_of(peers[1]).expect("live"),
            ) >= 0
            {
                0
            } else {
                1
            };
            match peers[partner_idx] {
                BReg::Bot => {
                    // Fig. 1: reading ⊥ decides the own preference.
                    Outcome::Decide(v)
                }
                BReg::Run(partner) => {
                    let w = partner.tag.value();
                    if w == v {
                        Outcome::Decide(v)
                    } else {
                        // Fig. 1 line (2): coin between keep and adopt —
                        // realized by the write-back coin (new = adopt).
                        Outcome::Move {
                            new: RunReg {
                                ctr: my.ctr,
                                tag: Tag::Pref(w),
                                hist: my.hist,
                            },
                            crossed: false,
                        }
                    }
                }
                BReg::Dec(_) => unreachable!("handled by T1"),
            }
        } else {
            // --- A₃ movement ---
            // T3 (conservative form: histories all "A"/"B" and currently
            // unanimous).
            let all_runs: Option<Vec<&RunReg>> = if opts.t3 {
                peers
                    .iter()
                    .map(|p| match p {
                        BReg::Run(r) => Some(r),
                        _ => None,
                    })
                    .collect()
            } else {
                None
            };
            if let Some(peer_runs) = all_runs {
                for (h, v) in [(Hist::A, Val::A), (Hist::B, Val::B)] {
                    if my.hist == h
                        && my_val == v
                        && peer_runs.iter().all(|r| r.hist == h && r.tag.value() == v)
                    {
                        return Outcome::Decide(v);
                    }
                }
            }
            // T2: both peers at least `decide_gap` behind (paper: 2).
            if behind.iter().all(|&d| d >= opts.decide_gap) {
                return Outcome::Decide(my_val);
            }
            // Boundary with the last processor ≥ 2 behind: enter A₂.
            let laggard_behind = *behind.iter().max().expect("two peers");
            if is_boundary(my.ctr) && laggard_behind >= opts.decide_gap {
                return Outcome::Move {
                    new: RunReg {
                        ctr: my.ctr,
                        tag: Tag::Pref(my_val),
                        hist: my.hist,
                    },
                    crossed: false,
                };
            }
            // Plain A₃ advance with the c1/c2 value.
            let all_pos: Vec<u8> = std::iter::once(my.ctr)
                .chain(peer_pos.iter().copied())
                .collect();
            // Circular max: the position no other position is ahead of.
            let maxpos = all_pos
                .iter()
                .copied()
                .find(|&c| all_pos.iter().all(|&d| ahead(d, c) <= 0))
                .unwrap_or(my.ctr);
            let mut leader_tags: Vec<Tag> = Vec::new();
            if my.ctr == maxpos {
                leader_tags.push(my.tag);
            }
            for p in peers {
                if let BReg::Run(r) = p {
                    if r.ctr == maxpos {
                        leader_tags.push(r.tag);
                    }
                }
            }
            let newv = Self::advance_value(my_val, &leader_tags);
            let crossed = is_boundary(my.ctr);
            let hist = if crossed {
                Self::summarize(saw_a, saw_b)
            } else {
                my.hist
            };
            Outcome::Move {
                new: RunReg {
                    ctr: wrap_next(my.ctr),
                    tag: Tag::V(newv),
                    hist,
                },
                crossed,
            }
        }
    }
}

impl Protocol for ThreeBounded {
    type State = BState;
    type Reg = BReg;

    fn processes(&self) -> usize {
        3
    }

    fn registers(&self) -> Vec<RegisterSpec<BReg>> {
        // The §6 point: registers are *bounded*. The 75-value alphabet
        // (see `register_alphabet`) packs densely into 7 bits.
        cil_registers::access::per_process_registers(3, BReg::Bot, |i| {
            ReaderSet::only((0..3).filter(|&j| j != i).map(Into::into))
        })
        .into_iter()
        .map(|s| s.with_width(7))
        .collect()
    }

    fn init(&self, _pid: usize, input: Val) -> BState {
        BState::Start { input }
    }

    fn choose(&self, pid: usize, state: &BState) -> Choice<Op<BReg>> {
        match state {
            BState::Start { input } => Choice::det(Op::Write(
                pid.into(),
                BReg::Run(RunReg {
                    ctr: 1,
                    tag: Tag::V(*input),
                    hist: Hist::C,
                }),
            )),
            BState::Phase { stage, .. } => {
                let q = (pid + 1) % 3;
                let r = (pid + 2) % 3;
                match stage {
                    Stage::First | Stage::ReRead { .. } => Choice::det(Op::Read(q.into())),
                    Stage::Second { .. } => Choice::det(Op::Read(r.into())),
                }
            }
            BState::WriteDec { v, .. } => Choice::det(Op::Write(pid.into(), BReg::Dec(*v))),
            BState::WriteBack { my, new, .. } => Choice::coin(
                Op::Write(pid.into(), BReg::Run(*new)),
                Op::Write(pid.into(), BReg::Run(*my)),
            ),
            BState::Decided { .. } => unreachable!("decided processors take no steps"),
        }
    }

    fn transit(
        &self,
        _pid: usize,
        state: &BState,
        op: &Op<BReg>,
        read: Option<&BReg>,
    ) -> Choice<BState> {
        match state {
            BState::Start { input } => Choice::det(BState::Phase {
                my: RunReg {
                    ctr: 1,
                    tag: Tag::V(*input),
                    hist: Hist::C,
                },
                saw_a: *input == Val::A,
                saw_b: *input == Val::B,
                stage: Stage::First,
            }),
            BState::Phase {
                my,
                saw_a,
                saw_b,
                stage,
            } => {
                let v = *read.expect("phase stages read");
                let conclude = |first: BReg, second: BReg| -> BState {
                    match Self::compute(self.opts, my, *saw_a, *saw_b, [&first, &second]) {
                        Outcome::Decide(d) => BState::WriteDec { v: d, my: *my },
                        Outcome::Move { new, crossed } => BState::WriteBack {
                            my: *my,
                            new,
                            crossed,
                            saw_a: *saw_a,
                            saw_b: *saw_b,
                        },
                    }
                };
                match stage {
                    Stage::First => Choice::det(BState::Phase {
                        my: *my,
                        saw_a: *saw_a,
                        saw_b: *saw_b,
                        stage: Stage::Second { first: v },
                    }),
                    Stage::Second { first } => {
                        // Re-read the first peer if it is ahead of the
                        // second (the ahead processor must be read last).
                        let needs_reread = self.opts.reread_ahead_last
                            && match (pos_of(first), pos_of(&v)) {
                                (Some(p1), Some(p2)) => ahead(p1, p2) >= 1,
                                _ => false,
                            };
                        if needs_reread {
                            Choice::det(BState::Phase {
                                my: *my,
                                saw_a: *saw_a,
                                saw_b: *saw_b,
                                stage: Stage::ReRead { second: v },
                            })
                        } else {
                            Choice::det(conclude(*first, v))
                        }
                    }
                    Stage::ReRead { second } => Choice::det(conclude(v, *second)),
                }
            }
            BState::WriteDec { v, .. } => Choice::det(BState::Decided { value: *v }),
            BState::WriteBack {
                my,
                new,
                crossed,
                saw_a,
                saw_b,
            } => {
                let written = match op {
                    Op::Write(_, BReg::Run(w)) => *w,
                    _ => unreachable!("write-back writes a live value"),
                };
                let installed = written == *new && *new != *my;
                let wv = written.tag.value();
                let (saw_a, saw_b) = if installed && *crossed {
                    (wv == Val::A, wv == Val::B)
                } else {
                    (*saw_a || wv == Val::A, *saw_b || wv == Val::B)
                };
                Choice::det(BState::Phase {
                    my: written,
                    saw_a,
                    saw_b,
                    stage: Stage::First,
                })
            }
            BState::Decided { .. } => unreachable!("decided processors take no steps"),
        }
    }

    fn decision(&self, state: &BState) -> Option<Val> {
        match state {
            BState::Decided { value } => Some(*value),
            _ => None,
        }
    }

    fn preference(&self, _pid: usize, state: &BState) -> Option<Val> {
        Some(match state {
            BState::Start { input } => *input,
            BState::Phase { my, .. }
            | BState::WriteBack { my, .. }
            | BState::WriteDec { my, .. } => my.tag.value(),
            BState::Decided { value } => *value,
        })
    }

    fn name(&self) -> String {
        "three-processor bounded (Fig. 3)".into()
    }
}

/// Every value a register of this protocol can hold — the *bounded alphabet*
/// that EXP-6 censuses. 75 values: ⊥, 2 decisions, and 72 live values
/// (9 counters × {a,b} × 3 histories gives 54 value states; the 3 boundary
/// counters × {pref-a, pref-b} × 3 histories give 18 pref states).
pub fn register_alphabet() -> Vec<BReg> {
    let mut all = vec![BReg::Bot, BReg::Dec(Val::A), BReg::Dec(Val::B)];
    for ctr in 1..=9u8 {
        for hist in [Hist::A, Hist::B, Hist::C] {
            for v in [Val::A, Val::B] {
                all.push(BReg::Run(RunReg {
                    ctr,
                    tag: Tag::V(v),
                    hist,
                }));
                if is_boundary(ctr) {
                    all.push(BReg::Run(RunReg {
                        ctr,
                        tag: Tag::Pref(v),
                        hist,
                    }));
                }
            }
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_sim::{
        CrashPlan, Halt, LaggardFirst, RandomScheduler, RoundRobin, Runner, Solo, SplitKeeper,
        StopWhen,
    };

    fn run_reg(ctr: u8, tag: Tag) -> RunReg {
        RunReg {
            ctr,
            tag,
            hist: Hist::C,
        }
    }

    #[test]
    fn circular_distance_is_signed_and_wraps() {
        assert_eq!(ahead(3, 1), 2);
        assert_eq!(ahead(1, 3), -2);
        assert_eq!(ahead(1, 9), 1);
        assert_eq!(ahead(9, 1), -1);
        assert_eq!(ahead(2, 8), 3);
        assert_eq!(ahead(5, 5), 0);
    }

    #[test]
    fn alphabet_is_bounded_and_complete() {
        let alpha = register_alphabet();
        assert_eq!(alpha.len(), 75);
        let unique: std::collections::HashSet<_> = alpha.iter().collect();
        assert_eq!(unique.len(), 75);
    }

    #[test]
    fn t1_adopts_seen_decisions() {
        let my = run_reg(2, Tag::V(Val::A));
        let out = ThreeBounded::compute(
            BoundedOptions::default(),
            &my,
            true,
            false,
            [&BReg::Dec(Val::B), &BReg::Run(run_reg(1, Tag::V(Val::A)))],
        );
        assert_eq!(out, Outcome::Decide(Val::B));
    }

    #[test]
    fn t2_fires_when_both_peers_two_behind() {
        let my = run_reg(3, Tag::V(Val::A));
        let out = ThreeBounded::compute(
            BoundedOptions::default(),
            &my,
            true,
            false,
            [&BReg::Bot, &BReg::Bot],
        );
        assert_eq!(out, Outcome::Decide(Val::A));
    }

    #[test]
    fn boundary_with_one_laggard_enters_pref() {
        let my = run_reg(3, Tag::V(Val::B));
        let co = BReg::Run(run_reg(3, Tag::V(Val::A)));
        let lag = BReg::Run(run_reg(1, Tag::V(Val::A)));
        let out = ThreeBounded::compute(BoundedOptions::default(), &my, false, true, [&co, &lag]);
        assert_eq!(
            out,
            Outcome::Move {
                new: run_reg(3, Tag::Pref(Val::B)),
                crossed: false
            }
        );
    }

    #[test]
    fn pref_decides_on_matching_partner() {
        let my = run_reg(3, Tag::Pref(Val::A));
        let co = BReg::Run(run_reg(3, Tag::Pref(Val::A)));
        let lag = BReg::Run(run_reg(1, Tag::V(Val::B)));
        let out = ThreeBounded::compute(BoundedOptions::default(), &my, true, false, [&co, &lag]);
        assert_eq!(out, Outcome::Decide(Val::A));
    }

    #[test]
    fn pref_flips_or_keeps_on_disagreeing_partner() {
        let my = run_reg(3, Tag::Pref(Val::A));
        let co = BReg::Run(run_reg(3, Tag::Pref(Val::B)));
        let lag = BReg::Run(run_reg(1, Tag::V(Val::B)));
        let out = ThreeBounded::compute(BoundedOptions::default(), &my, true, false, [&co, &lag]);
        assert_eq!(
            out,
            Outcome::Move {
                new: run_reg(3, Tag::Pref(Val::B)),
                crossed: false
            }
        );
    }

    #[test]
    fn pref_reverts_when_laggard_catches_up() {
        let my = run_reg(3, Tag::Pref(Val::A));
        let co = BReg::Run(run_reg(3, Tag::Pref(Val::B)));
        let lag = BReg::Run(run_reg(2, Tag::V(Val::B)));
        let out = ThreeBounded::compute(BoundedOptions::default(), &my, true, false, [&co, &lag]);
        assert_eq!(
            out,
            Outcome::Move {
                new: run_reg(3, Tag::V(Val::A)),
                crossed: false
            }
        );
    }

    #[test]
    fn a3_advance_adopts_unanimous_leaders() {
        // Me at 1 with b; both peers lead at 2 with a: c2 → move with a.
        let my = run_reg(1, Tag::V(Val::B));
        let l1 = BReg::Run(run_reg(2, Tag::V(Val::A)));
        let l2 = BReg::Run(run_reg(2, Tag::V(Val::A)));
        let out = ThreeBounded::compute(BoundedOptions::default(), &my, false, true, [&l1, &l2]);
        assert_eq!(
            out,
            Outcome::Move {
                new: run_reg(2, Tag::V(Val::A)),
                crossed: false
            }
        );
    }

    #[test]
    fn a3_advance_keeps_value_on_split_leaders() {
        // Me a leader with a, other leader with b: c1 holds for me → keep a.
        let my = run_reg(2, Tag::V(Val::A));
        let l = BReg::Run(run_reg(2, Tag::V(Val::B)));
        let lag = BReg::Run(run_reg(1, Tag::V(Val::B)));
        let out = ThreeBounded::compute(BoundedOptions::default(), &my, true, false, [&l, &lag]);
        assert_eq!(
            out,
            Outcome::Move {
                new: run_reg(3, Tag::V(Val::A)),
                crossed: false
            }
        );
    }

    #[test]
    fn pref_b_leader_pulls_movers_to_b() {
        // A leader in pref-b: c2 → move with b even though I hold a.
        let my = run_reg(2, Tag::V(Val::A));
        let l = BReg::Run(run_reg(3, Tag::Pref(Val::B)));
        let lag = BReg::Run(run_reg(2, Tag::V(Val::A)));
        let out = ThreeBounded::compute(BoundedOptions::default(), &my, true, false, [&l, &lag]);
        assert_eq!(
            out,
            Outcome::Move {
                new: run_reg(3, Tag::V(Val::B)),
                crossed: false
            }
        );
    }

    #[test]
    fn section_exit_summarizes_history() {
        // Advancing 3→4 exits section [8..3]: hist becomes the summary.
        let my = RunReg {
            ctr: 3,
            tag: Tag::V(Val::A),
            hist: Hist::C,
        };
        let peer = BReg::Run(run_reg(3, Tag::V(Val::A)));
        let peer2 = BReg::Run(run_reg(2, Tag::V(Val::A)));
        let out =
            ThreeBounded::compute(BoundedOptions::default(), &my, true, false, [&peer, &peer2]);
        match out {
            Outcome::Move { new, crossed } => {
                assert!(crossed);
                assert_eq!(new.ctr, 4);
                assert_eq!(new.hist, Hist::A);
            }
            other => panic!("expected move, got {other:?}"),
        }
    }

    #[test]
    fn t3_decides_unanimous_lockstep() {
        let reg = |ctr| RunReg {
            ctr,
            tag: Tag::V(Val::A),
            hist: Hist::A,
        };
        let my = reg(5);
        let out = ThreeBounded::compute(
            BoundedOptions::default(),
            &my,
            true,
            false,
            [&BReg::Run(reg(5)), &BReg::Run(reg(4))],
        );
        assert_eq!(out, Outcome::Decide(Val::A));
    }

    #[test]
    fn solo_processor_decides_quickly() {
        let p = ThreeBounded::new();
        let out = Runner::new(&p, &[Val::B, Val::A, Val::A], Solo::new(0))
            .stop_when(StopWhen::PidDecided(0))
            .seed(11)
            .max_steps(100_000)
            .run();
        assert_eq!(out.decisions[0], Some(Val::B));
        assert_eq!(out.steps[1] + out.steps[2], 0);
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        let p = ThreeBounded::new();
        for seed in 0..100 {
            let out = Runner::new(&p, &[Val::A, Val::A, Val::A], RandomScheduler::new(seed))
                .seed(seed)
                .max_steps(500_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "seed {seed}");
            assert_eq!(out.agreement(), Some(Val::A), "seed {seed}");
        }
    }

    #[test]
    fn mixed_inputs_consistent_across_seeds() {
        let p = ThreeBounded::new();
        for seed in 0..300 {
            let out = Runner::new(&p, &[Val::A, Val::B, Val::A], RandomScheduler::new(seed))
                .seed(seed ^ 0xABCD)
                .max_steps(1_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "seed {seed} did not finish");
            assert!(out.consistent(), "seed {seed} violated consistency");
            assert!(out.nontrivial(), "seed {seed} violated nontriviality");
        }
    }

    #[test]
    fn adaptive_adversaries_do_not_block_or_break() {
        let p = ThreeBounded::new();
        for seed in 0..100 {
            let out = Runner::new(&p, &[Val::A, Val::B, Val::B], SplitKeeper::new())
                .seed(seed)
                .max_steps(1_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "split-keeper seed {seed}");
            assert!(out.consistent());
        }
        for seed in 0..100 {
            let out = Runner::new(&p, &[Val::B, Val::A, Val::B], LaggardFirst::new())
                .seed(seed)
                .max_steps(1_000_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "laggard seed {seed}");
            assert!(out.consistent());
        }
    }

    #[test]
    fn lockstep_round_robin_terminates_via_t3() {
        // Unanimous inputs under strict round-robin: T2 never fires (nobody
        // gets 2 ahead when every write installs . . . coin permitting); T3
        // must eventually catch it.
        let p = ThreeBounded::new();
        for seed in 0..50 {
            let out = Runner::new(&p, &[Val::B, Val::B, Val::B], RoundRobin::new())
                .seed(seed)
                .max_steps(500_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "seed {seed}");
            assert_eq!(out.agreement(), Some(Val::B));
        }
    }

    #[test]
    fn tolerates_two_crashes() {
        let p = ThreeBounded::new();
        for seed in 0..50 {
            let out = Runner::new(&p, &[Val::A, Val::B, Val::B], RandomScheduler::new(seed))
                .seed(seed)
                .crashes(CrashPlan::none().crash(1, 3).crash(2, 7))
                .max_steps(500_000)
                .run();
            assert!(out.decisions[0].is_some(), "survivor stuck at seed {seed}");
            assert!(out.consistent());
            assert!(out.nontrivial());
        }
    }

    #[test]
    fn registers_stay_within_the_bounded_alphabet() {
        use std::collections::HashSet;
        let alpha: HashSet<BReg> = register_alphabet().into_iter().collect();
        let p = ThreeBounded::new();
        for seed in 0..50 {
            let out = Runner::new(&p, &[Val::A, Val::B, Val::A], RandomScheduler::new(seed))
                .seed(seed)
                .record_trace(true)
                .max_steps(1_000_000)
                .run();
            for e in out.trace.unwrap().events() {
                if let Op::Write(_, v) = &e.op {
                    assert!(alpha.contains(v), "wrote value outside alphabet: {v:?}");
                }
            }
        }
    }
}
