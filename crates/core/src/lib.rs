//! # cil-core — the Chor–Israeli–Li coordination protocols (PODC 1987)
//!
//! A from-scratch implementation of every protocol in *"On Processor
//! Coordination Using Asynchronous Hardware"* (Chor, Israeli, Li; PODC
//! 1987): randomized **wait-free consensus** for asynchronous processors
//! that communicate only through atomic read/write registers — no
//! test-and-set, no message passing, an adaptive adversary scheduler, and
//! tolerance of up to `n − 1` fail-stop crashes.
//!
//! The **coordination problem**: every processor starts with an input value
//! and must irrevocably decide an output such that (1) *consistency* — all
//! decided outputs are equal; (2) *nontriviality* — the output is the input
//! of some processor active in the run; (3) *termination* — every processor
//! that takes enough steps decides (with probability → 1 for randomized
//! protocols), under **every** schedule.
//!
//! | module | paper item | contents |
//! |---|---|---|
//! | [`two`] | §4, Fig. 1 | the 2-processor protocol (expected ≤ 10 steps) |
//! | [`kvalued`] | §4, Thm 5 | k-valued coordination from binary, ×⌈log₂k⌉ |
//! | [`n_unbounded`] | §5, Fig. 2 | 3-processor (and n-processor) protocol, unbounded `(pref,num)` registers |
//! | [`three_bounded`] | §6, Fig. 3 | 3-processor protocol with *bounded* registers |
//! | [`naive`] | §5 intro | the "natural" protocol that fails, and the adversary that kills it |
//! | [`deterministic`] | §3 | deterministic victims for the Theorem 4 impossibility machinery |
//! | [`apps`] | §1 | mutual exclusion / leader election on top of coordination |
//!
//! Protocols implement [`cil_sim::Protocol`] (pure probabilistic transition
//! functions), so the same code runs under the Monte-Carlo executor
//! ([`cil_sim::Runner`]), on real OS threads over `AtomicU64` registers
//! ([`cil_sim::run_on_threads`]), and inside the exhaustive model checker /
//! MDP solver of the `cil-mc` crate.
//!
//! # Quickstart
//!
//! ```
//! use cil_core::two::TwoProcessor;
//! use cil_sim::{Runner, RandomScheduler, Val};
//!
//! let protocol = TwoProcessor::new();
//! let outcome = Runner::new(&protocol, &[Val::A, Val::B], RandomScheduler::new(7))
//!     .seed(42)
//!     .run();
//! let agreed = outcome.agreement().expect("both processors decide");
//! assert!(agreed == Val::A || agreed == Val::B);
//! assert!(outcome.consistent() && outcome.nontrivial());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod deterministic;
pub mod kvalued;
pub mod n_unbounded;
pub mod n_unbounded_1w1r;
pub mod naive;
pub mod three_bounded;
pub mod two;

pub use cil_sim::{Choice, Op, Protocol, Val};

mod packing;
pub use packing::KRegCodec;
