//! The "natural" consensus protocol that fails (§5, introduction), and the
//! explicit adversary strategy that defeats it.
//!
//! The paper warns that many natural protocols fail "in very subtle ways
//! which are far from obvious at first site", and gives the canonical
//! example: *each processor chooses at random a value out of a and b; when
//! all processors have chosen the same value they terminate.* The adversary
//! strategy (for `n = 3`): drive `P_0` until its register holds `a`, then
//! freeze it; drive `P_1` until its register holds `b`, freeze it; then
//! activate `P_2` forever. `P_2` reads a disagreeing pair `{a, b}` in every
//! phase, re-randomizes forever, and never decides — while `P_0` and `P_1`
//! never take another step. Randomized termination fails even though each
//! activation of `P_2` flips a fresh coin.
//!
//! [`Naive`] implements the protocol and [`NaiveKiller`] the strategy; the
//! contrast with Fig. 2's protocol (which defeats the same adversary) is
//! experiment EXP-5.

use cil_registers::{ReaderSet, RegisterSpec};
use cil_sim::{Adversary, Choice, Op, Protocol, Val, View};

/// Register contents: the chosen value, or `None` (⊥) before any choice.
pub type NaiveReg = Option<Val>;

/// Internal state of one processor of the naive protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NaiveState {
    /// About to write the current choice.
    Write {
        /// The value about to be published.
        cur: Val,
    },
    /// Reading the other registers one at a time.
    Read {
        /// The value currently published.
        cur: Val,
        /// Index into the peer list.
        peer_idx: usize,
        /// Whether every register read so far this phase matched `cur`.
        all_match: bool,
    },
    /// Decision state.
    Decided {
        /// The irrevocable output value.
        value: Val,
    },
}

/// The failing baseline protocol for `n` processors over the binary value
/// set `{a, b}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Naive {
    n: usize,
}

impl Naive {
    /// Creates the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        Naive { n }
    }

    fn peers(&self, pid: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&j| j != pid)
    }
}

impl Protocol for Naive {
    type State = NaiveState;
    type Reg = NaiveReg;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> Vec<RegisterSpec<NaiveReg>> {
        // Three-value domain {⊥, a, b} → 2 bits, as in Fig. 1.
        cil_registers::access::per_process_registers(self.n, None, |i| {
            ReaderSet::only((0..self.n).filter(|&j| j != i).map(Into::into))
        })
        .into_iter()
        .map(|s| s.with_width(2))
        .collect()
    }

    fn init(&self, _pid: usize, input: Val) -> NaiveState {
        NaiveState::Write { cur: input }
    }

    fn choose(&self, pid: usize, state: &NaiveState) -> Choice<Op<NaiveReg>> {
        match state {
            NaiveState::Write { cur } => Choice::det(Op::Write(pid.into(), Some(*cur))),
            NaiveState::Read { peer_idx, .. } => {
                let peer = self.peers(pid).nth(*peer_idx).expect("peer in range");
                Choice::det(Op::Read(peer.into()))
            }
            NaiveState::Decided { .. } => unreachable!("decided processors take no steps"),
        }
    }

    fn transit(
        &self,
        _pid: usize,
        state: &NaiveState,
        _op: &Op<NaiveReg>,
        read: Option<&NaiveReg>,
    ) -> Choice<NaiveState> {
        match state {
            NaiveState::Write { cur } => Choice::det(NaiveState::Read {
                cur: *cur,
                peer_idx: 0,
                all_match: true,
            }),
            NaiveState::Read {
                cur,
                peer_idx,
                all_match,
            } => {
                let v = read.expect("read phase reads");
                let all_match = *all_match && *v == Some(*cur);
                if *peer_idx + 1 < self.n - 1 {
                    Choice::det(NaiveState::Read {
                        cur: *cur,
                        peer_idx: peer_idx + 1,
                        all_match,
                    })
                } else if all_match {
                    Choice::det(NaiveState::Decided { value: *cur })
                } else {
                    // Re-choose uniformly at random and publish again.
                    Choice::coin(
                        NaiveState::Write { cur: Val::A },
                        NaiveState::Write { cur: Val::B },
                    )
                }
            }
            NaiveState::Decided { .. } => unreachable!("decided processors take no steps"),
        }
    }

    fn decision(&self, state: &NaiveState) -> Option<Val> {
        match state {
            NaiveState::Decided { value } => Some(*value),
            _ => None,
        }
    }

    fn preference(&self, _pid: usize, state: &NaiveState) -> Option<Val> {
        Some(match state {
            NaiveState::Write { cur } | NaiveState::Read { cur, .. } => *cur,
            NaiveState::Decided { value } => *value,
        })
    }

    fn name(&self) -> String {
        format!("naive consensus (n = {})", self.n)
    }
}

/// The §5 adversary strategy against [`Naive`] with `n = 3`.
///
/// Drives `P_0`'s register to `a` and `P_1`'s to `b`, then starves both and
/// activates `P_2` forever. Because the strategy conditions on *register
/// contents already written*, it needs no knowledge of future coin flips —
/// it is a legal adaptive adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveKiller;

impl NaiveKiller {
    /// Creates the strategy.
    pub fn new() -> Self {
        NaiveKiller
    }
}

impl Adversary<Naive> for NaiveKiller {
    fn pick(&mut self, view: &View<'_, Naive>) -> usize {
        let eligible = view.eligible();
        let want = if view.regs[0] != Some(Val::A) {
            0
        } else if view.regs[1] != Some(Val::B) {
            1
        } else {
            2
        };
        if eligible.contains(&want) {
            want
        } else {
            // Should not happen (the victims never decide under this
            // strategy), but stay a legal adversary.
            eligible[0]
        }
    }

    fn name(&self) -> String {
        "naive-killer (§5 strategy)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_sim::{Halt, RandomScheduler, RoundRobin, Runner, StopWhen};

    #[test]
    fn unanimous_inputs_can_decide() {
        let p = Naive::new(3);
        let out = Runner::new(&p, &[Val::A, Val::A, Val::A], RoundRobin::new())
            .seed(1)
            .max_steps(100_000)
            .run();
        assert_eq!(out.agreement(), Some(Val::A));
    }

    #[test]
    fn benign_schedulers_usually_terminate() {
        // Under a benign scheduler the naive protocol does often finish —
        // that is exactly why it looks plausible.
        let p = Naive::new(3);
        let mut done = 0;
        for seed in 0..50 {
            let out = Runner::new(&p, &[Val::A, Val::B, Val::A], RandomScheduler::new(seed))
                .seed(seed)
                .max_steps(100_000)
                .run();
            if out.halt == Halt::Done {
                assert!(out.consistent());
                done += 1;
            }
        }
        assert!(done > 25, "only {done}/50 finished under a fair scheduler");
    }

    #[test]
    fn killer_blocks_p2_forever() {
        let p = Naive::new(3);
        for seed in 0..20 {
            let out = Runner::new(&p, &[Val::A, Val::B, Val::A], NaiveKiller::new())
                .seed(seed)
                .stop_when(StopWhen::FirstDecision)
                .max_steps(50_000)
                .run();
            assert_eq!(out.halt, Halt::MaxSteps, "seed {seed}: someone decided");
            assert!(out.decisions.iter().all(Option::is_none));
            // P2 did essentially all the work once the split was set up.
            assert!(
                out.steps[2] > out.steps[0] + out.steps[1],
                "seed {seed}: steps {:?}",
                out.steps
            );
        }
    }

    #[test]
    fn killer_sets_up_the_split_first() {
        let p = Naive::new(3);
        let out = Runner::new(&p, &[Val::B, Val::A, Val::A], NaiveKiller::new())
            .seed(3)
            .max_steps(10_000)
            .record_trace(true)
            .run();
        // Final registers: r0 = a, r1 = b, frozen.
        assert_eq!(out.final_regs[0], Some(Val::A));
        assert_eq!(out.final_regs[1], Some(Val::B));
    }

    #[test]
    fn same_strategy_fails_against_fig2_protocol() {
        // The killer's schedule shape (freeze two, run one forever) cannot
        // block Fig. 2: the solo processor races two ahead and decides.
        use crate::n_unbounded::NUnbounded;
        #[derive(Debug)]
        struct Shape;
        impl Adversary<NUnbounded> for Shape {
            fn pick(&mut self, view: &View<'_, NUnbounded>) -> usize {
                let e = view.eligible();
                // Mimic the killer: give P0 and P1 one step each (their
                // initial writes), then P2 forever.
                if view.steps[0] < 1 && e.contains(&0) {
                    0
                } else if view.steps[1] < 1 && e.contains(&1) {
                    1
                } else if e.contains(&2) {
                    2
                } else {
                    e[0]
                }
            }
        }
        let p = NUnbounded::three();
        for seed in 0..20 {
            let out = Runner::new(&p, &[Val::A, Val::B, Val::A], Shape)
                .seed(seed)
                .stop_when(StopWhen::PidDecided(2))
                .max_steps(100_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "Fig. 2 blocked at seed {seed}");
            assert!(out.decisions[2].is_some());
            assert!(out.consistent());
        }
    }
}
