//! Word-packing of protocol register values, enabling execution on real
//! hardware registers (`AtomicU64`) via [`cil_sim::run_on_threads`].
//!
//! Every register of the paper's protocols is *bounded* (or, for §5's `num`
//! field, bounded in any feasible run), so each packs into a single machine
//! word — the concrete substance behind the paper's "implementable in
//! existing technology".

use crate::kvalued::{KReg, KValued};
use crate::n_unbounded::NReg;
use crate::three_bounded::{BReg, Hist, RunReg, Tag};
use cil_registers::{Packable, RegId};
use cil_sim::{Protocol, Val, WordCodec};
use std::marker::PhantomData;

impl Packable for NReg {
    /// Packs `(pref, num)` as `pref_code << 48 | num`. Supports `pref`
    /// values below 2¹⁵ and `num` below 2⁴⁸ — far beyond anything a run can
    /// produce (Theorem 9: `P[num = k] ≤ (3/4)^k`).
    fn pack(&self) -> u64 {
        let pref_code = match self.pref {
            None => 0u64,
            Some(Val(v)) => {
                assert!(v < (1 << 15), "pref value too large to pack");
                v + 1
            }
        };
        assert!(self.num < (1 << 48), "num too large to pack");
        (pref_code << 48) | self.num
    }

    fn unpack(word: u64) -> Self {
        let pref_code = word >> 48;
        let num = word & ((1 << 48) - 1);
        let pref = if pref_code == 0 {
            None
        } else {
            Some(Val(pref_code - 1))
        };
        NReg { pref, num }
    }
}

fn tag_code(tag: Tag) -> u64 {
    match tag {
        Tag::V(Val::A) => 0,
        Tag::V(Val::B) => 1,
        Tag::Pref(Val::A) => 2,
        Tag::Pref(Val::B) => 3,
        _ => panic!("bounded protocol tags carry binary values"),
    }
}

fn tag_decode(code: u64) -> Tag {
    match code {
        0 => Tag::V(Val::A),
        1 => Tag::V(Val::B),
        2 => Tag::Pref(Val::A),
        _ => Tag::Pref(Val::B),
    }
}

fn hist_code(h: Hist) -> u64 {
    match h {
        Hist::A => 0,
        Hist::B => 1,
        Hist::C => 2,
    }
}

fn hist_decode(code: u64) -> Hist {
    match code {
        0 => Hist::A,
        1 => Hist::B,
        _ => Hist::C,
    }
}

impl Packable for BReg {
    /// Dense encoding of the 75-value bounded alphabet (fits in 7 bits).
    fn pack(&self) -> u64 {
        match self {
            BReg::Bot => 0,
            BReg::Dec(Val::A) => 1,
            BReg::Dec(Val::B) => 2,
            BReg::Dec(v) => panic!("bounded protocol decisions are binary, got {v}"),
            BReg::Run(r) => {
                3 + ((u64::from(r.ctr) - 1) * 4 + tag_code(r.tag)) * 3 + hist_code(r.hist)
            }
        }
    }

    fn unpack(word: u64) -> Self {
        match word {
            0 => BReg::Bot,
            1 => BReg::Dec(Val::A),
            2 => BReg::Dec(Val::B),
            w => {
                let w = w - 3;
                let hist = hist_decode(w % 3);
                let rest = w / 3;
                let tag = tag_decode(rest % 4);
                let ctr = (rest / 4 + 1) as u8;
                BReg::Run(RunReg { ctr, tag, hist })
            }
        }
    }
}

/// Per-register word codec for the Theorem 5 composite protocol's
/// heterogeneous register bank.
///
/// [`KReg`] cannot implement [`Packable`] uniformly: which variant a word
/// decodes to depends on *which register* it came from. The composite's
/// layout is fixed — all inner-instance registers first, the `n`
/// candidate-publication registers last — so the codec just needs the
/// boundary. Candidates encode `None` as `0` and `Some(v)` as `v + 1`
/// (⊥-is-zero, like every other packing in this module); inner registers
/// delegate to the inner protocol's [`Packable`] impl.
#[derive(Debug, Clone, Copy)]
pub struct KRegCodec<R> {
    inner_regs: usize,
    _marker: PhantomData<fn() -> R>,
}

impl<R> KRegCodec<R> {
    /// Builds the codec for a register bank whose first `inner_regs`
    /// registers belong to inner binary instances (the rest are candidate
    /// registers).
    pub fn new(inner_regs: usize) -> Self {
        KRegCodec {
            inner_regs,
            _marker: PhantomData,
        }
    }

    /// Builds the codec matching `protocol`'s register layout.
    pub fn for_protocol<P>(protocol: &KValued<P>) -> Self
    where
        P: Protocol<Reg = R>,
        KValued<P>: Protocol,
    {
        let specs = Protocol::registers(protocol).len();
        KRegCodec::new(specs - Protocol::processes(protocol))
    }
}

impl<R: Packable + Send + Sync> WordCodec<KReg<R>> for KRegCodec<R> {
    fn pack(&self, reg: RegId, value: &KReg<R>) -> u64 {
        match value {
            KReg::Inner(inner) => {
                debug_assert!(reg.0 < self.inner_regs, "inner value in candidate {reg}");
                inner.pack()
            }
            KReg::Cand(cand) => {
                debug_assert!(reg.0 >= self.inner_regs, "candidate value in inner {reg}");
                cand.map_or(0, |v| v + 1)
            }
        }
    }

    fn unpack(&self, reg: RegId, word: u64) -> KReg<R> {
        if reg.0 < self.inner_regs {
            KReg::Inner(R::unpack(word))
        } else if word == 0 {
            KReg::Cand(None)
        } else {
            KReg::Cand(Some(word - 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::three_bounded::register_alphabet;

    #[test]
    fn nreg_round_trips() {
        for pref in [None, Some(Val::A), Some(Val::B), Some(Val(77))] {
            for num in [0u64, 1, 9, 1 << 40] {
                let r = NReg { pref, num };
                assert_eq!(NReg::unpack(r.pack()), r);
            }
        }
    }

    #[test]
    fn nreg_bot_packs_to_zero() {
        assert_eq!(NReg::BOT.pack(), 0);
    }

    #[test]
    fn kreg_codec_round_trips_both_register_classes() {
        use crate::two::{TwoProcessor, TwoReg};
        let p = KValued::new(TwoProcessor::new(), 4);
        let codec = KRegCodec::for_protocol(&p);
        let specs = p.registers();
        let boundary = specs.len() - p.processes();
        let inner_vals: [TwoReg; 3] = [None, Some(Val::A), Some(Val::B)];
        for reg in 0..boundary {
            for v in &inner_vals {
                let kv = KReg::Inner(*v);
                assert_eq!(codec.unpack(RegId(reg), codec.pack(RegId(reg), &kv)), kv);
            }
        }
        for reg in boundary..specs.len() {
            for cand in [None, Some(0), Some(3)] {
                let kv = KReg::<TwoReg>::Cand(cand);
                assert_eq!(codec.unpack(RegId(reg), codec.pack(RegId(reg), &kv)), kv);
            }
        }
        // The encoding stays within every register's declared width.
        for s in &specs {
            let max = match s.id.0 < boundary {
                true => inner_vals
                    .iter()
                    .map(|v| codec.pack(s.id, &KReg::Inner(*v)))
                    .max()
                    .unwrap(),
                false => codec.pack(s.id, &KReg::<TwoReg>::Cand(Some(3))),
            };
            assert!(max <= s.max_word(), "register {} overflows", s.name);
        }
    }

    #[test]
    fn breg_round_trips_over_the_whole_alphabet() {
        for v in register_alphabet() {
            assert_eq!(BReg::unpack(v.pack()), v, "value {v:?}");
        }
    }

    #[test]
    fn breg_packings_are_distinct_and_small() {
        use std::collections::HashSet;
        let words: HashSet<u64> = register_alphabet().iter().map(Packable::pack).collect();
        assert_eq!(words.len(), 75);
        assert!(words.iter().all(|&w| w < 128), "alphabet fits in 7 bits");
    }
}
