//! Word-packing of protocol register values, enabling execution on real
//! hardware registers (`AtomicU64`) via [`cil_sim::run_on_threads`].
//!
//! Every register of the paper's protocols is *bounded* (or, for §5's `num`
//! field, bounded in any feasible run), so each packs into a single machine
//! word — the concrete substance behind the paper's "implementable in
//! existing technology".

use crate::n_unbounded::NReg;
use crate::three_bounded::{BReg, Hist, RunReg, Tag};
use cil_registers::Packable;
use cil_sim::Val;

impl Packable for NReg {
    /// Packs `(pref, num)` as `pref_code << 48 | num`. Supports `pref`
    /// values below 2¹⁵ and `num` below 2⁴⁸ — far beyond anything a run can
    /// produce (Theorem 9: `P[num = k] ≤ (3/4)^k`).
    fn pack(&self) -> u64 {
        let pref_code = match self.pref {
            None => 0u64,
            Some(Val(v)) => {
                assert!(v < (1 << 15), "pref value too large to pack");
                v + 1
            }
        };
        assert!(self.num < (1 << 48), "num too large to pack");
        (pref_code << 48) | self.num
    }

    fn unpack(word: u64) -> Self {
        let pref_code = word >> 48;
        let num = word & ((1 << 48) - 1);
        let pref = if pref_code == 0 {
            None
        } else {
            Some(Val(pref_code - 1))
        };
        NReg { pref, num }
    }
}

fn tag_code(tag: Tag) -> u64 {
    match tag {
        Tag::V(Val::A) => 0,
        Tag::V(Val::B) => 1,
        Tag::Pref(Val::A) => 2,
        Tag::Pref(Val::B) => 3,
        _ => panic!("bounded protocol tags carry binary values"),
    }
}

fn tag_decode(code: u64) -> Tag {
    match code {
        0 => Tag::V(Val::A),
        1 => Tag::V(Val::B),
        2 => Tag::Pref(Val::A),
        _ => Tag::Pref(Val::B),
    }
}

fn hist_code(h: Hist) -> u64 {
    match h {
        Hist::A => 0,
        Hist::B => 1,
        Hist::C => 2,
    }
}

fn hist_decode(code: u64) -> Hist {
    match code {
        0 => Hist::A,
        1 => Hist::B,
        _ => Hist::C,
    }
}

impl Packable for BReg {
    /// Dense encoding of the 75-value bounded alphabet (fits in 7 bits).
    fn pack(&self) -> u64 {
        match self {
            BReg::Bot => 0,
            BReg::Dec(Val::A) => 1,
            BReg::Dec(Val::B) => 2,
            BReg::Dec(v) => panic!("bounded protocol decisions are binary, got {v}"),
            BReg::Run(r) => {
                3 + ((u64::from(r.ctr) - 1) * 4 + tag_code(r.tag)) * 3 + hist_code(r.hist)
            }
        }
    }

    fn unpack(word: u64) -> Self {
        match word {
            0 => BReg::Bot,
            1 => BReg::Dec(Val::A),
            2 => BReg::Dec(Val::B),
            w => {
                let w = w - 3;
                let hist = hist_decode(w % 3);
                let rest = w / 3;
                let tag = tag_decode(rest % 4);
                let ctr = (rest / 4 + 1) as u8;
                BReg::Run(RunReg { ctr, tag, hist })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::three_bounded::register_alphabet;

    #[test]
    fn nreg_round_trips() {
        for pref in [None, Some(Val::A), Some(Val::B), Some(Val(77))] {
            for num in [0u64, 1, 9, 1 << 40] {
                let r = NReg { pref, num };
                assert_eq!(NReg::unpack(r.pack()), r);
            }
        }
    }

    #[test]
    fn nreg_bot_packs_to_zero() {
        assert_eq!(NReg::BOT.pack(), 0);
    }

    #[test]
    fn breg_round_trips_over_the_whole_alphabet() {
        for v in register_alphabet() {
            assert_eq!(BReg::unpack(v.pack()), v, "value {v:?}");
        }
    }

    #[test]
    fn breg_packings_are_distinct_and_small() {
        use std::collections::HashSet;
        let words: HashSet<u64> = register_alphabet().iter().map(Packable::pack).collect();
        assert_eq!(words.len(), 75);
        assert!(words.iter().all(|&w| w < 128), "alphabet fits in 7 bits");
    }
}
