//! The two-processor randomized coordination protocol (§4, Figure 1).
//!
//! Each processor `P_i` owns one shared register `r_i` (readable only by the
//! other processor — bounded, single-writer, single-reader, holding one of
//! three values ⊥/a/b) in which it publishes its currently preferred
//! decision value. The protocol for `P_0` (Fig. 1 of the paper):
//!
//! ```text
//! (0) write r0 <- input
//!     repeat
//! (1)     read v0 <- r1
//!         if v0 = r0 or v0 = ⊥  then decide r0 and quit
//! (2)     else flip an unbiased coin:
//!             heads -> rewrite r0 <- r0
//!             tails -> write   r0 <- v0
//!     until decision is made
//! ```
//!
//! The "rewrite r0 ← r0" on heads is genuinely performed (the paper notes it
//! is superfluous but keeps it for the analysis; we keep it so step counts
//! match the paper's *expected ≤ 10 steps per processor*).
//!
//! Correctness (paper Theorems 6 & 7): **consistency** — if `P_0` decides
//! `v` it has just read `r_1 = v` while `r_0 = v`, and `r_0` never changes
//! afterwards, so `P_1`'s next read of `r_0` (which it must perform before
//! deciding) returns `v` too; **randomized termination** — from any
//! configuration, with probability ≥ 1/4 the next two write steps make
//! `r_0 = r_1`, after which whoever reads next decides; no adaptive
//! adversary can prevent this because the coin is flipped *inside* the write
//! step. The `cil-mc` crate verifies both mechanically: exhaustive
//! consistency over the full (finite) configuration space, and the exact
//! optimal-adversary expected step count via MDP value iteration.

use cil_registers::{ReaderSet, RegId, RegisterSpec};
use cil_sim::{Choice, Op, Protocol, Val};

/// Register contents: the paper's ⊥ is `None`.
pub type TwoReg = Option<Val>;

/// Internal state of one processor of the two-processor protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TwoState {
    /// About to perform line (0): the initial write of the input.
    Start {
        /// The processor's input value.
        input: Val,
    },
    /// Program counter at line (1): about to read the other register.
    /// `mine` is the value currently in this processor's own register.
    AboutToRead {
        /// Contents of this processor's own register.
        mine: Val,
    },
    /// Program counter at line (2): about to write, with the coin deciding
    /// between rewriting `mine` and adopting `seen`.
    AboutToWrite {
        /// Contents of this processor's own register.
        mine: Val,
        /// The disagreeing value just read from the other register.
        seen: Val,
    },
    /// Decision state: the output register `o_P` holds `value`.
    Decided {
        /// The irrevocable output value.
        value: Val,
    },
}

/// The §4 protocol. Works for any input values (the decision logic only
/// compares for equality); the paper's analysis uses the binary set `{a,b}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoProcessor;

impl TwoProcessor {
    /// Creates the protocol.
    pub fn new() -> Self {
        TwoProcessor
    }

    fn own_reg(pid: usize) -> RegId {
        RegId(pid)
    }

    fn other_reg(pid: usize) -> RegId {
        RegId(1 - pid)
    }
}

impl Protocol for TwoProcessor {
    type State = TwoState;
    type Reg = TwoReg;

    fn processes(&self) -> usize {
        2
    }

    fn registers(&self) -> Vec<RegisterSpec<TwoReg>> {
        // 1-writer 1-reader bounded registers: r_i is written by P_i and
        // read only by P_{1-i} — the most restricted class in the paper.
        // Width 2 bits: the three-value domain {⊥, a, b} packs to {0, 1, 2}.
        vec![
            RegisterSpec::new(RegId(0), "r0", 0.into(), ReaderSet::only([1.into()]), None)
                .with_width(2),
            RegisterSpec::new(RegId(1), "r1", 1.into(), ReaderSet::only([0.into()]), None)
                .with_width(2),
        ]
    }

    fn init(&self, _pid: usize, input: Val) -> TwoState {
        TwoState::Start { input }
    }

    fn choose(&self, pid: usize, state: &TwoState) -> Choice<Op<TwoReg>> {
        match state {
            TwoState::Start { input } => Choice::det(Op::Write(Self::own_reg(pid), Some(*input))),
            TwoState::AboutToRead { .. } => Choice::det(Op::Read(Self::other_reg(pid))),
            TwoState::AboutToWrite { mine, seen } => Choice::coin(
                // Heads: rewrite own value; tails: adopt the other's.
                Op::Write(Self::own_reg(pid), Some(*mine)),
                Op::Write(Self::own_reg(pid), Some(*seen)),
            ),
            TwoState::Decided { .. } => {
                unreachable!("decided processors take no steps (they quit)")
            }
        }
    }

    fn transit(
        &self,
        _pid: usize,
        state: &TwoState,
        op: &Op<TwoReg>,
        read: Option<&TwoReg>,
    ) -> Choice<TwoState> {
        match state {
            TwoState::Start { input } => Choice::det(TwoState::AboutToRead { mine: *input }),
            TwoState::AboutToRead { mine } => {
                let v = read.expect("line (1) is a read");
                match v {
                    None => Choice::det(TwoState::Decided { value: *mine }),
                    Some(seen) if seen == mine => Choice::det(TwoState::Decided { value: *mine }),
                    Some(seen) => Choice::det(TwoState::AboutToWrite {
                        mine: *mine,
                        seen: *seen,
                    }),
                }
            }
            TwoState::AboutToWrite { .. } => {
                let written = match op {
                    Op::Write(_, Some(v)) => *v,
                    _ => unreachable!("line (2) writes a concrete value"),
                };
                Choice::det(TwoState::AboutToRead { mine: written })
            }
            TwoState::Decided { .. } => unreachable!("decided processors take no steps"),
        }
    }

    fn decision(&self, state: &TwoState) -> Option<Val> {
        match state {
            TwoState::Decided { value } => Some(*value),
            _ => None,
        }
    }

    fn preference(&self, _pid: usize, state: &TwoState) -> Option<Val> {
        Some(match state {
            TwoState::Start { input } => *input,
            TwoState::AboutToRead { mine } | TwoState::AboutToWrite { mine, .. } => *mine,
            TwoState::Decided { value } => *value,
        })
    }

    fn name(&self) -> String {
        "two-processor (Fig. 1)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_sim::{
        CrashPlan, FixedSchedule, Halt, RandomScheduler, RoundRobin, Runner, Solo, SplitKeeper,
        StopWhen,
    };

    #[test]
    fn solo_processor_decides_its_input_in_two_steps() {
        // Wait-freedom: P0 running alone writes, reads ⊥, decides.
        let p = TwoProcessor::new();
        let out = Runner::new(&p, &[Val::A, Val::B], Solo::new(0))
            .stop_when(StopWhen::PidDecided(0))
            .run();
        assert_eq!(out.decisions[0], Some(Val::A));
        assert_eq!(out.steps[0], 2);
        assert_eq!(out.steps[1], 0);
    }

    #[test]
    fn equal_inputs_decide_that_value() {
        let p = TwoProcessor::new();
        for seed in 0..50 {
            let out = Runner::new(&p, &[Val::B, Val::B], RandomScheduler::new(seed))
                .seed(seed)
                .run();
            assert_eq!(out.agreement(), Some(Val::B));
            assert!(out.nontrivial());
        }
    }

    #[test]
    fn mixed_inputs_are_consistent_and_nontrivial_across_seeds() {
        let p = TwoProcessor::new();
        for seed in 0..500 {
            let out = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(seed))
                .seed(seed ^ 0xDEAD)
                .run();
            assert_eq!(out.halt, Halt::Done, "seed {seed} did not finish");
            assert!(out.consistent(), "seed {seed} violated consistency");
            assert!(out.nontrivial(), "seed {seed} violated nontriviality");
            assert!(out.all_alive_decided());
        }
    }

    #[test]
    fn adaptive_adversary_cannot_block_termination() {
        let p = TwoProcessor::new();
        let mut total_steps = 0u64;
        let runs = 300;
        for seed in 0..runs {
            let out = Runner::new(&p, &[Val::A, Val::B], SplitKeeper::new())
                .seed(seed)
                .max_steps(100_000)
                .run();
            assert_eq!(out.halt, Halt::Done, "split-keeper blocked seed {seed}");
            assert!(out.consistent());
            total_steps += out.total_steps;
        }
        // Paper: expected ≤ 10 steps *per processor*, i.e. ≤ 20 total.
        let mean = total_steps as f64 / runs as f64;
        assert!(mean < 25.0, "mean total steps {mean} way above paper bound");
    }

    #[test]
    fn expected_steps_close_to_paper_bound_under_random_scheduler() {
        let p = TwoProcessor::new();
        let runs = 2_000u64;
        let mut steps_p0 = 0u64;
        for seed in 0..runs {
            let out = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(seed))
                .seed(seed.wrapping_mul(0x9E37))
                .run();
            steps_p0 += out.steps[0];
        }
        let mean = steps_p0 as f64 / runs as f64;
        // The paper's Corollary bounds the expectation by 10; benign
        // schedulers do much better. Sanity band only.
        assert!((2.0..=10.0).contains(&mean), "mean steps of P0 = {mean}");
    }

    #[test]
    fn crash_of_one_processor_does_not_block_the_other() {
        // t = n − 1 = 1 crash: P1 dies immediately after its initial write.
        let p = TwoProcessor::new();
        for seed in 0..50 {
            let out = Runner::new(&p, &[Val::A, Val::B], RoundRobin::new())
                .seed(seed)
                .crashes(CrashPlan::none().crash(1, 2))
                .run();
            assert!(out.decisions[0].is_some(), "survivor must decide");
            assert!(out.consistent());
            assert!(out.nontrivial());
        }
    }

    #[test]
    fn paper_consistency_scenario() {
        // Replay of the Theorem 6 argument: P0 decides first; P1 must then
        // read r0 (unchanged) and agree. Schedule: P0 write, P1 write,
        // P0 read (disagree), P1 read (disagree), then both flip...
        // Use a fixed schedule plus fixed coins: after P0 adopts B, both
        // registers hold B and everyone decides B.
        let p = TwoProcessor::new();
        let out = Runner::new(
            &p,
            &[Val::A, Val::B],
            FixedSchedule::new(vec![0, 1, 0, 0, 1, 0, 1]),
        )
        .seed(123)
        .max_steps(10_000)
        .run();
        assert!(out.consistent());
    }

    #[test]
    fn preference_tracks_own_register() {
        let p = TwoProcessor::new();
        let s = p.init(0, Val::B);
        assert_eq!(p.preference(0, &s), Some(Val::B));
        let s2 = TwoState::AboutToWrite {
            mine: Val::A,
            seen: Val::B,
        };
        assert_eq!(p.preference(0, &s2), Some(Val::A));
    }

    #[test]
    fn registers_are_single_writer_single_reader() {
        let p = TwoProcessor::new();
        let specs = p.registers();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].writer, 0.into());
        assert!(specs[0].readers.allows(1.into()));
        assert!(!specs[0].readers.allows(0.into()));
    }

    #[test]
    fn read_of_bot_decides_immediately() {
        let p = TwoProcessor::new();
        let s = TwoState::AboutToRead { mine: Val::A };
        let op = Op::Read(RegId(1));
        let next = p.transit(0, &s, &op, Some(&None));
        assert_eq!(next.branches()[0].1, TwoState::Decided { value: Val::A });
    }

    #[test]
    fn disagreeing_read_moves_to_coin_flip() {
        let p = TwoProcessor::new();
        let s = TwoState::AboutToRead { mine: Val::A };
        let op = Op::Read(RegId(1));
        let next = p.transit(0, &s, &op, Some(&Some(Val::B)));
        assert_eq!(
            next.branches()[0].1,
            TwoState::AboutToWrite {
                mine: Val::A,
                seen: Val::B
            }
        );
        // And the subsequent write is a fair coin between keep and adopt.
        let c = p.choose(0, &next.branches()[0].1);
        assert_eq!(c.branches().len(), 2);
        assert_eq!(c.branches()[0].1, Op::Write(RegId(0), Some(Val::A)));
        assert_eq!(c.branches()[1].1, Op::Write(RegId(0), Some(Val::B)));
    }
}
