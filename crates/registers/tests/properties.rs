//! Property-based tests of the register taxonomy and linearizability
//! checker against their defining invariants.

use cil_registers::linearize::{is_linearizable, HistOp};
use cil_registers::taxonomy::{FixedResolver, IntervalRegister, RegClass, Resolver};
use proptest::prelude::*;

/// A random single-writer usage script for one register.
#[derive(Debug, Clone)]
enum Step {
    BeginWrite(usize),
    EndWrite,
    Read(usize), // resolver preference index
}

fn step_strategy(domain: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..domain).prop_map(Step::BeginWrite),
        Just(Step::EndWrite),
        (0..domain).prop_map(Step::Read),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn admissible_reads_always_include_a_truth(
        class in prop_oneof![
            Just(RegClass::Safe),
            Just(RegClass::Regular),
            Just(RegClass::Atomic)
        ],
        init in 0usize..4,
        steps in prop::collection::vec(step_strategy(4), 0..40),
    ) {
        let mut reg = IntervalRegister::new(class, 4, init);
        let mut pending: Option<usize> = None;
        for s in steps {
            match s {
                Step::BeginWrite(v) => {
                    if pending.is_none() {
                        reg.begin_write(v).unwrap();
                        pending = Some(v);
                    }
                }
                Step::EndWrite => {
                    if pending.take().is_some() {
                        reg.end_write().unwrap();
                    }
                }
                Step::Read(pref) => {
                    let admissible = reg.admissible_reads();
                    // Invariant: the stable value or the pending value is
                    // always admissible; the set is never empty; and for
                    // regular/atomic it only contains old/new.
                    prop_assert!(!admissible.is_empty());
                    let stable = reg.stable_value();
                    prop_assert!(
                        admissible.contains(&stable) || pending.is_some_and(|p| admissible.contains(&p))
                    );
                    if class != RegClass::Safe {
                        for &v in &admissible {
                            prop_assert!(v == stable || pending == Some(v));
                        }
                    }
                    let got = reg.read(&mut FixedResolver(pref));
                    prop_assert!(admissible.contains(&got));
                }
            }
        }
    }

    #[test]
    fn atomic_reads_never_invert(
        init in 0usize..2,
        v in 0usize..2,
        picks in prop::collection::vec(0usize..2, 1..12),
    ) {
        // One write interval; a sequence of overlapping reads with
        // arbitrary resolver choices must be monotone old→new.
        let mut reg = IntervalRegister::new(RegClass::Atomic, 2, init);
        reg.begin_write(v).unwrap();
        let mut seen_new = false;
        for pick in picks {
            let got = reg.read(&mut FixedResolver(pick));
            if got == v && v != init {
                seen_new = true;
            }
            if seen_new {
                prop_assert_eq!(got, v, "new-old inversion");
            }
        }
    }

    #[test]
    fn linearizable_histories_survive_interval_widening(
        writes in prop::collection::vec(0usize..4, 1..6),
    ) {
        // A sequential write/read history is linearizable; widening every
        // interval (more overlap) can only keep it linearizable.
        let mut h = Vec::new();
        let mut t = 0u64;
        for &w in &writes {
            h.push(HistOp::write(t, t + 1, w));
            h.push(HistOp::read(t + 2, t + 3, w));
            t += 4;
        }
        prop_assert!(is_linearizable(0, &h));
        let widened: Vec<HistOp> = h
            .iter()
            .map(|op| HistOp {
                invoke: op.invoke.saturating_sub(1),
                respond: op.respond + 1,
                ..*op
            })
            .collect();
        prop_assert!(is_linearizable(0, &widened));
    }

    #[test]
    fn linearizability_is_preserved_under_time_shift(
        shift in 1u64..1000,
        vals in prop::collection::vec(0usize..3, 1..5),
    ) {
        let mut h = Vec::new();
        let mut t = 0u64;
        for &v in &vals {
            h.push(HistOp::write(t, t + 1, v));
            t += 2;
        }
        h.push(HistOp::read(t, t + 1, *vals.last().unwrap()));
        let shifted: Vec<HistOp> = h
            .iter()
            .map(|op| HistOp {
                invoke: op.invoke + shift,
                respond: op.respond + shift,
                ..*op
            })
            .collect();
        prop_assert_eq!(is_linearizable(0, &h), is_linearizable(0, &shifted));
    }
}

#[test]
fn resolver_trait_objects_work() {
    struct AlwaysLast;
    impl Resolver for AlwaysLast {
        fn resolve(&mut self, admissible: &[usize]) -> usize {
            *admissible.last().unwrap()
        }
    }
    let mut reg = IntervalRegister::new(RegClass::Regular, 3, 0);
    reg.begin_write(2).unwrap();
    assert_eq!(reg.read(&mut AlwaysLast), 2);
}
