//! Fan-out: one logical 1-writer n-reader register from n per-reader 1W1R
//! copies — and why it preserves regularity but **not** atomicity.
//!
//! The paper's protocols are presented over 1-writer 2-reader registers,
//! with the full-paper remark that 1W1R suffices. The obvious bridge is
//! fan-out: the writer keeps one copy per reader and writes them one at a
//! time. Two classical facts about this bridge, both machine-checked here
//! over all interleavings × all adversarial resolutions:
//!
//! * **per-reader regularity is preserved** — each reader touches only its
//!   own copy, whose write interval is contained in the derived write's
//!   interval, so old-or-new semantics carry over;
//! * **multi-reader atomicity is NOT preserved** — two readers can disagree
//!   with the real-time order: reader 1 (whose copy is written first) sees
//!   the new value, and reader 2 *later* sees the old one from its
//!   still-unwritten copy. The negative test exhibits exactly this.
//!
//! This is why `cil-core`'s 1W1R protocol variant cannot simply "pretend"
//! the copies are one atomic register, and why its correctness argument has
//! to reason about copy incoherence directly (see
//! `cil_core::n_unbounded_1w1r`).

use super::{DerivedOp, StepMachine, Store};
use crate::taxonomy::Resolver;
use std::collections::VecDeque;

/// Writer half: a derived write updates the `n` per-reader copies in index
/// order, each as a begin/end interval on the underlying register.
#[derive(Debug)]
pub struct FanoutWriter {
    n: usize,
    queue: VecDeque<usize>,
    /// (value, next copy to begin, mid-write?) of the derived op in flight.
    cur: Option<(usize, usize, bool)>,
    start: u64,
    history: Vec<DerivedOp>,
}

impl FanoutWriter {
    /// Creates a writer over store registers `0..n` (the copies), scripted
    /// with the derived writes in `values`.
    pub fn new(n: usize, values: impl IntoIterator<Item = usize>) -> Self {
        FanoutWriter {
            n,
            queue: values.into_iter().collect(),
            cur: None,
            start: 0,
            history: Vec::new(),
        }
    }
}

impl StepMachine for FanoutWriter {
    fn step(&mut self, store: &mut Store, _resolver: &mut dyn Resolver) {
        if self.cur.is_none() {
            if let Some(v) = self.queue.pop_front() {
                self.cur = Some((v, 0, false));
                self.start = store.clock;
            } else {
                return;
            }
        }
        let (v, copy, mid) = self.cur.expect("in flight");
        if mid {
            store.regs[copy].end_write().expect("end");
            if copy + 1 < self.n {
                self.cur = Some((v, copy + 1, false));
            } else {
                self.cur = None;
                self.history.push(DerivedOp {
                    start: self.start,
                    end: store.clock,
                    is_write: true,
                    value: v,
                });
            }
        } else {
            store.regs[copy].begin_write(v).expect("begin");
            self.cur = Some((v, copy, true));
        }
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty() && self.cur.is_none()
    }

    fn history(&self) -> &[DerivedOp] {
        &self.history
    }
}

/// One reader of the fan-out: a derived read is a single primitive read of
/// its own copy.
#[derive(Debug)]
pub struct FanoutReader {
    copy: usize,
    remaining: usize,
    history: Vec<DerivedOp>,
}

impl FanoutReader {
    /// Creates reader `copy` (reads store register `copy`), scripted with
    /// `count` derived reads.
    pub fn new(copy: usize, count: usize) -> Self {
        FanoutReader {
            copy,
            remaining: count,
            history: Vec::new(),
        }
    }
}

impl StepMachine for FanoutReader {
    fn step(&mut self, store: &mut Store, resolver: &mut dyn Resolver) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let v = store.regs[self.copy].read(resolver);
        self.history.push(DerivedOp {
            start: store.clock,
            end: store.clock,
            is_write: false,
            value: v,
        });
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }

    fn history(&self) -> &[DerivedOp] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{check_regular, run_interleaved};
    use crate::exhaust::explore;
    use crate::linearize::{is_linearizable, HistOp};
    use crate::taxonomy::{IntervalRegister, RegClass};

    fn copies(n: usize, init: usize) -> Store {
        Store::new(
            (0..n)
                .map(|_| IntervalRegister::new(RegClass::Atomic, 2, init))
                .collect(),
        )
    }

    #[test]
    fn per_reader_regularity_is_preserved_exhaustively() {
        // Each reader individually sees a regular register.
        let leaves = explore(5_000_000, |ch| {
            let mut store = copies(2, 0);
            let mut w = FanoutWriter::new(2, [1, 0]);
            let mut r0 = FanoutReader::new(0, 2);
            let mut r1 = FanoutReader::new(1, 2);
            run_interleaved(&mut store, &mut [&mut w, &mut r0, &mut r1], ch);
            check_regular(0, w.history(), r0.history()).expect("reader 0 regularity");
            check_regular(0, w.history(), r1.history()).expect("reader 1 regularity");
        });
        assert!(leaves > 500, "exploration too shallow: {leaves}");
        assert!(leaves < 5_000_000, "hit leaf budget");
    }

    #[test]
    fn multi_reader_atomicity_fails_exhaustively_findable() {
        // Combined two-reader history: the fan-out must exhibit at least
        // one non-linearizable outcome (reader 0 sees new, reader 1 later
        // sees old from its lagging copy).
        let mut violations = 0u64;
        explore(5_000_000, |ch| {
            let mut store = copies(2, 0);
            let mut w = FanoutWriter::new(2, [1]);
            let mut r0 = FanoutReader::new(0, 1);
            let mut r1 = FanoutReader::new(1, 1);
            run_interleaved(&mut store, &mut [&mut w, &mut r0, &mut r1], ch);
            let mut h: Vec<HistOp> = w
                .history()
                .iter()
                .map(|o| HistOp::write(o.start, o.end, o.value))
                .collect();
            // Order the two reads by their (distinct) clock stamps.
            for r in [&r0, &r1] {
                for o in r.history() {
                    h.push(HistOp::read(o.start, o.end, o.value));
                }
            }
            if !is_linearizable(0, &h) {
                violations += 1;
            }
        });
        assert!(
            violations > 0,
            "fan-out unexpectedly linearizable in every interleaving"
        );
    }

    #[test]
    fn quiescent_fanout_reads_agree() {
        // With the write fully completed, every reader returns the new
        // value — incoherence is transient only.
        let mut store = copies(3, 0);
        let mut res = crate::taxonomy::FixedResolver(0);
        let mut w = FanoutWriter::new(3, [1]);
        while !w.is_done() {
            store.clock += 1;
            w.step(&mut store, &mut res);
        }
        for copy in 0..3 {
            let mut r = FanoutReader::new(copy, 1);
            store.clock += 1;
            r.step(&mut store, &mut res);
            assert_eq!(r.history()[0].value, 1, "copy {copy}");
        }
    }

    #[test]
    fn writer_completes_all_copies_before_finishing() {
        let mut store = copies(2, 0);
        let mut res = crate::taxonomy::FixedResolver(0);
        let mut w = FanoutWriter::new(2, [1]);
        // 2 copies × (begin + end) = 4 primitive steps.
        for _ in 0..3 {
            store.clock += 1;
            w.step(&mut store, &mut res);
            assert!(!w.is_done());
        }
        store.clock += 1;
        w.step(&mut store, &mut res);
        assert!(w.is_done());
        assert_eq!(w.history().len(), 1);
    }
}
