//! Classical register constructions, implemented as steppable machines.
//!
//! The paper rests on Lamport's result that its register model "can be
//! implemented from existing low level hardware". This module reproduces the
//! three construction layers that claim is built on:
//!
//! * [`regular_from_safe`] — a **regular** boolean register from a **safe**
//!   boolean register (write only when the value changes);
//! * [`multivalued`] — a **k-valued regular** register from boolean regular
//!   registers (set own bit, clear lower bits in descending order);
//! * [`atomic_from_regular`] — a **1W1R atomic** multivalued register from a
//!   regular one via sequence numbers (the classical unbounded-timestamp
//!   construction; boundedness is possible but out of the paper's scope);
//! * [`fanout`] — one 1WnR register from per-reader 1W1R copies: regular per
//!   reader, provably **not** atomic across readers (the negative result
//!   that motivates the 1W1R protocol variant's direct correctness
//!   argument).
//!
//! Every construction is a pair of machines (writer, reader) whose primitive
//! operations are steps on a [`Store`] of [`IntervalRegister`]s. Tests
//! enumerate **all interleavings and all adversarial overlap resolutions**
//! with [`crate::exhaust::Chooser`] and check the derived register's
//! semantics — regularity directly, atomicity via [`crate::linearize`].

pub mod atomic_from_regular;
pub mod fanout;
pub mod multivalued;
pub mod regular_from_safe;

use crate::exhaust::Chooser;
use crate::taxonomy::{IntervalRegister, Resolver};

/// The primitive storage a construction runs against.
#[derive(Debug, Clone)]
pub struct Store {
    /// The underlying primitive registers.
    pub regs: Vec<IntervalRegister>,
    /// Global step counter, advanced by the scenario driver; used to stamp
    /// derived-operation intervals for the semantic checkers.
    pub clock: u64,
}

impl Store {
    /// Creates a store over the given primitive registers.
    pub fn new(regs: Vec<IntervalRegister>) -> Self {
        Store { regs, clock: 0 }
    }
}

/// One derived operation recorded by a machine, with its interval stamped by
/// the store clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedOp {
    /// Clock at the first primitive step of the derived operation.
    pub start: u64,
    /// Clock at the last primitive step.
    pub end: u64,
    /// `true` for a write, `false` for a read.
    pub is_write: bool,
    /// Written value, or value returned by the read.
    pub value: usize,
}

/// A construction-side machine: performs one primitive step at a time.
pub trait StepMachine {
    /// Performs one primitive operation on `store`; overlapping reads are
    /// resolved through `resolver` (the adversary).
    fn step(&mut self, store: &mut Store, resolver: &mut dyn Resolver);
    /// Whether the machine has finished its scripted workload.
    fn is_done(&self) -> bool;
    /// The derived operations completed so far.
    fn history(&self) -> &[DerivedOp];
}

/// Runs `machines` to completion under a [`Chooser`]-driven schedule, with
/// the same chooser resolving register overlaps. Enumerating the chooser's
/// scripts therefore enumerates every interleaving × every resolution.
pub fn run_interleaved(store: &mut Store, machines: &mut [&mut dyn StepMachine], ch: &mut Chooser) {
    loop {
        let live: Vec<usize> = (0..machines.len())
            .filter(|&i| !machines[i].is_done())
            .collect();
        if live.is_empty() {
            break;
        }
        let pick = if live.len() == 1 {
            0
        } else {
            ch.choose(live.len())
        };
        store.clock += 1;
        machines[live[pick]].step(store, ch);
    }
}

/// Checks **regularity** of a derived single-writer register history:
/// every read must return either the value of the last write that completed
/// before the read started (or `init` if none), or the value of some write
/// overlapping the read.
///
/// `writes` and `reads` come from the machines' [`StepMachine::history`].
pub fn check_regular(init: usize, writes: &[DerivedOp], reads: &[DerivedOp]) -> Result<(), String> {
    for r in reads {
        debug_assert!(!r.is_write);
        // Last write completed strictly before the read began.
        let last_before = writes
            .iter()
            .filter(|w| w.end < r.start)
            .max_by_key(|w| w.end);
        let mut admissible: Vec<usize> = vec![last_before.map_or(init, |w| w.value)];
        for w in writes {
            // Overlap: intervals [w.start,w.end] and [r.start,r.end] intersect.
            if w.start <= r.end && r.start <= w.end {
                admissible.push(w.value);
            }
        }
        if !admissible.contains(&r.value) {
            return Err(format!(
                "read [{},{}] returned {} but admissible values are {:?}",
                r.start, r.end, r.value, admissible
            ));
        }
    }
    Ok(())
}

/// Convenience resolver adapter so a [`Chooser`] can act as the overlap
/// adversary inside `run_interleaved`.
impl Resolver for Chooser {
    fn resolve(&mut self, admissible: &[usize]) -> usize {
        admissible[self.choose(admissible.len())]
    }
}
