//! A k-valued regular register from boolean regular registers.
//!
//! Lamport's unary construction: the derived register is an array of `k`
//! boolean regular registers `b_0 … b_{k-1}`, of which (at quiescence)
//! exactly the bit of the current value below the lowest set index matters.
//!
//! * **write(v):** set `b_v := 1`, then clear `b_{v-1}, …, b_0` **in
//!   descending order**;
//! * **read:** scan `b_0, b_1, …` upward and return the index of the first
//!   set bit.
//!
//! The descending clear order is what makes this regular: a reader that has
//! passed a cleared low bit can only have done so after the writer set the
//! (higher or equal) new bit, so the scan terminates at the old value, the
//! new value, or the value of another overlapping write — never at a stale
//! intermediate. The exhaustive tests check exactly this, and a negative
//! control with ascending clears exhibits the classic violation.

use super::{DerivedOp, StepMachine, Store};
use crate::taxonomy::Resolver;
use std::collections::VecDeque;

/// Which order the writer clears lower bits in. `Descending` is Lamport's
/// (correct) construction; `Ascending` is the negative control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClearOrder {
    /// Clear `b_{v-1} … b_0` — regular.
    Descending,
    /// Clear `b_0 … b_{v-1}` — **not** regular.
    Ascending,
}

#[derive(Debug, Clone, Copy)]
enum WStep {
    Begin(usize, usize), // register index, bit value
    End(usize),
}

/// Writer half of the k-valued construction.
#[derive(Debug)]
pub struct UnaryWriter {
    plan: VecDeque<WStep>,
    /// Remaining derived writes after the one in progress.
    queue: VecDeque<usize>,
    cur: Option<(usize, u64)>, // (value being written, start clock)
    order: ClearOrder,
    history: Vec<DerivedOp>,
}

impl UnaryWriter {
    /// Creates a writer over bits `0..k` scripted with the derived writes in
    /// `values`, clearing in the given order.
    ///
    /// # Panics
    ///
    /// Panics if any scripted value is `>= k`.
    pub fn new(k: usize, values: impl IntoIterator<Item = usize>, order: ClearOrder) -> Self {
        let queue: VecDeque<usize> = values.into_iter().collect();
        assert!(queue.iter().all(|&v| v < k), "value outside domain");
        UnaryWriter {
            plan: VecDeque::new(),
            queue,
            cur: None,
            order,
            history: Vec::new(),
        }
    }

    fn schedule(&mut self, v: usize, clock: u64) {
        self.cur = Some((v, clock));
        self.plan.push_back(WStep::Begin(v, 1));
        self.plan.push_back(WStep::End(v));
        let lower: Vec<usize> = match self.order {
            ClearOrder::Descending => (0..v).rev().collect(),
            ClearOrder::Ascending => (0..v).collect(),
        };
        for j in lower {
            self.plan.push_back(WStep::Begin(j, 0));
            self.plan.push_back(WStep::End(j));
        }
    }
}

impl StepMachine for UnaryWriter {
    fn step(&mut self, store: &mut Store, _resolver: &mut dyn Resolver) {
        if self.plan.is_empty() {
            if let Some(v) = self.queue.pop_front() {
                self.schedule(v, store.clock);
            } else {
                return;
            }
        }
        match self.plan.pop_front().expect("plan nonempty") {
            WStep::Begin(r, bit) => store.regs[r].begin_write(bit).expect("begin"),
            WStep::End(r) => store.regs[r].end_write().expect("end"),
        }
        if self.plan.is_empty() {
            if let Some((v, start)) = self.cur.take() {
                self.history.push(DerivedOp {
                    start,
                    end: store.clock,
                    is_write: true,
                    value: v,
                });
            }
        }
    }

    fn is_done(&self) -> bool {
        self.plan.is_empty() && self.queue.is_empty()
    }

    fn history(&self) -> &[DerivedOp] {
        &self.history
    }
}

/// Reader half: scans bits upward, one primitive read per step.
#[derive(Debug)]
pub struct UnaryReader {
    k: usize,
    remaining: usize,
    scan: Option<(usize, u64)>, // (next bit to read, start clock)
    history: Vec<DerivedOp>,
}

impl UnaryReader {
    /// Creates a reader scripted to perform `count` derived reads over bits
    /// `0..k`.
    pub fn new(k: usize, count: usize) -> Self {
        UnaryReader {
            k,
            remaining: count,
            scan: None,
            history: Vec::new(),
        }
    }
}

impl StepMachine for UnaryReader {
    fn step(&mut self, store: &mut Store, resolver: &mut dyn Resolver) {
        if self.scan.is_none() {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            self.scan = Some((0, store.clock));
        }
        let (j, start) = self.scan.expect("scanning");
        let bit = store.regs[j].read(resolver);
        if bit == 1 {
            self.history.push(DerivedOp {
                start,
                end: store.clock,
                is_write: false,
                value: j,
            });
            self.scan = None;
        } else {
            assert!(
                j + 1 < self.k,
                "scan fell off the top: no bit set (construction broken)"
            );
            self.scan = Some((j + 1, start));
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0 && self.scan.is_none()
    }

    fn history(&self) -> &[DerivedOp] {
        &self.history
    }
}

/// Builds the store for a `k`-valued register holding `init`: `k` regular
/// boolean registers with only `b_init` set.
pub fn unary_store(k: usize, init: usize) -> Store {
    use crate::taxonomy::{IntervalRegister, RegClass};
    Store::new(
        (0..k)
            .map(|j| IntervalRegister::new(RegClass::Regular, 2, usize::from(j == init)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{check_regular, run_interleaved};
    use crate::exhaust::explore;
    use crate::taxonomy::FixedResolver;

    #[test]
    fn sequential_write_then_read_round_trips() {
        let k = 4;
        for v in 0..k {
            let mut store = unary_store(k, 0);
            let mut w = UnaryWriter::new(k, [v], ClearOrder::Descending);
            let mut res = FixedResolver(0);
            while !w.is_done() {
                store.clock += 1;
                w.step(&mut store, &mut res);
            }
            let mut r = UnaryReader::new(k, 1);
            while !r.is_done() {
                store.clock += 1;
                r.step(&mut store, &mut res);
            }
            assert_eq!(r.history()[0].value, v);
        }
    }

    #[test]
    fn descending_clear_is_regular_exhaustively() {
        // Old value 2, write 0 then write 2 again, concurrent reader.
        let leaves = explore(2_000_000, |ch| {
            let mut store = unary_store(3, 2);
            let mut w = UnaryWriter::new(3, [0, 2], ClearOrder::Descending);
            let mut r = UnaryReader::new(3, 2);
            run_interleaved(&mut store, &mut [&mut w, &mut r], ch);
            check_regular(2, w.history(), r.history()).expect("regularity violated");
        });
        assert!(leaves > 200, "exploration too shallow: {leaves}");
        assert!(leaves < 2_000_000, "hit leaf budget");
    }

    #[test]
    fn ascending_clear_violates_regularity() {
        // Classic counterexample: init value 1 leaves b1 set; w(0) sets b0
        // without clearing b1; then w(2) with ascending clears removes b0
        // before b1, so a reader that passes b0 after its clear but reaches
        // b1 before its clear returns the stale value 1 — neither the value
        // before the read (0) nor the overlapping write's (2).
        let mut violations = 0;
        explore(5_000_000, |ch| {
            let mut store = unary_store(3, 1);
            let mut w = UnaryWriter::new(3, [0, 2], ClearOrder::Ascending);
            let mut r = UnaryReader::new(3, 1);
            run_interleaved(&mut store, &mut [&mut w, &mut r], ch);
            if check_regular(1, w.history(), r.history()).is_err() {
                violations += 1;
            }
        });
        assert!(
            violations > 0,
            "expected ascending clears to break regularity"
        );
    }

    #[test]
    fn scan_never_falls_off_the_top() {
        // The assertion inside UnaryReader::step fires if the all-zero state
        // is ever observable; exhaustively confirm it is not.
        explore(2_000_000, |ch| {
            let mut store = unary_store(3, 0);
            let mut w = UnaryWriter::new(3, [2, 0], ClearOrder::Descending);
            let mut r = UnaryReader::new(3, 2);
            run_interleaved(&mut store, &mut [&mut w, &mut r], ch);
        });
    }
}
