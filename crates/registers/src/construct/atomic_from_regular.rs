//! A 1W1R atomic multivalued register from a regular one.
//!
//! The classical sequence-number construction: the underlying regular
//! register holds a pair `(seq, value)`; the writer increments `seq` on
//! every write, and the reader keeps the highest pair it has seen, returning
//! the cached pair whenever a (regular) read returns something older. A
//! regular register already guarantees old-or-new on overlap; the sequence
//! guard removes the remaining defect — *new-old inversion* — yielding
//! atomicity for a single reader.
//!
//! The paper uses this fact through Lamport: its protocols assume bounded
//! atomic 1W1R registers. This construction is the unbounded-counter version
//! (bounded versions exist but are far outside the paper's scope; the
//! counters grow only with the number of writes, mirroring how the paper's
//! §5 protocol tolerates unbounded `num` fields with geometrically vanishing
//! probability).

use super::{DerivedOp, StepMachine, Store};
use crate::taxonomy::{IntervalRegister, RegClass, Resolver};
use std::collections::VecDeque;

/// Encodes `(seq, value)` pairs into the dense domain of one
/// [`IntervalRegister`] with `value < k` and `seq < max_seq`.
#[derive(Debug, Clone, Copy)]
pub struct PairCodec {
    /// Number of distinct values.
    pub k: usize,
    /// Exclusive upper bound on sequence numbers (test-sized).
    pub max_seq: usize,
}

impl PairCodec {
    /// Size of the encoded domain.
    pub fn domain(&self) -> usize {
        self.k * self.max_seq
    }

    /// Encodes a pair.
    pub fn enc(&self, seq: usize, value: usize) -> usize {
        debug_assert!(value < self.k && seq < self.max_seq);
        seq * self.k + value
    }

    /// Decodes a pair.
    pub fn dec(&self, word: usize) -> (usize, usize) {
        (word / self.k, word % self.k)
    }
}

/// Writer half: stamps every derived write with the next sequence number.
#[derive(Debug)]
pub struct SeqWriter {
    codec: PairCodec,
    reg: usize,
    seq: usize,
    queue: VecDeque<usize>,
    mid: Option<(usize, u64)>,
    history: Vec<DerivedOp>,
}

impl SeqWriter {
    /// Creates a writer over store register `reg` scripted with `values`.
    pub fn new(codec: PairCodec, reg: usize, values: impl IntoIterator<Item = usize>) -> Self {
        SeqWriter {
            codec,
            reg,
            seq: 0,
            queue: values.into_iter().collect(),
            mid: None,
            history: Vec::new(),
        }
    }
}

impl StepMachine for SeqWriter {
    fn step(&mut self, store: &mut Store, _resolver: &mut dyn Resolver) {
        if let Some((v, start)) = self.mid.take() {
            store.regs[self.reg].end_write().expect("end");
            self.history.push(DerivedOp {
                start,
                end: store.clock,
                is_write: true,
                value: v,
            });
            return;
        }
        if let Some(v) = self.queue.pop_front() {
            self.seq += 1;
            store.regs[self.reg]
                .begin_write(self.codec.enc(self.seq, v))
                .expect("begin");
            self.mid = Some((v, store.clock));
        }
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty() && self.mid.is_none()
    }

    fn history(&self) -> &[DerivedOp] {
        &self.history
    }
}

/// Reader half: caches the newest pair seen; a stale regular read returns
/// the cache instead. Set `guard = false` for the negative control (raw
/// regular reads), which exhibits new-old inversion.
#[derive(Debug)]
pub struct SeqReader {
    codec: PairCodec,
    reg: usize,
    guard: bool,
    best_seq: usize,
    best_val: usize,
    remaining: usize,
    history: Vec<DerivedOp>,
}

impl SeqReader {
    /// Creates a reader scripted with `count` derived reads; `init` is the
    /// derived register's initial value (cached as sequence 0).
    pub fn new(codec: PairCodec, reg: usize, init: usize, count: usize, guard: bool) -> Self {
        SeqReader {
            codec,
            reg,
            guard,
            best_seq: 0,
            best_val: init,
            remaining: count,
            history: Vec::new(),
        }
    }
}

impl StepMachine for SeqReader {
    fn step(&mut self, store: &mut Store, resolver: &mut dyn Resolver) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let word = store.regs[self.reg].read(resolver);
        let (seq, val) = self.codec.dec(word);
        let ret = if !self.guard {
            val
        } else if seq >= self.best_seq {
            self.best_seq = seq;
            self.best_val = val;
            val
        } else {
            self.best_val
        };
        self.history.push(DerivedOp {
            start: store.clock,
            end: store.clock,
            is_write: false,
            value: ret,
        });
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }

    fn history(&self) -> &[DerivedOp] {
        &self.history
    }
}

/// Builds the underlying regular register for the construction, holding
/// `(seq = 0, init)`.
pub fn seq_store(codec: PairCodec, init: usize) -> Store {
    Store::new(vec![IntervalRegister::new(
        RegClass::Regular,
        codec.domain(),
        codec.enc(0, init),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::run_interleaved;
    use crate::exhaust::explore;
    use crate::linearize::{is_linearizable, HistOp};

    fn to_linearize_history(writes: &[DerivedOp], reads: &[DerivedOp]) -> Vec<HistOp> {
        writes
            .iter()
            .map(|w| HistOp::write(w.start, w.end, w.value))
            .chain(reads.iter().map(|r| HistOp::read(r.start, r.end, r.value)))
            .collect()
    }

    #[test]
    fn guarded_reader_is_atomic_exhaustively() {
        let codec = PairCodec { k: 3, max_seq: 4 };
        let leaves = explore(2_000_000, |ch| {
            let mut store = seq_store(codec, 0);
            let mut w = SeqWriter::new(codec, 0, [1, 2]);
            let mut r = SeqReader::new(codec, 0, 0, 3, true);
            run_interleaved(&mut store, &mut [&mut w, &mut r], ch);
            let h = to_linearize_history(w.history(), r.history());
            assert!(
                is_linearizable(0, &h),
                "atomicity violated in history {h:?}"
            );
        });
        assert!(leaves > 50, "exploration too shallow: {leaves}");
        assert!(leaves < 2_000_000, "hit leaf budget");
    }

    #[test]
    fn unguarded_reader_exhibits_new_old_inversion() {
        let codec = PairCodec { k: 3, max_seq: 4 };
        let mut violations = 0;
        explore(2_000_000, |ch| {
            let mut store = seq_store(codec, 0);
            let mut w = SeqWriter::new(codec, 0, [1, 2]);
            let mut r = SeqReader::new(codec, 0, 0, 3, false);
            run_interleaved(&mut store, &mut [&mut w, &mut r], ch);
            let h = to_linearize_history(w.history(), r.history());
            if !is_linearizable(0, &h) {
                violations += 1;
            }
        });
        assert!(violations > 0, "expected new-old inversion without guard");
    }

    #[test]
    fn sequential_semantics_match_plain_register() {
        let codec = PairCodec { k: 4, max_seq: 8 };
        let mut store = seq_store(codec, 3);
        let mut res = crate::taxonomy::FixedResolver(0);
        let mut w = SeqWriter::new(codec, 0, [1]);
        while !w.is_done() {
            store.clock += 1;
            w.step(&mut store, &mut res);
        }
        let mut r = SeqReader::new(codec, 0, 3, 1, true);
        store.clock += 1;
        r.step(&mut store, &mut res);
        assert_eq!(r.history()[0].value, 1);
    }

    #[test]
    fn codec_round_trips() {
        let codec = PairCodec { k: 5, max_seq: 7 };
        for seq in 0..7 {
            for v in 0..5 {
                assert_eq!(codec.dec(codec.enc(seq, v)), (seq, v));
            }
        }
    }
}
