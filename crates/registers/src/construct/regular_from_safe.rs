//! A regular boolean register from a safe boolean register.
//!
//! Lamport's first construction: a *safe* boolean register only misbehaves
//! when a read overlaps a write, and then it may return either boolean — but
//! "either boolean" is exactly `{old, new}` **provided the write actually
//! changes the value**. So a writer that suppresses writes of the current
//! value turns a safe boolean register into a regular one.
//!
//! The negative control [`TransparentWriter`] writes through unconditionally;
//! the exhaustive tests show regularity then fails (a read overlapping a
//! rewrite of `v` may return `1 - v`).

use super::{DerivedOp, StepMachine, Store};
use crate::taxonomy::Resolver;
use std::collections::VecDeque;

/// Writer half of the construction: writes the underlying safe register only
/// when the derived value changes.
#[derive(Debug)]
pub struct QuietWriter {
    reg: usize,
    last: usize,
    queue: VecDeque<usize>,
    mid_write: bool,
    cur_start: u64,
    history: Vec<DerivedOp>,
}

impl QuietWriter {
    /// Creates a writer over store register `reg` (initially holding
    /// `init`), scripted to perform the derived writes in `values`.
    pub fn new(reg: usize, init: usize, values: impl IntoIterator<Item = usize>) -> Self {
        QuietWriter {
            reg,
            last: init,
            queue: values.into_iter().collect(),
            mid_write: false,
            cur_start: 0,
            history: Vec::new(),
        }
    }
}

impl StepMachine for QuietWriter {
    fn step(&mut self, store: &mut Store, _resolver: &mut dyn Resolver) {
        if self.mid_write {
            store.regs[self.reg].end_write().expect("mid write");
            self.mid_write = false;
            let v = self.last;
            self.history.push(DerivedOp {
                start: self.cur_start,
                end: store.clock,
                is_write: true,
                value: v,
            });
            return;
        }
        let v = match self.queue.pop_front() {
            Some(v) => v,
            None => return,
        };
        if v == self.last {
            // Suppressed write: completes in this single (no-op) step.
            self.history.push(DerivedOp {
                start: store.clock,
                end: store.clock,
                is_write: true,
                value: v,
            });
        } else {
            store.regs[self.reg].begin_write(v).expect("begin");
            self.last = v;
            self.mid_write = true;
            self.cur_start = store.clock;
        }
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty() && !self.mid_write
    }

    fn history(&self) -> &[DerivedOp] {
        &self.history
    }
}

/// Negative control: writes through even when the value is unchanged.
/// Over a safe register this is **not** regular.
#[derive(Debug)]
pub struct TransparentWriter {
    reg: usize,
    queue: VecDeque<usize>,
    mid_write: Option<usize>,
    cur_start: u64,
    history: Vec<DerivedOp>,
}

impl TransparentWriter {
    /// Creates a write-through writer over store register `reg`.
    pub fn new(reg: usize, values: impl IntoIterator<Item = usize>) -> Self {
        TransparentWriter {
            reg,
            queue: values.into_iter().collect(),
            mid_write: None,
            cur_start: 0,
            history: Vec::new(),
        }
    }
}

impl StepMachine for TransparentWriter {
    fn step(&mut self, store: &mut Store, _resolver: &mut dyn Resolver) {
        if let Some(v) = self.mid_write.take() {
            store.regs[self.reg].end_write().expect("mid write");
            self.history.push(DerivedOp {
                start: self.cur_start,
                end: store.clock,
                is_write: true,
                value: v,
            });
            return;
        }
        if let Some(v) = self.queue.pop_front() {
            store.regs[self.reg].begin_write(v).expect("begin");
            self.mid_write = Some(v);
            self.cur_start = store.clock;
        }
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty() && self.mid_write.is_none()
    }

    fn history(&self) -> &[DerivedOp] {
        &self.history
    }
}

/// Reader half: a derived read is a single primitive read of the safe
/// register (resolved adversarially when it overlaps a write).
#[derive(Debug)]
pub struct DirectReader {
    reg: usize,
    remaining: usize,
    history: Vec<DerivedOp>,
}

impl DirectReader {
    /// Creates a reader scripted to perform `count` derived reads on `reg`.
    pub fn new(reg: usize, count: usize) -> Self {
        DirectReader {
            reg,
            remaining: count,
            history: Vec::new(),
        }
    }
}

impl StepMachine for DirectReader {
    fn step(&mut self, store: &mut Store, resolver: &mut dyn Resolver) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let v = store.regs[self.reg].read(resolver);
        self.history.push(DerivedOp {
            start: store.clock,
            end: store.clock,
            is_write: false,
            value: v,
        });
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }

    fn history(&self) -> &[DerivedOp] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{check_regular, run_interleaved};
    use crate::exhaust::explore;
    use crate::taxonomy::{IntervalRegister, RegClass};

    fn safe_bool(init: usize) -> Store {
        Store::new(vec![IntervalRegister::new(RegClass::Safe, 2, init)])
    }

    #[test]
    fn quiet_writer_yields_regular_register_exhaustively() {
        // All interleavings × all safe resolutions of 3 derived writes
        // (including a suppressed duplicate) against 3 derived reads.
        let leaves = explore(1_000_000, |ch| {
            let mut store = safe_bool(0);
            let mut w = QuietWriter::new(0, 0, [1, 1, 0]);
            let mut r = DirectReader::new(0, 3);
            run_interleaved(&mut store, &mut [&mut w, &mut r], ch);
            check_regular(0, w.history(), r.history()).expect("regularity violated");
        });
        assert!(leaves > 50, "exploration too shallow: {leaves} leaves");
        assert!(leaves < 1_000_000, "exploration hit the leaf budget");
    }

    #[test]
    fn transparent_writer_violates_regularity() {
        // Writing the *same* value through a safe register lets an
        // overlapping read return the other boolean: old = new = 0 but the
        // read may return 1.
        let mut violations = 0;
        explore(1_000_000, |ch| {
            let mut store = safe_bool(0);
            let mut w = TransparentWriter::new(0, [0]);
            let mut r = DirectReader::new(0, 1);
            run_interleaved(&mut store, &mut [&mut w, &mut r], ch);
            if check_regular(0, w.history(), r.history()).is_err() {
                violations += 1;
            }
        });
        assert!(violations > 0, "expected at least one regularity violation");
    }

    #[test]
    fn suppressed_write_performs_no_primitive_operation() {
        let mut store = safe_bool(0);
        let mut w = QuietWriter::new(0, 0, [0]);
        let mut r = crate::taxonomy::FixedResolver(0);
        store.clock += 1;
        w.step(&mut store, &mut r);
        assert!(w.is_done());
        assert!(!store.regs[0].write_in_progress());
        assert_eq!(w.history().len(), 1);
    }

    #[test]
    fn sequential_use_reads_latest_value() {
        let mut store = safe_bool(0);
        let mut w = QuietWriter::new(0, 0, [1]);
        let mut res = crate::taxonomy::FixedResolver(0);
        while !w.is_done() {
            store.clock += 1;
            w.step(&mut store, &mut res);
        }
        let mut r = DirectReader::new(0, 1);
        store.clock += 1;
        r.step(&mut store, &mut res);
        assert_eq!(r.history()[0].value, 1);
    }
}
