//! Test-and-set: the primitive the paper's model deliberately **excludes**,
//! and the boundary of its impossibility theorem.
//!
//! §1 of the paper: "the notion of atomic read and write is much less
//! restrictive than another type of atomic operation that is sometimes used
//! in the literature, namely atomic test-and-set. In fact, atomic
//! test-and-set seems to require quite stringent timing constraints on the
//! low level hardware." Theorem 4 (no deterministic coordination) holds for
//! read/write registers; this module shows the theorem is *sharp*: one
//! test-and-set object makes **deterministic** wait-free coordination
//! trivial, for any number of processors.
//!
//! [`TasCell`] is a hardware test-and-set bit (over `AtomicBool`), and
//! [`deterministic_consensus`] is the two-line protocol the paper's model
//! rules out: publish your input, TAS; the winner's input is the decision.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A hardware test-and-set bit: `test_and_set` atomically sets the bit and
/// reports whether the caller was the *first* to do so.
#[derive(Debug, Default)]
pub struct TasCell {
    taken: AtomicBool,
}

impl TasCell {
    /// A fresh, unset cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically sets the bit; returns `true` iff this call won (the bit
    /// was previously unset).
    pub fn test_and_set(&self) -> bool {
        !self.taken.swap(true, Ordering::SeqCst)
    }

    /// Whether the bit has been set.
    pub fn is_set(&self) -> bool {
        self.taken.load(Ordering::SeqCst)
    }
}

/// Deterministic wait-free n-processor consensus from **one** test-and-set
/// object plus per-processor atomic registers — impossible with read/write
/// alone (the paper's Theorem 4), trivial with TAS:
///
/// 1. every thread publishes its input in its own register;
/// 2. every thread TASes; exactly one wins and records its identity;
/// 3. everyone reads the winner's published input and decides it.
///
/// Returns the per-thread decisions (all equal, and equal to some input).
pub fn deterministic_consensus(inputs: &[u64]) -> Vec<u64> {
    let n = inputs.len();
    assert!(n >= 1, "need at least one processor");
    let published: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let tas = TasCell::new();
    // Winner identity register (written once, by the TAS winner).
    let winner = AtomicU64::new(u64::MAX);

    let mut decisions = vec![0u64; n];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|pid| {
                let published = &published;
                let tas = &tas;
                let winner = &winner;
                let input = inputs[pid];
                s.spawn(move || {
                    // 1. publish.
                    published[pid].store(input, Ordering::SeqCst);
                    // 2. race.
                    if tas.test_and_set() {
                        winner.store(pid as u64, Ordering::SeqCst);
                    }
                    // 3. decide the winner's published input. The winner
                    // published before TASing, so once `winner` is visible
                    // its input is too; losers spin only on the winner's
                    // one-shot write (bounded by the winner's two steps —
                    // still wait-free in the TAS model's terms).
                    let w = loop {
                        let w = winner.load(Ordering::SeqCst);
                        if w != u64::MAX {
                            break w as usize;
                        }
                        std::hint::spin_loop();
                    };
                    published[w].load(Ordering::SeqCst)
                })
            })
            .collect();
        for (pid, h) in handles.into_iter().enumerate() {
            decisions[pid] = h.join().expect("consensus thread panicked");
        }
    });
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tas_first_caller_wins_exactly_once() {
        let cell = TasCell::new();
        assert!(!cell.is_set());
        assert!(cell.test_and_set());
        assert!(!cell.test_and_set());
        assert!(!cell.test_and_set());
        assert!(cell.is_set());
    }

    #[test]
    fn tas_is_exclusive_under_contention() {
        let cell = TasCell::new();
        let wins = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    if cell.test_and_set() {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deterministic_consensus_agrees_on_an_input() {
        for trial in 0..50u64 {
            let inputs: Vec<u64> = (0..4).map(|i| i * 10 + trial).collect();
            let decisions = deterministic_consensus(&inputs);
            let first = decisions[0];
            assert!(decisions.iter().all(|&d| d == first), "{decisions:?}");
            assert!(inputs.contains(&first), "decided a non-input");
        }
    }

    #[test]
    fn deterministic_consensus_handles_two_processors() {
        // The exact setting of Theorem 4 — impossible with read/write,
        // one TAS object away from trivial.
        for trial in 0..100 {
            let decisions = deterministic_consensus(&[trial, 1000 + trial]);
            assert_eq!(decisions[0], decisions[1]);
        }
    }

    #[test]
    fn solo_processor_decides_its_own_input() {
        assert_eq!(deterministic_consensus(&[42]), vec![42]);
    }
}
