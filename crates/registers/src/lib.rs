//! Shared-register substrate for the Chor–Israeli–Li (PODC 1987) reproduction.
//!
//! The paper's communication medium is a collection of shared registers that
//! are **atomic with respect to single read and write operations** — no
//! test-and-set, no read-modify-write. All protocols in the paper use the
//! most restricted register class: bounded-size, single-writer registers.
//! This crate provides every register-level building block the rest of the
//! workspace needs:
//!
//! * [`access`] — the serialized shared-memory model used by the simulator:
//!   registers with declared writer/reader sets ([`RegisterSpec`]) and a
//!   [`SharedMemory`] that enforces those sets at runtime. This is the §2
//!   model of the paper made executable: because every execution of an
//!   atomic-register system is serializable, the memory applies one operation
//!   at a time and the interesting nondeterminism lives entirely in the
//!   scheduler (see `cil-sim`).
//! * [`taxonomy`] — Lamport's register taxonomy (*safe*, *regular*, *atomic*)
//!   with writes modelled as **intervals**: a read overlapping a write is
//!   resolved adversarially according to the register class. This is the
//!   low-level hardware the paper's footnote appeals to ("these registers can
//!   be implemented from existing low level hardware", citing Lamport).
//! * [`construct`] — the classical register constructions that justify that
//!   appeal, implemented as explicitly-steppable machines so tests can
//!   enumerate *all* interleavings: regular-from-safe booleans, multivalued
//!   regular from boolean regular, and atomic 1W1R from regular via sequence
//!   numbers.
//! * [`hw`] — a real-hardware backend ([`HwCell`]) over
//!   [`std::sync::atomic::AtomicU64`], demonstrating the paper's claim that
//!   the model "is implementable in existing technology": every register used
//!   by the paper's protocols packs into one machine word.
//! * [`linearize`] — a linearizability checker for single-register read/write
//!   histories, used to validate the constructions and the hardware backend.
//! * [`tas`] — the test-and-set primitive the paper's model *excludes*, with
//!   the trivial deterministic consensus it enables: the sharpness boundary
//!   of the paper's Theorem 4.
//!
//! # Example
//!
//! ```
//! use cil_registers::{RegisterSpec, SharedMemory, Pid, RegId, ReaderSet};
//!
//! // Two single-writer single-reader registers, as in the paper's
//! // two-processor protocol: P0 writes r0 / reads r1, and vice versa.
//! let specs = vec![
//!     RegisterSpec::new(RegId(0), "r0", Pid(0), ReaderSet::only([Pid(1)]), 0u8),
//!     RegisterSpec::new(RegId(1), "r1", Pid(1), ReaderSet::only([Pid(0)]), 0u8),
//! ];
//! let mut mem = SharedMemory::new(specs)?;
//! mem.write(Pid(0), RegId(0), 7)?;
//! assert_eq!(*mem.read(Pid(1), RegId(0))?, 7);
//! // Access control is enforced: P0 may not read its own register's pair.
//! assert!(mem.read(Pid(1), RegId(1)).is_err());
//! # Ok::<(), cil_registers::AccessError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod construct;
pub mod exhaust;
pub mod hw;
pub mod linearize;
pub mod tas;
pub mod taxonomy;

pub use access::{AccessError, Pid, ReaderSet, RegId, RegisterSpec, SharedMemory};
pub use hw::{HwCell, HwRegisterFile, Packable};
