//! Linearizability checking for single-register read/write histories.
//!
//! Atomicity in the paper (following Lamport) means every set of overlapping
//! reads and writes is equivalent to a sequence in which each operation is
//! shrunk to a point inside its interval. This module decides that property
//! for a concrete history: [`is_linearizable`] searches for such a sequence
//! (a Wing–Gong style depth-first search with memoization on the set of
//! linearized operations and the abstract register value).
//!
//! Used to validate the [`crate::construct::atomic_from_regular`]
//! construction and the [`crate::hw`] backend under real threads.

use std::collections::HashSet;

/// One completed operation in a register history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistOp {
    /// Invocation time (inclusive).
    pub invoke: u64,
    /// Response time (inclusive); must be `>= invoke`.
    pub respond: u64,
    /// `true` if this is a write.
    pub is_write: bool,
    /// Value written, or value the read returned.
    pub value: usize,
}

impl HistOp {
    /// A write of `value` over the interval `[invoke, respond]`.
    pub fn write(invoke: u64, respond: u64, value: usize) -> Self {
        HistOp {
            invoke,
            respond,
            is_write: true,
            value,
        }
    }

    /// A read returning `value` over the interval `[invoke, respond]`.
    pub fn read(invoke: u64, respond: u64, value: usize) -> Self {
        HistOp {
            invoke,
            respond,
            is_write: false,
            value,
        }
    }
}

/// Decides whether `history` is linearizable for a single register with
/// initial value `init`.
///
/// Real-time order: operation `a` precedes `b` iff `a.respond < b.invoke`.
/// A linearization is a total order extending real-time order in which every
/// read returns the value of the latest preceding write (or `init`).
///
/// # Panics
///
/// Panics if the history has more than 64 operations (the search uses a
/// bitmask; histories checked in tests are small by design).
pub fn is_linearizable(init: usize, history: &[HistOp]) -> bool {
    assert!(history.len() <= 64, "history too long for bitmask search");
    let n = history.len();
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    // dead[(mask, value)] = this residual state cannot be completed.
    let mut dead: HashSet<(u64, usize)> = HashSet::new();
    search(init, history, 0, full, &mut dead)
}

fn search(
    value: usize,
    hist: &[HistOp],
    done: u64,
    full: u64,
    dead: &mut HashSet<(u64, usize)>,
) -> bool {
    if done == full {
        return true;
    }
    if dead.contains(&(done, value)) {
        return false;
    }
    // An op may be linearized next iff no other *remaining* op responded
    // strictly before it was invoked.
    let remaining: Vec<usize> = (0..hist.len()).filter(|i| done & (1 << i) == 0).collect();
    let min_respond = remaining.iter().map(|&i| hist[i].respond).min().unwrap();
    for &i in &remaining {
        if hist[i].invoke > min_respond {
            continue; // some remaining op must be linearized before this one
        }
        let op = hist[i];
        let next_value = if op.is_write {
            op.value
        } else {
            if op.value != value {
                continue; // read would return the wrong value here
            }
            value
        };
        if search(next_value, hist, done | (1 << i), full, dead) {
            return true;
        }
    }
    dead.insert((done, value));
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_is_linearizable() {
        assert!(is_linearizable(0, &[]));
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = [
            HistOp::write(0, 1, 5),
            HistOp::read(2, 3, 5),
            HistOp::write(4, 5, 7),
            HistOp::read(6, 7, 7),
        ];
        assert!(is_linearizable(0, &h));
    }

    #[test]
    fn read_of_initial_value_is_linearizable() {
        let h = [HistOp::read(0, 1, 9)];
        assert!(is_linearizable(9, &h));
        assert!(!is_linearizable(0, &h));
    }

    #[test]
    fn stale_read_after_write_completes_is_rejected() {
        // Write of 1 completes at t=1; a read starting at t=2 returning the
        // initial value 0 is not linearizable.
        let h = [HistOp::write(0, 1, 1), HistOp::read(2, 3, 0)];
        assert!(!is_linearizable(0, &h));
    }

    #[test]
    fn overlapping_read_may_return_old_or_new() {
        let old = [HistOp::write(0, 4, 1), HistOp::read(1, 2, 0)];
        let new = [HistOp::write(0, 4, 1), HistOp::read(1, 2, 1)];
        assert!(is_linearizable(0, &old));
        assert!(is_linearizable(0, &new));
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Two sequential reads by the same reader, both overlapping one
        // write: (new, then old) is the classic atomicity violation.
        let h = [
            HistOp::write(0, 10, 1),
            HistOp::read(1, 2, 1), // saw new
            HistOp::read(3, 4, 0), // then saw old — inversion
        ];
        assert!(!is_linearizable(0, &h));
    }

    #[test]
    fn old_then_new_is_accepted() {
        let h = [
            HistOp::write(0, 10, 1),
            HistOp::read(1, 2, 0),
            HistOp::read(3, 4, 1),
        ];
        assert!(is_linearizable(0, &h));
    }

    #[test]
    fn value_not_written_anywhere_is_rejected() {
        let h = [HistOp::write(0, 1, 1), HistOp::read(0, 2, 3)];
        assert!(!is_linearizable(0, &h));
    }

    #[test]
    fn interleaved_writes_allow_either_order_when_overlapping() {
        // Two overlapping writes; a later read may see either one.
        let a = [
            HistOp::write(0, 5, 1),
            HistOp::write(2, 6, 2),
            HistOp::read(7, 8, 1),
        ];
        let b = [
            HistOp::write(0, 5, 1),
            HistOp::write(2, 6, 2),
            HistOp::read(7, 8, 2),
        ];
        assert!(is_linearizable(0, &a));
        assert!(is_linearizable(0, &b));
    }

    #[test]
    fn sequential_writes_fix_the_final_value() {
        // w(1) completes before w(2) starts: a read after both must see 2.
        let h = [
            HistOp::write(0, 1, 1),
            HistOp::write(2, 3, 2),
            HistOp::read(4, 5, 1),
        ];
        assert!(!is_linearizable(0, &h));
    }
}
