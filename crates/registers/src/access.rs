//! The serialized shared-memory model of the paper's §2.
//!
//! Atomicity of a register means that any set of overlapping reads and writes
//! is equivalent to some total order of the operations; the paper then argues
//! that an *entire system execution* can be serialized, so that without loss
//! of generality every operation happens at a distinct time instant. This
//! module is that serialized model made executable: [`SharedMemory`] applies
//! one operation at a time, and every register carries a declared writer and
//! reader set which is enforced on every access.
//!
//! The worst-case choice of *which* serialization occurs is not made here —
//! it is exactly the adversary scheduler's job, implemented in `cil-sim`.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Identifier of a processor, `0..n`.
///
/// The paper writes processors as `P_1 .. P_n`; we index from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(pub usize);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for Pid {
    fn from(i: usize) -> Self {
        Pid(i)
    }
}

/// Identifier of a shared register within a [`SharedMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegId(pub usize);

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<usize> for RegId {
    fn from(i: usize) -> Self {
        RegId(i)
    }
}

/// The set of processors allowed to read a register.
///
/// The paper associates with every register `r` a reader set `R_r` and a
/// writer set `W_r`. All of the paper's protocols need only single-writer
/// registers, so the writer is a single [`Pid`] in [`RegisterSpec`]; reader
/// sets vary between single-reader (§4, and the "full paper" variants) and
/// two-reader (§5, §6) registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReaderSet {
    /// Every processor may read (1-writer n-reader register).
    All,
    /// Only the listed processors may read.
    Only(Vec<Pid>),
}

impl ReaderSet {
    /// Builds a restricted reader set from any collection of pids.
    ///
    /// ```
    /// use cil_registers::{ReaderSet, Pid};
    /// let rs = ReaderSet::only([Pid(1), Pid(2)]);
    /// assert!(rs.allows(Pid(1)) && !rs.allows(Pid(0)));
    /// ```
    pub fn only<I: IntoIterator<Item = Pid>>(pids: I) -> Self {
        ReaderSet::Only(pids.into_iter().collect())
    }

    /// Whether `pid` is allowed to read.
    pub fn allows(&self, pid: Pid) -> bool {
        match self {
            ReaderSet::All => true,
            ReaderSet::Only(set) => set.contains(&pid),
        }
    }
}

/// Static description of one shared register: identity, single writer,
/// reader set, declared bit width and initial contents.
///
/// In every initial configuration of the paper all shared registers contain
/// the default value ⊥; the `init` field is that default, expressed in the
/// register's value domain.
#[derive(Debug, Clone)]
pub struct RegisterSpec<V> {
    /// Identifier; must equal the register's index in the memory.
    pub id: RegId,
    /// Human-readable name used in traces (e.g. `"r0"`).
    pub name: String,
    /// The unique processor allowed to write.
    pub writer: Pid,
    /// The processors allowed to read.
    pub readers: ReaderSet,
    /// Declared bit width of the register (`1..=64`).
    ///
    /// The paper's registers are *bounded size*; this field is the bound.
    /// Every value the owner may write must pack (see
    /// [`Packable`](crate::Packable)) into this many bits — a whole-protocol
    /// guarantee checked statically by `cil-audit`, and the substance of the
    /// R2 claim that single *bit-sized* 1W1R registers suffice. Defaults to
    /// a full machine word (64); narrow it with
    /// [`with_width`](RegisterSpec::with_width).
    pub width_bits: u32,
    /// Initial contents (the paper's ⊥).
    pub init: V,
}

impl<V> RegisterSpec<V> {
    /// Creates a new register description with the default full-word width.
    pub fn new(
        id: RegId,
        name: impl Into<String>,
        writer: Pid,
        readers: ReaderSet,
        init: V,
    ) -> Self {
        RegisterSpec {
            id,
            name: name.into(),
            writer,
            readers,
            width_bits: 64,
            init,
        }
    }

    /// Declares the register's bounded bit width (`1..=64`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 64.
    pub fn with_width(mut self, bits: u32) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "register width must be 1..=64 bits, got {bits}"
        );
        self.width_bits = bits;
        self
    }

    /// The largest word value representable at the declared width.
    pub fn max_word(&self) -> u64 {
        if self.width_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width_bits) - 1
        }
    }
}

/// Error returned when an operation violates the declared access structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// The register id does not exist in this memory.
    UnknownRegister(RegId),
    /// A processor attempted to write a register it does not own.
    NotWriter {
        /// Offending processor.
        pid: Pid,
        /// Register it tried to write.
        reg: RegId,
        /// The register's actual writer.
        owner: Pid,
    },
    /// A processor attempted to read a register outside its reader set.
    NotReader {
        /// Offending processor.
        pid: Pid,
        /// Register it tried to read.
        reg: RegId,
    },
    /// Register specs were inconsistent (duplicate or out-of-order ids).
    BadSpec(String),
    /// A stored word does not fit the register's declared bit width.
    ///
    /// Only raised by word-level backends ([`crate::HwRegisterFile`]); the
    /// typed [`SharedMemory`] stores values, not words, so widths are checked
    /// statically by `cil-audit` instead.
    WidthOverflow {
        /// Register whose width was exceeded.
        reg: RegId,
        /// The offending word.
        word: u64,
        /// The register's declared width in bits.
        width_bits: u32,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::UnknownRegister(r) => write!(f, "unknown register {r}"),
            AccessError::NotWriter { pid, reg, owner } => {
                write!(f, "{pid} is not the writer of {reg} (owner {owner})")
            }
            AccessError::NotReader { pid, reg } => {
                write!(f, "{pid} is not in the reader set of {reg}")
            }
            AccessError::BadSpec(msg) => write!(f, "bad register specification: {msg}"),
            AccessError::WidthOverflow {
                reg,
                word,
                width_bits,
            } => {
                write!(
                    f,
                    "word {word:#x} does not fit {reg}'s declared width of {width_bits} bits"
                )
            }
        }
    }
}

impl Error for AccessError {}

/// A serialized shared memory: an array of single-writer registers with
/// runtime-enforced access control.
///
/// One call to [`read`](SharedMemory::read) or [`write`](SharedMemory::write)
/// corresponds to one atomic operation of the paper's model — one *step*
/// (§2: "each step consists of a single input/output operation").
#[derive(Debug, Clone)]
pub struct SharedMemory<V> {
    specs: Vec<RegisterSpec<V>>,
    cells: Vec<V>,
    ops: u64,
}

impl<V: Clone> SharedMemory<V> {
    /// Builds a memory from register descriptions.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::BadSpec`] if ids are duplicated or do not match
    /// their index.
    pub fn new(specs: Vec<RegisterSpec<V>>) -> Result<Self, AccessError> {
        let mut seen = HashSet::new();
        for (i, s) in specs.iter().enumerate() {
            if s.id.0 != i {
                return Err(AccessError::BadSpec(format!(
                    "register '{}' has id {} but index {i}",
                    s.name, s.id
                )));
            }
            if !seen.insert(s.id) {
                return Err(AccessError::BadSpec(format!("duplicate id {}", s.id)));
            }
            if s.width_bits == 0 || s.width_bits > 64 {
                return Err(AccessError::BadSpec(format!(
                    "register '{}' declares width {} (must be 1..=64 bits)",
                    s.name, s.width_bits
                )));
            }
        }
        let cells = specs.iter().map(|s| s.init.clone()).collect();
        Ok(SharedMemory {
            specs,
            cells,
            ops: 0,
        })
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the memory has no registers.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The register descriptions this memory was built from.
    pub fn specs(&self) -> &[RegisterSpec<V>] {
        &self.specs
    }

    /// Raw view of all register contents, indexed by [`RegId`].
    ///
    /// This is the omniscient view the paper grants the adversary scheduler
    /// ("complete knowledge on both registers' contents and processors'
    /// internal states"); protocols themselves must go through
    /// [`read`](SharedMemory::read).
    pub fn snapshot(&self) -> &[V] {
        &self.cells
    }

    /// Total number of operations (reads + writes) applied so far.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Atomically reads register `reg` on behalf of processor `pid`.
    ///
    /// # Errors
    ///
    /// [`AccessError::NotReader`] if `pid` is outside the reader set,
    /// [`AccessError::UnknownRegister`] if `reg` does not exist.
    pub fn read(&mut self, pid: Pid, reg: RegId) -> Result<&V, AccessError> {
        let spec = self
            .specs
            .get(reg.0)
            .ok_or(AccessError::UnknownRegister(reg))?;
        if !spec.readers.allows(pid) {
            return Err(AccessError::NotReader { pid, reg });
        }
        self.ops += 1;
        Ok(&self.cells[reg.0])
    }

    /// Atomically writes `value` into register `reg` on behalf of `pid`.
    ///
    /// Returns the previous contents (useful for traces).
    ///
    /// # Errors
    ///
    /// [`AccessError::NotWriter`] if `pid` does not own the register,
    /// [`AccessError::UnknownRegister`] if `reg` does not exist.
    pub fn write(&mut self, pid: Pid, reg: RegId, value: V) -> Result<V, AccessError> {
        let spec = self
            .specs
            .get(reg.0)
            .ok_or(AccessError::UnknownRegister(reg))?;
        if spec.writer != pid {
            return Err(AccessError::NotWriter {
                pid,
                reg,
                owner: spec.writer,
            });
        }
        self.ops += 1;
        Ok(std::mem::replace(&mut self.cells[reg.0], value))
    }

    /// Resets every register to its initial contents and zeroes the op count.
    pub fn reset(&mut self) {
        for (cell, spec) in self.cells.iter_mut().zip(&self.specs) {
            *cell = spec.init.clone();
        }
        self.ops = 0;
    }
}

/// Convenience: builds the canonical one-register-per-processor layout used
/// by all of the paper's protocols (register `i` is written by `P_i`).
///
/// `readers(i)` gives the reader set of processor `i`'s register.
///
/// ```
/// use cil_registers::{access::per_process_registers, ReaderSet, Pid};
/// // §5 layout: 1-writer 2-reader registers for three processors.
/// let specs = per_process_registers(3, 0u32, |_| ReaderSet::All);
/// assert_eq!(specs.len(), 3);
/// assert_eq!(specs[2].writer, Pid(2));
/// ```
pub fn per_process_registers<V: Clone>(
    n: usize,
    init: V,
    readers: impl Fn(usize) -> ReaderSet,
) -> Vec<RegisterSpec<V>> {
    (0..n)
        .map(|i| RegisterSpec::new(RegId(i), format!("r{i}"), Pid(i), readers(i), init.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_reg_memory() -> SharedMemory<u8> {
        let specs = vec![
            RegisterSpec::new(RegId(0), "r0", Pid(0), ReaderSet::only([Pid(1)]), 0),
            RegisterSpec::new(RegId(1), "r1", Pid(1), ReaderSet::only([Pid(0)]), 0),
        ];
        SharedMemory::new(specs).unwrap()
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut mem = two_reg_memory();
        let prev = mem.write(Pid(0), RegId(0), 42).unwrap();
        assert_eq!(prev, 0);
        assert_eq!(*mem.read(Pid(1), RegId(0)).unwrap(), 42);
    }

    #[test]
    fn writer_exclusivity_is_enforced() {
        let mut mem = two_reg_memory();
        let err = mem.write(Pid(1), RegId(0), 1).unwrap_err();
        assert_eq!(
            err,
            AccessError::NotWriter {
                pid: Pid(1),
                reg: RegId(0),
                owner: Pid(0)
            }
        );
    }

    #[test]
    fn reader_set_is_enforced() {
        let mut mem = two_reg_memory();
        // P0 is not in the reader set of its own register r0 (1W1R layout).
        let err = mem.read(Pid(0), RegId(0)).unwrap_err();
        assert_eq!(
            err,
            AccessError::NotReader {
                pid: Pid(0),
                reg: RegId(0)
            }
        );
    }

    #[test]
    fn unknown_register_is_an_error() {
        let mut mem = two_reg_memory();
        assert_eq!(
            mem.read(Pid(0), RegId(9)).unwrap_err(),
            AccessError::UnknownRegister(RegId(9))
        );
        assert_eq!(
            mem.write(Pid(0), RegId(9), 0).unwrap_err(),
            AccessError::UnknownRegister(RegId(9))
        );
    }

    #[test]
    fn mismatched_ids_are_rejected() {
        let specs = vec![RegisterSpec::new(
            RegId(5),
            "bad",
            Pid(0),
            ReaderSet::All,
            0u8,
        )];
        assert!(matches!(
            SharedMemory::new(specs),
            Err(AccessError::BadSpec(_))
        ));
    }

    #[test]
    fn op_count_tracks_reads_and_writes() {
        let mut mem = two_reg_memory();
        mem.write(Pid(0), RegId(0), 1).unwrap();
        mem.read(Pid(1), RegId(0)).unwrap();
        mem.read(Pid(1), RegId(0)).unwrap();
        assert_eq!(mem.op_count(), 3);
    }

    #[test]
    fn reset_restores_initial_contents() {
        let mut mem = two_reg_memory();
        mem.write(Pid(0), RegId(0), 7).unwrap();
        mem.reset();
        assert_eq!(mem.snapshot(), &[0, 0]);
        assert_eq!(mem.op_count(), 0);
    }

    #[test]
    fn per_process_layout_assigns_writers() {
        let specs = per_process_registers(4, 0u8, |i| {
            ReaderSet::only((0..4).filter(|&j| j != i).map(Pid))
        });
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.writer, Pid(i));
            assert!(!s.readers.allows(Pid(i)));
        }
    }

    #[test]
    fn all_reader_set_allows_everyone() {
        assert!(ReaderSet::All.allows(Pid(17)));
    }

    #[test]
    fn width_declaration_round_trips() {
        let s = RegisterSpec::new(RegId(0), "r0", Pid(0), ReaderSet::All, 0u8);
        assert_eq!(s.width_bits, 64);
        assert_eq!(s.max_word(), u64::MAX);
        let narrow = s.with_width(2);
        assert_eq!(narrow.width_bits, 2);
        assert_eq!(narrow.max_word(), 3);
    }

    #[test]
    fn zero_width_spec_is_rejected() {
        let mut s = RegisterSpec::new(RegId(0), "r0", Pid(0), ReaderSet::All, 0u8);
        s.width_bits = 0; // bypass the with_width assertion
        assert!(matches!(
            SharedMemory::new(vec![s]),
            Err(AccessError::BadSpec(_))
        ));
    }

    #[test]
    #[should_panic(expected = "width must be 1..=64")]
    fn oversized_width_panics_in_builder() {
        let _ = RegisterSpec::new(RegId(0), "r0", Pid(0), ReaderSet::All, 0u8).with_width(65);
    }
}
