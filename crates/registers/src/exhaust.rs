//! Exhaustive enumeration of branching scenarios.
//!
//! Several parts of this workspace need to quantify over *all* ways a finite
//! nondeterministic scenario can unfold: all interleavings of two register
//! machines × all adversarial overlap resolutions, all schedules of a short
//! protocol prefix, etc. [`Chooser`] turns such a scenario into an enumerable
//! tree: the scenario calls [`Chooser::choose`] at every nondeterministic
//! point, and [`explore`] replays the scenario once per leaf of the choice
//! tree.
//!
//! Replay-based enumeration (rather than state cloning) keeps the scenario
//! code completely ordinary — it is just a function `FnMut(&mut Chooser)`.
//!
//! # Example
//!
//! ```
//! use cil_registers::exhaust::explore;
//!
//! // A scenario with a binary and then a ternary choice has 6 leaves.
//! let mut outcomes = Vec::new();
//! let leaves = explore(usize::MAX, |ch| {
//!     let a = ch.choose(2);
//!     let b = ch.choose(3);
//!     outcomes.push((a, b));
//! });
//! assert_eq!(leaves, 6);
//! assert_eq!(outcomes.len(), 6);
//! ```

/// A replayable source of nondeterministic choices.
///
/// During each replay, the first choices follow the current script; any
/// choice beyond the script's end takes branch 0 and extends the script.
#[derive(Debug, Default)]
pub struct Chooser {
    /// `(chosen, arity)` per choice point, in scenario order.
    script: Vec<(usize, usize)>,
    pos: usize,
    /// Choice points `0..floor` are pinned: [`Chooser::advance`] never pops
    /// below them. [`explore_par`] pins the root choice so each worker
    /// enumerates exactly one root subtree.
    floor: usize,
}

impl Chooser {
    /// Picks a branch in `0..arity` for the current choice point.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`, or if a replay reaches this choice point with
    /// a different arity than a previous replay did (the scenario must be a
    /// deterministic function of its choices).
    pub fn choose(&mut self, arity: usize) -> usize {
        assert!(arity > 0, "cannot choose among zero branches");
        if self.pos < self.script.len() {
            let (chosen, recorded) = self.script[self.pos];
            assert_eq!(
                recorded, arity,
                "scenario is not a deterministic function of its choices \
                 (arity changed at point {})",
                self.pos
            );
            self.pos += 1;
            chosen
        } else {
            self.script.push((0, arity));
            self.pos += 1;
            0
        }
    }

    /// Advances the script to the lexicographically next leaf (within the
    /// pinned prefix, if any). Returns `false` when the (sub)tree is
    /// exhausted.
    fn advance(&mut self) -> bool {
        while self.script.len() > self.floor {
            let (chosen, arity) = self.script.pop().expect("len > floor");
            if chosen + 1 < arity {
                self.script.push((chosen + 1, arity));
                return true;
            }
        }
        false
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }
}

/// Runs `scenario` once per leaf of its choice tree and returns the number of
/// leaves explored.
///
/// `max_leaves` guards against accidentally unbounded trees: exploration
/// stops (and the count so far is returned) once the bound is hit, so tests
/// should assert the returned count is *below* their bound.
pub fn explore<F: FnMut(&mut Chooser)>(max_leaves: usize, mut scenario: F) -> usize {
    let mut ch = Chooser::default();
    let mut leaves = 0;
    loop {
        ch.rewind();
        scenario(&mut ch);
        leaves += 1;
        if leaves >= max_leaves || !ch.advance() {
            return leaves;
        }
    }
}

/// Runs `scenario` once per leaf across a worker pool, counting leaves and
/// leaves the scenario flags (e.g. checker violations).
///
/// Workers claim root-choice branches from a shared cursor and enumerate
/// each claimed subtree with a [`Chooser`] whose root choice is pinned, so
/// the union of subtrees is exactly the serial [`explore`] tree and the
/// returned `(leaves, flagged)` counts equal the serial ones at any worker
/// count — provided the tree has fewer than `max_leaves` leaves. (If the
/// guard trips, the counts still total `max_leaves` but *which* leaves ran
/// depends on scheduling; treat the guard as a runaway brake, not a
/// sampling mechanism.) `jobs = 0` means available parallelism, `1` runs on
/// the calling thread.
///
/// Unlike [`explore`]'s `FnMut` closure, the scenario here is a shared
/// `Fn`: per-leaf state belongs inside the closure, and the one bit it may
/// report out per leaf is the return value.
pub fn explore_par<F>(max_leaves: usize, jobs: usize, scenario: F) -> (usize, u64)
where
    F: Fn(&mut Chooser) -> bool + Sync,
{
    explore_par_observed(max_leaves, jobs, None, scenario)
}

/// [`explore_par`] with an optional live progress meter ticked once per
/// leaf.
///
/// The meter only accumulates an atomic counter and throttles its own
/// rendering, so attaching it cannot change the `(leaves, flagged)`
/// counts; it exists to make long enumerations (e.g. the overlap-semantics
/// checkers) visibly alive on stderr.
pub fn explore_par_observed<F>(
    max_leaves: usize,
    jobs: usize,
    progress: Option<&cil_obs::ProgressMeter>,
    scenario: F,
) -> (usize, u64)
where
    F: Fn(&mut Chooser) -> bool + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let jobs = if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    };

    // Probe the root choice point's arity (replaying leaf 0 of branch 0;
    // its counts are discarded and branch 0's worker re-runs it).
    let mut probe = Chooser::default();
    let probe_flag = scenario(&mut probe);
    if probe.script.is_empty() {
        // No choice points: a single leaf, already run.
        if let Some(meter) = progress {
            meter.tick(1);
        }
        return (1, u64::from(probe_flag));
    }
    let root_arity = probe.script[0].1;
    drop(probe);

    let enumerate_branch = |branch: usize, budget: &AtomicUsize| -> (usize, u64) {
        let mut ch = Chooser {
            script: vec![(branch, root_arity)],
            pos: 0,
            floor: 1,
        };
        let mut leaves = 0usize;
        let mut flagged = 0u64;
        loop {
            if budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_err()
            {
                break;
            }
            ch.rewind();
            if scenario(&mut ch) {
                flagged += 1;
            }
            leaves += 1;
            if let Some(meter) = progress {
                meter.tick(1);
            }
            if !ch.advance() {
                break;
            }
        }
        (leaves, flagged)
    };

    let budget = AtomicUsize::new(max_leaves);
    if jobs <= 1 {
        let mut totals = (0usize, 0u64);
        for branch in 0..root_arity {
            let (l, f) = enumerate_branch(branch, &budget);
            totals.0 += l;
            totals.1 += f;
        }
        return totals;
    }

    let cursor = AtomicUsize::new(0);
    let workers = jobs.min(root_arity);
    let mut totals = (0usize, 0u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = (0usize, 0u64);
                    loop {
                        let branch = cursor.fetch_add(1, Ordering::Relaxed);
                        if branch >= root_arity {
                            break;
                        }
                        let (l, f) = enumerate_branch(branch, &budget);
                        local.0 += l;
                        local.1 += f;
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            let (l, f) = handle.join().expect("exploration worker panicked");
            totals.0 += l;
            totals.1 += f;
        }
    });
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_all_leaves_in_order() {
        let mut seen = Vec::new();
        let n = explore(usize::MAX, |ch| {
            let a = ch.choose(2);
            let b = ch.choose(2);
            seen.push((a, b));
        });
        assert_eq!(n, 4);
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn handles_data_dependent_branching() {
        // Left subtree has 1 leaf, right subtree has 3.
        let mut count = 0;
        let n = explore(usize::MAX, |ch| {
            if ch.choose(2) == 1 {
                ch.choose(3);
            }
            count += 1;
        });
        assert_eq!(n, 4);
        assert_eq!(count, 4);
    }

    #[test]
    fn single_leaf_scenario_runs_once() {
        let n = explore(usize::MAX, |_ch| {});
        assert_eq!(n, 1);
    }

    #[test]
    fn respects_leaf_budget() {
        let n = explore(5, |ch| {
            ch.choose(4);
            ch.choose(4);
        });
        assert_eq!(n, 5);
    }

    #[test]
    fn parallel_counts_match_serial_at_any_worker_count() {
        // A lopsided, data-dependent tree with flagged leaves.
        let scenario_leaves = |ch: &mut Chooser| -> bool {
            let a = ch.choose(3);
            let b = if a == 1 { ch.choose(4) } else { ch.choose(2) };
            let c = ch.choose(2);
            a == 1 && b == 2 && c == 1
        };
        let mut serial_flagged = 0u64;
        let serial_leaves = explore(usize::MAX, |ch| {
            if scenario_leaves(ch) {
                serial_flagged += 1;
            }
        });
        for jobs in [1, 2, 3, 8] {
            let (leaves, flagged) = explore_par(usize::MAX, jobs, scenario_leaves);
            assert_eq!(leaves, serial_leaves, "jobs = {jobs}");
            assert_eq!(flagged, serial_flagged, "jobs = {jobs}");
        }
    }

    #[test]
    fn observed_exploration_ticks_once_per_leaf() {
        let scenario = |ch: &mut Chooser| -> bool {
            let a = ch.choose(3);
            ch.choose(2);
            a == 2
        };
        let (plain_leaves, plain_flagged) = explore_par(usize::MAX, 4, scenario);
        let meter = cil_obs::ProgressMeter::new("exhaust", None).quiet();
        let (leaves, flagged) = explore_par_observed(usize::MAX, 4, Some(&meter), scenario);
        assert_eq!((leaves, flagged), (plain_leaves, plain_flagged));
        assert_eq!(meter.done(), leaves as u64);
    }

    #[test]
    fn parallel_handles_choiceless_scenarios() {
        let (leaves, flagged) = explore_par(usize::MAX, 4, |_ch| true);
        assert_eq!((leaves, flagged), (1, 1));
    }

    #[test]
    fn parallel_respects_leaf_budget() {
        let (leaves, _) = explore_par(5, 2, |ch| {
            ch.choose(4);
            ch.choose(4);
            false
        });
        assert_eq!(leaves, 5);
    }

    #[test]
    #[should_panic(expected = "arity changed")]
    fn nondeterministic_scenarios_are_detected() {
        let mut flip = 2;
        explore(usize::MAX, |ch| {
            flip = if flip == 2 { 3 } else { 2 };
            ch.choose(flip);
            ch.choose(2);
        });
    }
}
