//! Exhaustive enumeration of branching scenarios.
//!
//! Several parts of this workspace need to quantify over *all* ways a finite
//! nondeterministic scenario can unfold: all interleavings of two register
//! machines × all adversarial overlap resolutions, all schedules of a short
//! protocol prefix, etc. [`Chooser`] turns such a scenario into an enumerable
//! tree: the scenario calls [`Chooser::choose`] at every nondeterministic
//! point, and [`explore`] replays the scenario once per leaf of the choice
//! tree.
//!
//! Replay-based enumeration (rather than state cloning) keeps the scenario
//! code completely ordinary — it is just a function `FnMut(&mut Chooser)`.
//!
//! # Example
//!
//! ```
//! use cil_registers::exhaust::explore;
//!
//! // A scenario with a binary and then a ternary choice has 6 leaves.
//! let mut outcomes = Vec::new();
//! let leaves = explore(usize::MAX, |ch| {
//!     let a = ch.choose(2);
//!     let b = ch.choose(3);
//!     outcomes.push((a, b));
//! });
//! assert_eq!(leaves, 6);
//! assert_eq!(outcomes.len(), 6);
//! ```

/// A replayable source of nondeterministic choices.
///
/// During each replay, the first choices follow the current script; any
/// choice beyond the script's end takes branch 0 and extends the script.
#[derive(Debug, Default)]
pub struct Chooser {
    /// `(chosen, arity)` per choice point, in scenario order.
    script: Vec<(usize, usize)>,
    pos: usize,
}

impl Chooser {
    /// Picks a branch in `0..arity` for the current choice point.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`, or if a replay reaches this choice point with
    /// a different arity than a previous replay did (the scenario must be a
    /// deterministic function of its choices).
    pub fn choose(&mut self, arity: usize) -> usize {
        assert!(arity > 0, "cannot choose among zero branches");
        if self.pos < self.script.len() {
            let (chosen, recorded) = self.script[self.pos];
            assert_eq!(
                recorded, arity,
                "scenario is not a deterministic function of its choices \
                 (arity changed at point {})",
                self.pos
            );
            self.pos += 1;
            chosen
        } else {
            self.script.push((0, arity));
            self.pos += 1;
            0
        }
    }

    /// Advances the script to the lexicographically next leaf.
    /// Returns `false` when the tree is exhausted.
    fn advance(&mut self) -> bool {
        while let Some((chosen, arity)) = self.script.pop() {
            if chosen + 1 < arity {
                self.script.push((chosen + 1, arity));
                return true;
            }
        }
        false
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }
}

/// Runs `scenario` once per leaf of its choice tree and returns the number of
/// leaves explored.
///
/// `max_leaves` guards against accidentally unbounded trees: exploration
/// stops (and the count so far is returned) once the bound is hit, so tests
/// should assert the returned count is *below* their bound.
pub fn explore<F: FnMut(&mut Chooser)>(max_leaves: usize, mut scenario: F) -> usize {
    let mut ch = Chooser::default();
    let mut leaves = 0;
    loop {
        ch.rewind();
        scenario(&mut ch);
        leaves += 1;
        if leaves >= max_leaves || !ch.advance() {
            return leaves;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_all_leaves_in_order() {
        let mut seen = Vec::new();
        let n = explore(usize::MAX, |ch| {
            let a = ch.choose(2);
            let b = ch.choose(2);
            seen.push((a, b));
        });
        assert_eq!(n, 4);
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn handles_data_dependent_branching() {
        // Left subtree has 1 leaf, right subtree has 3.
        let mut count = 0;
        let n = explore(usize::MAX, |ch| {
            if ch.choose(2) == 1 {
                ch.choose(3);
            }
            count += 1;
        });
        assert_eq!(n, 4);
        assert_eq!(count, 4);
    }

    #[test]
    fn single_leaf_scenario_runs_once() {
        let n = explore(usize::MAX, |_ch| {});
        assert_eq!(n, 1);
    }

    #[test]
    fn respects_leaf_budget() {
        let n = explore(5, |ch| {
            ch.choose(4);
            ch.choose(4);
        });
        assert_eq!(n, 5);
    }

    #[test]
    #[should_panic(expected = "arity changed")]
    fn nondeterministic_scenarios_are_detected() {
        let mut flip = 2;
        explore(usize::MAX, |ch| {
            flip = if flip == 2 { 3 } else { 2 };
            ch.choose(flip);
            ch.choose(2);
        });
    }
}
