//! Real-hardware register backend over [`std::sync::atomic::AtomicU64`].
//!
//! The paper's closing claim is that its model "is implementable in existing
//! technology". On any modern machine a single aligned word already *is* an
//! atomic multi-reader multi-writer register — strictly stronger than the
//! bounded 1W1R registers the protocols need. Every register used by the
//! paper's protocols packs into one `u64` (see [`Packable`]), so
//! [`HwRegisterFile`] can host any workspace protocol on real OS threads
//! (driven by `cil-sim`'s thread executor).
//!
//! Note the deliberate restriction: the API exposes **only** `load` and
//! `store` — no compare-and-swap, no fetch-and-add — because the paper's
//! model has atomic reads and writes but *no test-and-set*.

use crate::access::{AccessError, Pid, RegId, RegisterSpec};
use std::sync::atomic::{AtomicU64, Ordering};

/// Values that fit into one machine word, so they can live in a real
/// hardware register cell.
///
/// Implementations must round-trip: `Self::unpack(v.pack()) == v`.
pub trait Packable: Sized + Clone {
    /// Encodes the value into a word.
    fn pack(&self) -> u64;
    /// Decodes a word produced by [`pack`](Packable::pack).
    fn unpack(word: u64) -> Self;
}

impl Packable for u64 {
    fn pack(&self) -> u64 {
        *self
    }
    fn unpack(word: u64) -> Self {
        word
    }
}

impl Packable for bool {
    fn pack(&self) -> u64 {
        u64::from(*self)
    }
    fn unpack(word: u64) -> Self {
        word != 0
    }
}

impl<T: Packable> Packable for Option<T> {
    /// Packs `None` as 0 and `Some(v)` as `v.pack() + 1`; inner packings must
    /// therefore stay below `u64::MAX`.
    fn pack(&self) -> u64 {
        match self {
            None => 0,
            Some(v) => v
                .pack()
                .checked_add(1)
                .expect("inner packing must leave headroom for Option"),
        }
    }
    fn unpack(word: u64) -> Self {
        if word == 0 {
            None
        } else {
            Some(T::unpack(word - 1))
        }
    }
}

/// One hardware register cell: an atomic word with plain load/store.
#[derive(Debug, Default)]
pub struct HwCell(AtomicU64);

impl HwCell {
    /// Creates a cell holding `init`.
    pub fn new(init: u64) -> Self {
        HwCell(AtomicU64::new(init))
    }

    /// Atomic load (sequentially consistent, the strongest real-hardware
    /// analogue of the paper's global-time atomicity).
    pub fn load(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Atomic store.
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::SeqCst);
    }
}

/// A bank of hardware register cells with the same access discipline as
/// [`crate::SharedMemory`], shareable across threads (`&HwRegisterFile` is
/// all a thread needs).
///
/// Cells hold raw words; the typed [`read`](HwRegisterFile::read) /
/// [`write`](HwRegisterFile::write) pair uses [`Packable`], while the
/// word-level [`read_word`](HwRegisterFile::read_word) /
/// [`write_word`](HwRegisterFile::write_word) pair lets callers bring their
/// own encoding (register types that cannot implement `Packable` uniformly,
/// e.g. per-register codecs). Every store path enforces the declared
/// [`RegisterSpec`] bit width — a word that does not fit the register is
/// rejected with [`AccessError::WidthOverflow`], mirroring the bounded
/// registers of the paper's model.
#[derive(Debug)]
pub struct HwRegisterFile<V> {
    specs: Vec<RegisterSpec<V>>,
    cells: Vec<HwCell>,
    /// Packed initial contents, kept so [`reset`](HwRegisterFile::reset)
    /// can restore the file without re-validating or re-allocating.
    init_words: Vec<u64>,
}

impl<V> HwRegisterFile<V> {
    /// Builds the file from register descriptions, packing each initial
    /// value into its cell via `pack`.
    ///
    /// Use this constructor for register types without a uniform
    /// [`Packable`] encoding; otherwise prefer [`new`](HwRegisterFile::new).
    ///
    /// # Errors
    ///
    /// [`AccessError::BadSpec`] under the same conditions as
    /// [`crate::SharedMemory::new`] (id/index mismatch, out-of-range declared
    /// width), and [`AccessError::WidthOverflow`] if a packed initial value
    /// does not fit its register's declared width.
    pub fn with_packer<F>(specs: Vec<RegisterSpec<V>>, pack: F) -> Result<Self, AccessError>
    where
        F: Fn(RegId, &V) -> u64,
    {
        for (i, s) in specs.iter().enumerate() {
            if s.id.0 != i {
                return Err(AccessError::BadSpec(format!(
                    "register '{}' has id {} but index {i}",
                    s.name, s.id
                )));
            }
            if s.width_bits == 0 || s.width_bits > 64 {
                return Err(AccessError::BadSpec(format!(
                    "register '{}' declares width {} (must be 1..=64 bits)",
                    s.name, s.width_bits
                )));
            }
        }
        let mut cells = Vec::with_capacity(specs.len());
        let mut init_words = Vec::with_capacity(specs.len());
        for s in &specs {
            let word = pack(s.id, &s.init);
            if word > s.max_word() {
                return Err(AccessError::WidthOverflow {
                    reg: s.id,
                    word,
                    width_bits: s.width_bits,
                });
            }
            cells.push(HwCell::new(word));
            init_words.push(word);
        }
        Ok(HwRegisterFile {
            specs,
            cells,
            init_words,
        })
    }

    /// Restores every cell to its packed initial contents.
    ///
    /// This is the frame-reuse primitive for engines that run many protocol
    /// instances through one register file (arena slots in `cil-serve`):
    /// instead of rebuilding specs and cells per instance, a reset brings
    /// the file back to the paper's all-⊥ start without touching the heap.
    /// Requires exclusive access so no thread observes a torn start state.
    pub fn reset(&mut self) {
        for (cell, &word) in self.cells.iter().zip(&self.init_words) {
            cell.store(word);
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the file has no registers.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The register descriptions, in id order.
    pub fn specs(&self) -> &[RegisterSpec<V>] {
        &self.specs
    }

    /// Atomically loads the raw word of `reg` on behalf of `pid`.
    ///
    /// # Errors
    ///
    /// Same access errors as [`crate::SharedMemory::read`].
    pub fn read_word(&self, pid: Pid, reg: RegId) -> Result<u64, AccessError> {
        let spec = self
            .specs
            .get(reg.0)
            .ok_or(AccessError::UnknownRegister(reg))?;
        if !spec.readers.allows(pid) {
            return Err(AccessError::NotReader { pid, reg });
        }
        Ok(self.cells[reg.0].load())
    }

    /// Atomically stores a raw word into `reg` on behalf of `pid`, enforcing
    /// the declared bit width.
    ///
    /// # Errors
    ///
    /// Same access errors as [`crate::SharedMemory::write`], plus
    /// [`AccessError::WidthOverflow`] when `word` exceeds the register's
    /// [`RegisterSpec::max_word`].
    pub fn write_word(&self, pid: Pid, reg: RegId, word: u64) -> Result<(), AccessError> {
        let spec = self
            .specs
            .get(reg.0)
            .ok_or(AccessError::UnknownRegister(reg))?;
        if spec.writer != pid {
            return Err(AccessError::NotWriter {
                pid,
                reg,
                owner: spec.writer,
            });
        }
        if word > spec.max_word() {
            return Err(AccessError::WidthOverflow {
                reg,
                word,
                width_bits: spec.width_bits,
            });
        }
        self.cells[reg.0].store(word);
        Ok(())
    }
}

impl<V: Packable> HwRegisterFile<V> {
    /// Builds the file from register descriptions, packing each initial
    /// value into its cell.
    ///
    /// # Errors
    ///
    /// Same as [`with_packer`](HwRegisterFile::with_packer).
    pub fn new(specs: Vec<RegisterSpec<V>>) -> Result<Self, AccessError> {
        Self::with_packer(specs, |_, v| v.pack())
    }

    /// Atomically reads `reg` on behalf of `pid`.
    ///
    /// # Errors
    ///
    /// Same access errors as [`crate::SharedMemory::read`].
    pub fn read(&self, pid: Pid, reg: RegId) -> Result<V, AccessError> {
        self.read_word(pid, reg).map(V::unpack)
    }

    /// Atomically writes `value` into `reg` on behalf of `pid`.
    ///
    /// # Errors
    ///
    /// Same access errors as [`crate::SharedMemory::write`], plus
    /// [`AccessError::WidthOverflow`] when the packed value exceeds the
    /// declared width.
    pub fn write(&self, pid: Pid, reg: RegId, value: &V) -> Result<(), AccessError> {
        self.write_word(pid, reg, value.pack())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::ReaderSet;
    use crate::linearize::{is_linearizable, HistOp};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn packable_round_trips() {
        assert_eq!(u64::unpack(17u64.pack()), 17);
        assert!(bool::unpack(true.pack()));
        assert_eq!(Option::<u64>::unpack(None::<u64>.pack()), None);
        assert_eq!(Option::<u64>::unpack(Some(3u64).pack()), Some(3));
        assert_eq!(Option::<bool>::unpack(Some(false).pack()), Some(false));
    }

    #[test]
    fn cell_load_store() {
        let c = HwCell::new(3);
        assert_eq!(c.load(), 3);
        c.store(9);
        assert_eq!(c.load(), 9);
    }

    fn file_1w1r() -> HwRegisterFile<Option<u64>> {
        HwRegisterFile::new(vec![
            RegisterSpec::new(RegId(0), "r0", Pid(0), ReaderSet::only([Pid(1)]), None),
            RegisterSpec::new(RegId(1), "r1", Pid(1), ReaderSet::only([Pid(0)]), None),
        ])
        .unwrap()
    }

    #[test]
    fn file_enforces_access_control() {
        let f = file_1w1r();
        assert!(f.write(Pid(0), RegId(0), &Some(1)).is_ok());
        assert!(f.write(Pid(1), RegId(0), &Some(1)).is_err());
        assert_eq!(f.read(Pid(1), RegId(0)).unwrap(), Some(1));
        assert!(f.read(Pid(0), RegId(0)).is_err());
    }

    #[test]
    fn store_rejects_out_of_width_words() {
        let f = HwRegisterFile::<u64>::new(vec![RegisterSpec::new(
            RegId(0),
            "r",
            Pid(0),
            ReaderSet::All,
            0u64,
        )
        .with_width(3)])
        .unwrap();
        // Boundary: the largest in-width word is accepted...
        assert!(f.write(Pid(0), RegId(0), &7).is_ok());
        assert_eq!(f.read(Pid(1), RegId(0)).unwrap(), 7);
        // ...and the first out-of-width word is rejected without clobbering.
        assert_eq!(
            f.write(Pid(0), RegId(0), &8),
            Err(AccessError::WidthOverflow {
                reg: RegId(0),
                word: 8,
                width_bits: 3,
            })
        );
        assert_eq!(f.read(Pid(1), RegId(0)).unwrap(), 7);
    }

    #[test]
    fn full_width_register_accepts_max_word() {
        let f = HwRegisterFile::<u64>::new(vec![RegisterSpec::new(
            RegId(0),
            "r",
            Pid(0),
            ReaderSet::All,
            0u64,
        )])
        .unwrap();
        assert!(f.write(Pid(0), RegId(0), &u64::MAX).is_ok());
        assert_eq!(f.read(Pid(1), RegId(0)).unwrap(), u64::MAX);
    }

    #[test]
    fn constructor_rejects_out_of_width_init() {
        let mut spec = RegisterSpec::new(RegId(0), "r", Pid(0), ReaderSet::All, 4u64);
        spec.width_bits = 2;
        assert_eq!(
            HwRegisterFile::new(vec![spec]).unwrap_err(),
            AccessError::WidthOverflow {
                reg: RegId(0),
                word: 4,
                width_bits: 2,
            }
        );
    }

    #[test]
    fn constructor_rejects_bad_width_spec() {
        let mut spec = RegisterSpec::new(RegId(0), "r", Pid(0), ReaderSet::All, 0u64);
        spec.width_bits = 0;
        assert!(matches!(
            HwRegisterFile::new(vec![spec]),
            Err(AccessError::BadSpec(_))
        ));
    }

    #[test]
    fn reset_restores_initial_contents() {
        let mut f = file_1w1r();
        f.write(Pid(0), RegId(0), &Some(7)).unwrap();
        f.write(Pid(1), RegId(1), &Some(9)).unwrap();
        f.reset();
        assert_eq!(f.read(Pid(1), RegId(0)).unwrap(), None);
        assert_eq!(f.read(Pid(0), RegId(1)).unwrap(), None);
        // The file is fully usable again after the reset.
        f.write(Pid(0), RegId(0), &Some(2)).unwrap();
        assert_eq!(f.read(Pid(1), RegId(0)).unwrap(), Some(2));
    }

    #[test]
    fn with_packer_hosts_non_packable_encodings() {
        // A custom per-register codec: values stored as two's-complement-ish
        // offset words without a Packable impl for the value type.
        let f = HwRegisterFile::<i32>::with_packer(
            vec![RegisterSpec::new(RegId(0), "r", Pid(0), ReaderSet::All, -1i32).with_width(8)],
            |_, v| (v + 128) as u64,
        )
        .unwrap();
        assert_eq!(f.read_word(Pid(1), RegId(0)).unwrap(), 127);
        f.write_word(Pid(0), RegId(0), 255).unwrap();
        assert_eq!(f.read_word(Pid(1), RegId(0)).unwrap(), 255);
        assert!(f.write_word(Pid(0), RegId(0), 256).is_err());
    }

    #[test]
    fn concurrent_history_on_real_threads_is_linearizable() {
        // One writer thread, one reader thread, coarse global timestamps.
        // SeqCst loads/stores must produce a linearizable history.
        let file = HwRegisterFile::<u64>::new(vec![RegisterSpec::new(
            RegId(0),
            "r",
            Pid(0),
            ReaderSet::All,
            0u64,
        )])
        .unwrap();
        let clock = AtomicU64::new(1);
        let history = Mutex::new(Vec::<HistOp>::new());
        std::thread::scope(|s| {
            s.spawn(|| {
                for v in 1..=20u64 {
                    let t0 = clock.fetch_add(1, Ordering::SeqCst);
                    file.write(Pid(0), RegId(0), &v).unwrap();
                    let t1 = clock.fetch_add(1, Ordering::SeqCst);
                    history
                        .lock()
                        .unwrap()
                        .push(HistOp::write(t0, t1, v as usize));
                }
            });
            s.spawn(|| {
                for _ in 0..20 {
                    let t0 = clock.fetch_add(1, Ordering::SeqCst);
                    let v = file.read(Pid(1), RegId(0)).unwrap();
                    let t1 = clock.fetch_add(1, Ordering::SeqCst);
                    history
                        .lock()
                        .unwrap()
                        .push(HistOp::read(t0, t1, v as usize));
                }
            });
        });
        let h = history.into_inner().unwrap();
        assert!(is_linearizable(0, &h), "hardware history not linearizable");
    }
}
