//! Real-hardware register backend over [`std::sync::atomic::AtomicU64`].
//!
//! The paper's closing claim is that its model "is implementable in existing
//! technology". On any modern machine a single aligned word already *is* an
//! atomic multi-reader multi-writer register — strictly stronger than the
//! bounded 1W1R registers the protocols need. Every register used by the
//! paper's protocols packs into one `u64` (see [`Packable`]), so
//! [`HwRegisterFile`] can host any workspace protocol on real OS threads
//! (driven by `cil-sim`'s thread executor).
//!
//! Note the deliberate restriction: the API exposes **only** `load` and
//! `store` — no compare-and-swap, no fetch-and-add — because the paper's
//! model has atomic reads and writes but *no test-and-set*.

use crate::access::{AccessError, Pid, RegId, RegisterSpec};
use std::sync::atomic::{AtomicU64, Ordering};

/// Values that fit into one machine word, so they can live in a real
/// hardware register cell.
///
/// Implementations must round-trip: `Self::unpack(v.pack()) == v`.
pub trait Packable: Sized + Clone {
    /// Encodes the value into a word.
    fn pack(&self) -> u64;
    /// Decodes a word produced by [`pack`](Packable::pack).
    fn unpack(word: u64) -> Self;
}

impl Packable for u64 {
    fn pack(&self) -> u64 {
        *self
    }
    fn unpack(word: u64) -> Self {
        word
    }
}

impl Packable for bool {
    fn pack(&self) -> u64 {
        u64::from(*self)
    }
    fn unpack(word: u64) -> Self {
        word != 0
    }
}

impl<T: Packable> Packable for Option<T> {
    /// Packs `None` as 0 and `Some(v)` as `v.pack() + 1`; inner packings must
    /// therefore stay below `u64::MAX`.
    fn pack(&self) -> u64 {
        match self {
            None => 0,
            Some(v) => v
                .pack()
                .checked_add(1)
                .expect("inner packing must leave headroom for Option"),
        }
    }
    fn unpack(word: u64) -> Self {
        if word == 0 {
            None
        } else {
            Some(T::unpack(word - 1))
        }
    }
}

/// One hardware register cell: an atomic word with plain load/store.
#[derive(Debug, Default)]
pub struct HwCell(AtomicU64);

impl HwCell {
    /// Creates a cell holding `init`.
    pub fn new(init: u64) -> Self {
        HwCell(AtomicU64::new(init))
    }

    /// Atomic load (sequentially consistent, the strongest real-hardware
    /// analogue of the paper's global-time atomicity).
    pub fn load(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Atomic store.
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::SeqCst);
    }
}

/// A bank of hardware register cells with the same access discipline as
/// [`crate::SharedMemory`], shareable across threads (`&HwRegisterFile` is
/// all a thread needs).
#[derive(Debug)]
pub struct HwRegisterFile<V: Packable> {
    specs: Vec<RegisterSpec<V>>,
    cells: Vec<HwCell>,
}

impl<V: Packable> HwRegisterFile<V> {
    /// Builds the file from register descriptions, packing each initial
    /// value into its cell.
    ///
    /// # Errors
    ///
    /// [`AccessError::BadSpec`] under the same conditions as
    /// [`crate::SharedMemory::new`].
    pub fn new(specs: Vec<RegisterSpec<V>>) -> Result<Self, AccessError> {
        for (i, s) in specs.iter().enumerate() {
            if s.id.0 != i {
                return Err(AccessError::BadSpec(format!(
                    "register '{}' has id {} but index {i}",
                    s.name, s.id
                )));
            }
        }
        let cells = specs.iter().map(|s| HwCell::new(s.init.pack())).collect();
        Ok(HwRegisterFile { specs, cells })
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the file has no registers.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomically reads `reg` on behalf of `pid`.
    ///
    /// # Errors
    ///
    /// Same access errors as [`crate::SharedMemory::read`].
    pub fn read(&self, pid: Pid, reg: RegId) -> Result<V, AccessError> {
        let spec = self
            .specs
            .get(reg.0)
            .ok_or(AccessError::UnknownRegister(reg))?;
        if !spec.readers.allows(pid) {
            return Err(AccessError::NotReader { pid, reg });
        }
        Ok(V::unpack(self.cells[reg.0].load()))
    }

    /// Atomically writes `value` into `reg` on behalf of `pid`.
    ///
    /// # Errors
    ///
    /// Same access errors as [`crate::SharedMemory::write`].
    pub fn write(&self, pid: Pid, reg: RegId, value: &V) -> Result<(), AccessError> {
        let spec = self
            .specs
            .get(reg.0)
            .ok_or(AccessError::UnknownRegister(reg))?;
        if spec.writer != pid {
            return Err(AccessError::NotWriter {
                pid,
                reg,
                owner: spec.writer,
            });
        }
        self.cells[reg.0].store(value.pack());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::ReaderSet;
    use crate::linearize::{is_linearizable, HistOp};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn packable_round_trips() {
        assert_eq!(u64::unpack(17u64.pack()), 17);
        assert!(bool::unpack(true.pack()));
        assert_eq!(Option::<u64>::unpack(None::<u64>.pack()), None);
        assert_eq!(Option::<u64>::unpack(Some(3u64).pack()), Some(3));
        assert_eq!(Option::<bool>::unpack(Some(false).pack()), Some(false));
    }

    #[test]
    fn cell_load_store() {
        let c = HwCell::new(3);
        assert_eq!(c.load(), 3);
        c.store(9);
        assert_eq!(c.load(), 9);
    }

    fn file_1w1r() -> HwRegisterFile<Option<u64>> {
        HwRegisterFile::new(vec![
            RegisterSpec::new(RegId(0), "r0", Pid(0), ReaderSet::only([Pid(1)]), None),
            RegisterSpec::new(RegId(1), "r1", Pid(1), ReaderSet::only([Pid(0)]), None),
        ])
        .unwrap()
    }

    #[test]
    fn file_enforces_access_control() {
        let f = file_1w1r();
        assert!(f.write(Pid(0), RegId(0), &Some(1)).is_ok());
        assert!(f.write(Pid(1), RegId(0), &Some(1)).is_err());
        assert_eq!(f.read(Pid(1), RegId(0)).unwrap(), Some(1));
        assert!(f.read(Pid(0), RegId(0)).is_err());
    }

    #[test]
    fn concurrent_history_on_real_threads_is_linearizable() {
        // One writer thread, one reader thread, coarse global timestamps.
        // SeqCst loads/stores must produce a linearizable history.
        let file = HwRegisterFile::<u64>::new(vec![RegisterSpec::new(
            RegId(0),
            "r",
            Pid(0),
            ReaderSet::All,
            0u64,
        )])
        .unwrap();
        let clock = AtomicU64::new(1);
        let history = Mutex::new(Vec::<HistOp>::new());
        std::thread::scope(|s| {
            s.spawn(|| {
                for v in 1..=20u64 {
                    let t0 = clock.fetch_add(1, Ordering::SeqCst);
                    file.write(Pid(0), RegId(0), &v).unwrap();
                    let t1 = clock.fetch_add(1, Ordering::SeqCst);
                    history
                        .lock()
                        .unwrap()
                        .push(HistOp::write(t0, t1, v as usize));
                }
            });
            s.spawn(|| {
                for _ in 0..20 {
                    let t0 = clock.fetch_add(1, Ordering::SeqCst);
                    let v = file.read(Pid(1), RegId(0)).unwrap();
                    let t1 = clock.fetch_add(1, Ordering::SeqCst);
                    history
                        .lock()
                        .unwrap()
                        .push(HistOp::read(t0, t1, v as usize));
                }
            });
        });
        let h = history.into_inner().unwrap();
        assert!(is_linearizable(0, &h), "hardware history not linearizable");
    }
}
