//! Lamport's register taxonomy with adversarially-resolved overlap.
//!
//! The paper's footnote on implementability appeals to Lamport's
//! *On Interprocess Communication* (the paper's reference 5): bounded
//! single-writer single-reader **atomic** registers can be built from weaker
//! hardware. The hierarchy is:
//!
//! * **safe** — a read that overlaps no write returns the current value; a
//!   read overlapping a write may return *any* value of the register's
//!   domain;
//! * **regular** — a read overlapping a write returns either the old or the
//!   new value;
//! * **atomic** — all reads and writes are serializable: reads behave as if
//!   each operation occurred at a single instant inside its interval. For a
//!   single reader this is regularity plus *no new-old inversion*: once a
//!   read has returned the new value, no later read returns the old one.
//!
//! [`IntervalRegister`] models writes as explicit intervals
//! ([`begin_write`](IntervalRegister::begin_write) …
//! [`end_write`](IntervalRegister::end_write)) and resolves every overlapping
//! read through a caller-supplied [`Resolver`] — the adversary. The
//! constructions in [`crate::construct`] are verified by enumerating every
//! interleaving *and* every adversarial resolution.

use std::error::Error;
use std::fmt;

/// The three register classes of Lamport's hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// Overlapping reads may return anything in the domain.
    Safe,
    /// Overlapping reads return the old or the new value.
    Regular,
    /// Operations are serializable (regular + no new-old inversion).
    Atomic,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegClass::Safe => "safe",
            RegClass::Regular => "regular",
            RegClass::Atomic => "atomic",
        };
        f.write_str(s)
    }
}

/// Errors from misuse of the interval-write protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaxonomyError {
    /// `begin_write` while a write is already in flight (single writer!).
    WriteInProgress,
    /// `end_write` without a matching `begin_write`.
    NoWriteInProgress,
    /// The resolver picked an index outside the admissible set.
    BadResolution {
        /// Index chosen by the resolver.
        chosen: usize,
        /// Size of the admissible set.
        admissible: usize,
    },
}

impl fmt::Display for TaxonomyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaxonomyError::WriteInProgress => f.write_str("a write is already in progress"),
            TaxonomyError::NoWriteInProgress => f.write_str("no write is in progress"),
            TaxonomyError::BadResolution { chosen, admissible } => write!(
                f,
                "resolver chose index {chosen} out of {admissible} admissible values"
            ),
        }
    }
}

impl Error for TaxonomyError {}

/// The adversary's hook: given the admissible return values of an overlapping
/// read, pick one (by index).
///
/// Implementations range from "always old" to exhaustive enumeration in the
/// construction tests.
pub trait Resolver {
    /// Chooses an index into `admissible`.
    fn resolve(&mut self, admissible: &[usize]) -> usize;
}

/// A resolver that always picks a fixed position in the admissible list
/// (clamped), e.g. position 0 = "first admissible value".
#[derive(Debug, Clone, Copy)]
pub struct FixedResolver(pub usize);

impl Resolver for FixedResolver {
    fn resolve(&mut self, admissible: &[usize]) -> usize {
        admissible[self.0.min(admissible.len() - 1)]
    }
}

/// A resolver replaying a scripted list of choices (used by the exhaustive
/// interleaving driver); falls back to the first admissible value when the
/// script is exhausted.
#[derive(Debug, Clone, Default)]
pub struct ScriptResolver {
    script: Vec<usize>,
    next: usize,
    /// Number of resolution points actually consulted.
    pub consulted: usize,
    /// Arity (admissible-set size) at each consulted point.
    pub arities: Vec<usize>,
}

impl ScriptResolver {
    /// Creates a resolver that plays back `script`.
    pub fn new(script: Vec<usize>) -> Self {
        ScriptResolver {
            script,
            next: 0,
            consulted: 0,
            arities: Vec::new(),
        }
    }
}

impl Resolver for ScriptResolver {
    fn resolve(&mut self, admissible: &[usize]) -> usize {
        self.consulted += 1;
        self.arities.push(admissible.len());
        let pick = self
            .script
            .get(self.next)
            .copied()
            .unwrap_or(0)
            .min(admissible.len() - 1);
        self.next += 1;
        admissible[pick]
    }
}

/// A single-writer register whose writes occupy an interval, with overlap
/// behaviour determined by its [`RegClass`].
///
/// The value domain is `0..domain_size` (values are `usize` indices; wrap
/// richer types outside). This keeps the safe-register semantics ("may return
/// any value the register can hold") finitely enumerable.
#[derive(Debug, Clone)]
pub struct IntervalRegister {
    class: RegClass,
    domain_size: usize,
    stable: usize,
    pending: Option<usize>,
    /// Atomic registers: set once an overlapping read returned the pending
    /// (new) value; later reads must keep returning it.
    pending_seen: bool,
}

impl IntervalRegister {
    /// Creates a register of the given class holding `init`, with values
    /// ranging over `0..domain_size`.
    ///
    /// # Panics
    ///
    /// Panics if `init >= domain_size` or `domain_size == 0`.
    pub fn new(class: RegClass, domain_size: usize, init: usize) -> Self {
        assert!(domain_size > 0, "domain must be non-empty");
        assert!(init < domain_size, "initial value outside domain");
        IntervalRegister {
            class,
            domain_size,
            stable: init,
            pending: None,
            pending_seen: false,
        }
    }

    /// The register's class.
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// Whether a write is currently in flight.
    pub fn write_in_progress(&self) -> bool {
        self.pending.is_some()
    }

    /// The value a non-overlapping read would return right now.
    pub fn stable_value(&self) -> usize {
        self.stable
    }

    /// Starts a write of `value`.
    ///
    /// # Errors
    ///
    /// [`TaxonomyError::WriteInProgress`] if a write is already in flight —
    /// these are single-writer registers and the writer is sequential.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn begin_write(&mut self, value: usize) -> Result<(), TaxonomyError> {
        assert!(value < self.domain_size, "written value outside domain");
        if self.pending.is_some() {
            return Err(TaxonomyError::WriteInProgress);
        }
        self.pending = Some(value);
        self.pending_seen = false;
        Ok(())
    }

    /// Completes the in-flight write.
    ///
    /// # Errors
    ///
    /// [`TaxonomyError::NoWriteInProgress`] if none is in flight.
    pub fn end_write(&mut self) -> Result<(), TaxonomyError> {
        match self.pending.take() {
            Some(v) => {
                self.stable = v;
                self.pending_seen = false;
                Ok(())
            }
            None => Err(TaxonomyError::NoWriteInProgress),
        }
    }

    /// The set of values a read starting now may return, per the class rules.
    pub fn admissible_reads(&self) -> Vec<usize> {
        match self.pending {
            None => vec![self.stable],
            Some(new) => match self.class {
                RegClass::Safe => (0..self.domain_size).collect(),
                RegClass::Regular => {
                    if new == self.stable {
                        vec![self.stable]
                    } else {
                        vec![self.stable, new]
                    }
                }
                RegClass::Atomic => {
                    if self.pending_seen || new == self.stable {
                        vec![new]
                    } else {
                        vec![self.stable, new]
                    }
                }
            },
        }
    }

    /// Performs a read, letting `resolver` pick among the admissible values.
    pub fn read(&mut self, resolver: &mut dyn Resolver) -> usize {
        let admissible = self.admissible_reads();
        if admissible.len() == 1 {
            return admissible[0];
        }
        let v = resolver.resolve(&admissible);
        debug_assert!(admissible.contains(&v), "resolver returned a raw value");
        if self.class == RegClass::Atomic {
            if let Some(new) = self.pending {
                if v == new {
                    self.pending_seen = true;
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_reads_return_stable_value() {
        let mut r = IntervalRegister::new(RegClass::Safe, 4, 2);
        let mut res = FixedResolver(0);
        assert_eq!(r.read(&mut res), 2);
    }

    #[test]
    fn safe_overlapping_read_admits_whole_domain() {
        let mut r = IntervalRegister::new(RegClass::Safe, 4, 0);
        r.begin_write(3).unwrap();
        assert_eq!(r.admissible_reads(), vec![0, 1, 2, 3]);
        r.end_write().unwrap();
        assert_eq!(r.admissible_reads(), vec![3]);
    }

    #[test]
    fn regular_overlapping_read_admits_old_or_new() {
        let mut r = IntervalRegister::new(RegClass::Regular, 4, 1);
        r.begin_write(3).unwrap();
        assert_eq!(r.admissible_reads(), vec![1, 3]);
    }

    #[test]
    fn regular_rewrite_of_same_value_is_stable() {
        let mut r = IntervalRegister::new(RegClass::Regular, 2, 1);
        r.begin_write(1).unwrap();
        assert_eq!(r.admissible_reads(), vec![1]);
    }

    #[test]
    fn atomic_forbids_new_old_inversion() {
        let mut r = IntervalRegister::new(RegClass::Atomic, 2, 0);
        r.begin_write(1).unwrap();
        // Adversary forces the first overlapping read to see the new value.
        let mut pick_new = FixedResolver(1);
        assert_eq!(r.read(&mut pick_new), 1);
        // From now on, only the new value is admissible.
        assert_eq!(r.admissible_reads(), vec![1]);
        let mut pick_old = FixedResolver(0);
        assert_eq!(r.read(&mut pick_old), 1);
    }

    #[test]
    fn atomic_read_may_still_return_old_before_linearization() {
        let mut r = IntervalRegister::new(RegClass::Atomic, 2, 0);
        r.begin_write(1).unwrap();
        let mut pick_old = FixedResolver(0);
        assert_eq!(r.read(&mut pick_old), 0);
        // Old remains admissible until some read observes the new value.
        assert_eq!(r.admissible_reads(), vec![0, 1]);
    }

    #[test]
    fn double_begin_write_is_rejected() {
        let mut r = IntervalRegister::new(RegClass::Regular, 2, 0);
        r.begin_write(1).unwrap();
        assert_eq!(r.begin_write(0), Err(TaxonomyError::WriteInProgress));
    }

    #[test]
    fn end_without_begin_is_rejected() {
        let mut r = IntervalRegister::new(RegClass::Regular, 2, 0);
        assert_eq!(r.end_write(), Err(TaxonomyError::NoWriteInProgress));
    }

    #[test]
    fn end_write_installs_new_value() {
        let mut r = IntervalRegister::new(RegClass::Safe, 3, 0);
        r.begin_write(2).unwrap();
        r.end_write().unwrap();
        assert_eq!(r.stable_value(), 2);
    }

    #[test]
    fn script_resolver_records_consultations() {
        let mut r = IntervalRegister::new(RegClass::Safe, 3, 0);
        r.begin_write(2).unwrap();
        let mut res = ScriptResolver::new(vec![1]);
        assert_eq!(r.read(&mut res), 1);
        assert_eq!(res.consulted, 1);
        assert_eq!(res.arities, vec![3]);
    }
}
