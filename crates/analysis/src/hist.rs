//! Integer histograms with ASCII rendering, for step-count distributions.

use std::fmt;

/// A histogram over non-negative integers.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    n: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, value: u64) {
        let idx = value as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.n += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Count of one value.
    pub fn at(&self, value: u64) -> u64 {
        self.counts.get(value as usize).copied().unwrap_or(0)
    }

    /// Largest value with nonzero count.
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i as u64)
    }

    /// The p-quantile (0 ≤ p ≤ 1) of the sample, by counting.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> u64 {
        assert!(self.n > 0, "quantile of an empty histogram");
        assert!((0.0..=1.0).contains(&p), "p outside [0,1]");
        let target = (p * self.n as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return v as u64;
            }
        }
        self.max()
    }

    /// The p-quantile by counting, or `None` for an empty histogram or a
    /// `p` outside `[0, 1]`. `p = 0.0` yields the smallest observed value.
    pub fn try_quantile(&self, p: f64) -> Option<u64> {
        if self.n == 0 || !(0.0..=1.0).contains(&p) {
            return None;
        }
        Some(self.quantile(p))
    }

    /// Renders the histogram as ASCII bars, bucketing values into at most
    /// `max_rows` equal-width buckets of width ≥ 1.
    pub fn render(&self, max_rows: usize, width: usize) -> String {
        if self.n == 0 || max_rows == 0 {
            return String::new();
        }
        let hi = self.max() + 1;
        let bucket_w = hi.div_ceil(max_rows as u64).max(1);
        let mut buckets: Vec<u64> = Vec::new();
        for (v, &c) in self.counts.iter().enumerate() {
            let b = v as u64 / bucket_w;
            if buckets.len() <= b as usize {
                buckets.resize(b as usize + 1, 0);
            }
            buckets[b as usize] += c;
        }
        let peak = buckets.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (b, &c) in buckets.iter().enumerate() {
            let lo = b as u64 * bucket_w;
            let hi = lo + bucket_w - 1;
            let bar = (c as f64 / peak as f64 * width as f64).round() as usize;
            let label = if bucket_w == 1 {
                format!("{lo:>6}")
            } else {
                format!("{:>6}", format!("{lo}-{hi}"))
            };
            out.push_str(&format!("{label} | {} {}\n", "#".repeat(bar), c));
        }
        out
    }
}

impl Extend<u64> for Histogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(16, 40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_max() {
        let h: Histogram = [1u64, 1, 2, 5].into_iter().collect();
        assert_eq!(h.count(), 4);
        assert_eq!(h.at(1), 2);
        assert_eq!(h.at(3), 0);
        assert_eq!(h.max(), 5);
    }

    #[test]
    fn quantiles_by_counting() {
        let h: Histogram = (0u64..100).collect();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 49);
        assert_eq!(h.quantile(1.0), 99);
    }

    #[test]
    fn median_of_skewed_sample() {
        let h: Histogram = [0u64, 0, 0, 10].into_iter().collect();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.9), 10);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        Histogram::new().quantile(0.5);
    }

    #[test]
    fn try_quantile_covers_the_edges() {
        assert_eq!(Histogram::new().try_quantile(0.5), None);
        let h: Histogram = [3u64, 4, 9].into_iter().collect();
        // p = 0.0 is the smallest observed value, not a panic or 0-by-default.
        assert_eq!(h.try_quantile(0.0), Some(3));
        assert_eq!(h.try_quantile(1.0), Some(9));
        assert_eq!(h.try_quantile(-0.1), None);
        assert_eq!(h.try_quantile(1.1), None);
        assert_eq!(h.try_quantile(f64::NAN), None);
    }

    #[test]
    fn render_produces_one_row_per_bucket() {
        let h: Histogram = [0u64, 1, 2, 3, 4, 5, 6, 7].into_iter().collect();
        let s = h.render(4, 20);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }

    #[test]
    fn empty_histogram_renders_nothing() {
        assert_eq!(Histogram::new().render(8, 20), "");
    }
}
