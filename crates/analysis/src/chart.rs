//! ASCII charts for the experiment binaries ("figures").
//!
//! The paper's quantitative claims are best seen as curves (survival
//! functions, growth curves); [`ascii_series`] renders one or two series on
//! a shared log- or linear-scale grid so the harness output is
//! self-contained and diffable.

/// Scale of the y axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear y axis.
    Linear,
    /// Logarithmic y axis (non-positive values are clamped to the floor).
    Log,
}

/// Renders up to two named series (sharing x = index) as an ASCII chart of
/// the given height. Series 1 plots as `*`, series 2 as `o`, collisions as
/// `#`.
pub fn ascii_series(
    names: (&str, Option<&str>),
    series1: &[f64],
    series2: Option<&[f64]>,
    height: usize,
    scale: Scale,
) -> String {
    let width = series1.len().max(series2.map_or(0, <[f64]>::len));
    if width == 0 || height == 0 {
        return String::new();
    }
    let tx = |v: f64| -> f64 {
        match scale {
            Scale::Linear => v,
            Scale::Log => v.max(1e-300).log10(),
        }
    };
    let all: Vec<f64> = series1
        .iter()
        .chain(series2.unwrap_or(&[]))
        .copied()
        .filter(|v| scale == Scale::Linear || *v > 0.0)
        .map(tx)
        .collect();
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if (hi - lo).abs() < 1e-12 {
        1.0
    } else {
        hi - lo
    };
    let row_of = |v: f64| -> Option<usize> {
        if scale == Scale::Log && v <= 0.0 {
            return None;
        }
        let t = (tx(v) - lo) / span;
        Some(((1.0 - t) * (height - 1) as f64).round() as usize)
    };

    let mut grid = vec![vec![' '; width]; height];
    for (x, &v) in series1.iter().enumerate() {
        if let Some(r) = row_of(v) {
            grid[r][x] = '*';
        }
    }
    if let Some(s2) = series2 {
        for (x, &v) in s2.iter().enumerate() {
            if let Some(r) = row_of(v) {
                grid[r][x] = if grid[r][x] == '*' { '#' } else { 'o' };
            }
        }
    }

    let mut out = String::new();
    let label_hi = match scale {
        Scale::Linear => format!("{:.3}", hi),
        Scale::Log => format!("1e{:.1}", hi),
    };
    let label_lo = match scale {
        Scale::Linear => format!("{:.3}", lo),
        Scale::Log => format!("1e{:.1}", lo),
    };
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{label_hi:>10} ")
        } else if i == height - 1 {
            format!("{label_lo:>10} ")
        } else {
            " ".repeat(11)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>11}+{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>12}x = 0..{}   *: {}{}\n",
        "",
        width - 1,
        names.0,
        names
            .1
            .map(|n| format!("   o: {n}   #: overlap"))
            .unwrap_or_default()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expected_dimensions() {
        let s = ascii_series(
            ("measured", None),
            &[1.0, 0.5, 0.25],
            None,
            5,
            Scale::Linear,
        );
        // 5 grid rows + axis + legend.
        assert_eq!(s.lines().count(), 7);
        assert!(s.contains('*'));
        assert!(s.contains("measured"));
    }

    #[test]
    fn two_series_show_distinct_marks() {
        let a = [1.0, 0.9, 0.5, 0.1];
        let b = [1.0, 0.5, 0.25, 0.125];
        let s = ascii_series(("a", Some("b")), &a, Some(&b), 8, Scale::Log);
        assert!(s.contains('o') || s.contains('#'), "{s}");
        assert!(s.contains("overlap"));
    }

    #[test]
    fn empty_series_render_nothing() {
        assert_eq!(ascii_series(("x", None), &[], None, 5, Scale::Linear), "");
    }

    #[test]
    fn log_scale_clamps_zeroes() {
        let s = ascii_series(("z", None), &[1.0, 0.0, 0.01], None, 4, Scale::Log);
        assert!(!s.is_empty());
    }
}
