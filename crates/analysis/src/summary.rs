//! Streaming summary statistics and confidence intervals.

/// Welford-style online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let h = 1.96 * self.sem();
        (self.mean() - h, self.mean() + h)
    }

    /// Unbiased sample variance, or `None` when fewer than two
    /// observations make it undefined.
    pub fn try_variance(&self) -> Option<f64> {
        (self.n >= 2).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation, or `None` for `n < 2`.
    pub fn try_stddev(&self) -> Option<f64> {
        self.try_variance().map(f64::sqrt)
    }

    /// Standard error of the mean, or `None` for `n < 2` (a single
    /// observation carries no spread information, and `n = 0` none at all).
    pub fn try_sem(&self) -> Option<f64> {
        self.try_stddev().map(|s| s / (self.n as f64).sqrt())
    }

    /// Smallest observation, or `None` for an empty accumulator (whose
    /// [`min`](OnlineStats::min) is the `+∞` sentinel).
    pub fn try_min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` for an empty accumulator.
    pub fn try_max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Normal-approximation 95% confidence interval, or `None` when
    /// `n < 2` leaves the width undefined.
    pub fn try_ci95(&self) -> Option<(f64, f64)> {
        let h = 1.96 * self.try_sem()?;
        Some((self.mean - h, self.mean + h))
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Wilson score 95% confidence interval for a proportion of `successes`
/// out of `trials`.
///
/// # Panics
///
/// Panics if `successes > trials`.
pub fn wilson95(successes: u64, trials: u64) -> (f64, f64) {
    assert!(successes <= trials, "more successes than trials");
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = 1.96f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn small_sample_edges_return_none() {
        let empty = OnlineStats::new();
        assert_eq!(empty.try_variance(), None);
        assert_eq!(empty.try_stddev(), None);
        assert_eq!(empty.try_sem(), None);
        assert_eq!(empty.try_min(), None);
        assert_eq!(empty.try_max(), None);
        assert_eq!(empty.try_ci95(), None);

        let one: OnlineStats = [7.5].into_iter().collect();
        assert_eq!(one.try_variance(), None);
        assert_eq!(one.try_stddev(), None);
        assert_eq!(one.try_sem(), None);
        assert_eq!(one.try_ci95(), None);
        assert_eq!(one.try_min(), Some(7.5));
        assert_eq!(one.try_max(), Some(7.5));
    }

    #[test]
    fn try_variants_match_legacy_values_when_defined() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.try_variance(), Some(s.variance()));
        assert_eq!(s.try_stddev(), Some(s.stddev()));
        assert_eq!(s.try_sem(), Some(s.sem()));
        assert_eq!(s.try_min(), Some(s.min()));
        assert_eq!(s.try_max(), Some(s.max()));
        assert_eq!(s.try_ci95(), Some(s.ci95()));
        assert!(s.try_stddev().unwrap().is_finite());
    }

    #[test]
    fn ci_shrinks_with_more_data() {
        let small: OnlineStats = (0..10).map(|i| f64::from(i % 3)).collect();
        let large: OnlineStats = (0..10_000).map(|i| f64::from(i % 3)).collect();
        let w_small = small.ci95().1 - small.ci95().0;
        let w_large = large.ci95().1 - large.ci95().0;
        assert!(w_large < w_small);
    }

    #[test]
    fn wilson_interval_contains_the_point_estimate() {
        let (lo, hi) = wilson95(30, 100);
        assert!(lo < 0.3 && 0.3 < hi);
        assert!(lo > 0.2 && hi < 0.41);
    }

    #[test]
    fn wilson_edge_cases() {
        assert_eq!(wilson95(0, 0), (0.0, 1.0));
        let (lo, _) = wilson95(0, 50);
        assert_eq!(lo, 0.0);
        let (_, hi) = wilson95(50, 50);
        assert_eq!(hi, 1.0);
    }
}
