//! Empirical tail (survival) functions and geometric-rate fits.
//!
//! The paper's quantitative theorems are tail bounds: Theorem 7's
//! `P[undecided after k+2 steps] ≤ (3/4)^{k/2}` and Theorem 9's
//! `P[num = k] ≤ (3/4)^k`. [`TailEstimator`] builds the empirical survival
//! function of integer samples, compares it point-wise against such bounds,
//! and fits the geometric decay rate by least squares on the log scale.

use crate::fit::linear_fit;

/// Empirical distribution of a non-negative integer quantity.
#[derive(Debug, Clone, Default)]
pub struct TailEstimator {
    counts: Vec<u64>,
    n: u64,
}

impl TailEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, value: u64) {
        let idx = value as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.n += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Largest observed value.
    pub fn max(&self) -> u64 {
        self.counts.len().saturating_sub(1) as u64
    }

    /// Empirical `P[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.counts.get(k as usize).copied().unwrap_or(0) as f64 / self.n as f64
    }

    /// Empirical survival `P[X ≥ k]`.
    pub fn survival(&self, k: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let tail: u64 = self.counts.iter().skip(k as usize).sum();
        tail as f64 / self.n as f64
    }

    /// The survival curve `P[X ≥ k]` for `k = 0..=max`.
    pub fn survival_curve(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.counts.len() + 1);
        let mut tail: u64 = self.counts.iter().sum();
        out.push(if self.n == 0 {
            0.0
        } else {
            tail as f64 / self.n as f64
        });
        for &c in &self.counts {
            tail -= c;
            out.push(if self.n == 0 {
                0.0
            } else {
                tail as f64 / self.n as f64
            });
        }
        out
    }

    /// Checks the empirical survival against a bound `k ↦ bound(k)`,
    /// allowing `slack` multiplicative headroom for sampling noise.
    /// Returns the first violating `k`, if any.
    pub fn violates_bound(&self, bound: impl Fn(u64) -> f64, slack: f64) -> Option<u64> {
        (0..=self.max()).find(|&k| self.survival(k) > bound(k) * slack)
    }

    /// Least-squares fit of `log P[X ≥ k] ≈ log c + k·log r` over the ks
    /// with at least `min_mass` empirical mass; returns the geometric decay
    /// rate `r` (e.g. ≈ 3/4 for Theorem 9). `None` if fewer than two usable
    /// points — in particular when every bucket falls below `min_mass`.
    /// Zero-mass points are always excluded, so `min_mass = 0.0` cannot feed
    /// `ln(0)` into the fit.
    pub fn geometric_rate(&self, min_mass: f64) -> Option<f64> {
        let pts: Vec<(f64, f64)> = (0..=self.max())
            .filter_map(|k| {
                let s = self.survival(k);
                (s >= min_mass && s > 0.0).then(|| (k as f64, s.ln()))
            })
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let (slope, _) = linear_fit(&pts)?;
        Some(slope.exp())
    }
}

impl Extend<u64> for TailEstimator {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<u64> for TailEstimator {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut t = TailEstimator::new();
        t.extend(iter);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_of_point_mass() {
        let t: TailEstimator = [3u64, 3, 3].into_iter().collect();
        assert_eq!(t.survival(0), 1.0);
        assert_eq!(t.survival(3), 1.0);
        assert_eq!(t.survival(4), 0.0);
        assert_eq!(t.pmf(3), 1.0);
    }

    #[test]
    fn survival_curve_matches_pointwise_queries() {
        let t: TailEstimator = [0u64, 1, 1, 2, 5].into_iter().collect();
        let curve = t.survival_curve();
        for (k, &s) in curve.iter().enumerate() {
            assert!((s - t.survival(k as u64)).abs() < 1e-12, "k = {k}");
        }
        assert_eq!(curve.len(), 7);
    }

    #[test]
    fn geometric_samples_recover_their_rate() {
        // Deterministic geometric-ish sample: value k appears ~ r^k times.
        let mut t = TailEstimator::new();
        let r: f64 = 0.75;
        for k in 0u64..60 {
            let copies = (1e7 * r.powi(k as i32) * (1.0 - r)) as u64;
            for _ in 0..copies {
                t.push(k);
            }
        }
        let rate = t.geometric_rate(1e-3).expect("fit");
        assert!((rate - 0.75).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn bound_violations_are_located() {
        let t: TailEstimator = [5u64; 100].into_iter().collect();
        // P[X ≥ 5] = 1 violates (3/4)^k at k = 5.
        let v = t.violates_bound(|k| 0.75f64.powi(k as i32), 1.0);
        assert_eq!(v, Some(1));
        // A generous bound is satisfied.
        assert_eq!(t.violates_bound(|_| 1.0, 1.0), None);
    }

    #[test]
    fn fit_window_below_min_mass_yields_none() {
        // Every survival point is ≤ 0.5; a min_mass above that leaves no
        // usable fit window, which must be None, not a NaN slope.
        let t: TailEstimator = [0u64, 1, 2, 3].into_iter().collect();
        assert_eq!(t.geometric_rate(0.9), None);
    }

    #[test]
    fn zero_min_mass_never_fits_through_ln_zero() {
        // A point mass at 0 has survival 0 beyond k = 0. With min_mass = 0
        // those points used to contribute ln(0) = -inf and poison the fit.
        let mut t = TailEstimator::new();
        for _ in 0..10 {
            t.push(0);
        }
        t.push(5);
        let rate = t.geometric_rate(0.0);
        if let Some(r) = rate {
            assert!(r.is_finite(), "rate {r}");
        }
    }

    #[test]
    fn empty_estimator_is_harmless() {
        let t = TailEstimator::new();
        assert_eq!(t.survival(0), 0.0);
        assert_eq!(t.geometric_rate(0.1), None);
        assert_eq!(t.violates_bound(|_| 0.0, 1.0), None);
    }
}
