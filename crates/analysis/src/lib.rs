//! # cil-analysis — statistics toolkit for the CIL reproduction
//!
//! The experiment harness (`cil-bench`) regenerates every quantitative claim
//! of the paper; this crate supplies the statistics it needs:
//!
//! * [`summary`] — streaming mean/variance/CI ([`OnlineStats`]) and Wilson
//!   proportion intervals;
//! * [`tail`] — empirical survival functions, point-wise bound checking and
//!   geometric-rate fits (Theorems 7 and 9 are tail bounds);
//! * [`fit`] — least-squares and power-law fits (the paper's "polynomial
//!   in n" claim);
//! * [`table`] / [`chart`] — markdown tables and ASCII figures, so harness
//!   output can be pasted verbatim into `EXPERIMENTS.md`.
//!
//! ```
//! use cil_analysis::{OnlineStats, TailEstimator};
//!
//! let steps: OnlineStats = [4.0, 6.0, 8.0].into_iter().collect();
//! assert_eq!(steps.mean(), 6.0);
//!
//! let tail: TailEstimator = [0u64, 1, 1, 3].into_iter().collect();
//! assert_eq!(tail.survival(1), 0.75);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod fit;
pub mod hist;
pub mod summary;
pub mod table;
pub mod tail;

pub use chart::{ascii_series, Scale};
pub use fit::{linear_fit, power_law_fit, r_squared};
pub use hist::Histogram;
pub use summary::{wilson95, OnlineStats};
pub use table::{fnum, Table};
pub use tail::TailEstimator;
