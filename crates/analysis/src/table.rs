//! Markdown table rendering for the experiment binaries.
//!
//! Every experiment prints its results as a GitHub-flavoured markdown table
//! so `EXPERIMENTS.md` can embed harness output verbatim.

use std::fmt::Write as _;

/// A simple column-aligned markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let inner: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", inner.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["k", "measured", "paper"]);
        t.row(["1", "0.75", "0.75"]);
        t.row(["10", "0.056", "0.0563"]);
        let s = t.render();
        assert!(s.starts_with("| k "), "{s}");
        assert_eq!(s.lines().count(), 4);
        // All lines have equal width.
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn fnum_scales() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(42.25), "42.2");
        assert_eq!(fnum(0.5), "0.500");
        assert_eq!(fnum(0.0001), "1.00e-4");
    }
}
