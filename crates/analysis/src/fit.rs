//! Least-squares fits: linear, and power-law growth exponents.
//!
//! EXP-7 checks the paper's "expected run-time is polynomial in n" by
//! fitting `log(steps) ≈ e·log(n) + c` and reporting the growth exponent
//! `e`.

/// Ordinary least squares for `y ≈ slope·x + intercept`.
/// Returns `None` when there are fewer than two distinct x values.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let n = points.len() as f64;
    if points.len() < 2 {
        return None;
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    Some((slope, intercept))
}

/// Fits `y ≈ c·x^e` on positive data by linear regression in log-log space;
/// returns the exponent `e` and the prefactor `c`.
///
/// Non-positive points are skipped; `None` if fewer than two remain.
pub fn power_law_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    let (slope, intercept) = linear_fit(&logs)?;
    Some((slope, intercept.exp()))
}

/// Coefficient of determination R² of a linear fit on `points`.
pub fn r_squared(points: &[(f64, f64)], slope: f64, intercept: f64) -> f64 {
    let n = points.len() as f64;
    if points.is_empty() {
        return 0.0;
    }
    let mean_y: f64 = points.iter().map(|p| p.1).sum::<f64>() / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| (f64::from(i), 3.0 * f64::from(i) - 2.0))
            .collect();
        let (s, c) = linear_fit(&pts).unwrap();
        assert!((s - 3.0).abs() < 1e-12);
        assert!((c + 2.0).abs() < 1e-12);
        assert!((r_squared(&pts, s, c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(linear_fit(&[]), None);
        assert_eq!(linear_fit(&[(1.0, 2.0)]), None);
        assert_eq!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]), None);
    }

    #[test]
    fn power_law_exponent_is_recovered() {
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| {
                let x = f64::from(i);
                (x, 5.0 * x.powf(2.5))
            })
            .collect();
        let (e, c) = power_law_fit(&pts).unwrap();
        assert!((e - 2.5).abs() < 1e-9);
        assert!((c - 5.0).abs() < 1e-6);
    }

    #[test]
    fn power_law_skips_nonpositive_points() {
        let pts = [(0.0, 1.0), (-1.0, 2.0), (1.0, 2.0), (2.0, 4.0), (4.0, 8.0)];
        let (e, _) = power_law_fit(&pts).unwrap();
        assert!((e - 1.0).abs() < 1e-9);
    }
}
