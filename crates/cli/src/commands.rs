//! The `cil` subcommands.

use crate::args::{parse_inputs, Args};
use crate::CliFailure;
use cil_analysis::fnum;
use cil_audit::{
    check_certificate, lint_with_footprints, AuditReport, Auditor, FootprintTable, LintMutant,
    LintMutantTwo, LintReport, MutantKind, MutantTwo, ProveOutcome, Prover, TraceAuditor,
};
use cil_conc::{
    classify, cross_validate, ddmin_schedule, rerun_trial_with_codec, stress_timed_with_codec,
    ConcOutcome, ControlledRun, DporConfig, DporReport, DporTiming, GateTimingAgg, RacyTwo,
    ReplaySchedule, StaticIndep, StrategySpec, StressConfig,
};
use cil_core::apps::{elect_leader, MutexLog};
use cil_core::deterministic::{DetRule, DetTwo};
use cil_core::kvalued::{KReg, KValued};
use cil_core::n_unbounded::NUnbounded;
use cil_core::n_unbounded_1w1r::NUnbounded1W1R;
use cil_core::naive::Naive;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::TwoProcessor;
use cil_core::KRegCodec;
use cil_mc::mdp::{MdpSolver, Objective};
use cil_mc::{
    construct_infinite_schedule, CompactExplorer, CompactMdp, CompactOptions, Explorer,
    LookaheadAdversary, Symmetric,
};
use cil_obs::json::{self, Value};
use cil_obs::{
    JsonlSink, LevelReporter, MetricsSnapshot, ProgressMeter, Registry, RunEvent, SpanStat,
    SpanTimer, SpanTree,
};
use cil_registers::Packable;
use cil_serve::{ServeEngine, ServeLimit, ServeReport};
use cil_sim::{
    parse_schedule, run_on_threads, Adversary, Alternator, BoxedAdversary, FixedSchedule,
    LaggardFirst, LeaderFirst, PackCodec, Protocol, RandomScheduler, Rng as _, RoundRobin, Runner,
    SplitKeeper, SweepObserver, TrialOutcome, TrialResult, TrialSweep, Val, WordCodec,
};
use std::fmt::Write as _;

/// Usage text.
pub fn help() -> String {
    "cil — Chor–Israeli–Li (PODC 1987) coordination protocols

USAGE:
  cil run       --protocol <P> --inputs a,b[,..] [--adversary <A>] [--seed N]
                [--max-steps N] [--trace] [--trace-json <file>]
  cil replay    <file> [--audit]                   re-execute a --trace-json
                capture and verify the regenerated event stream byte-for-byte;
                --audit additionally verifies the capture is a serialization
                of atomic register operations (happens-before audit)
  cil audit     [<P>|all|mutant:<M>] [--json]      static model-compliance
                analysis: walk the per-processor transition graph and check
                access sets, width bounds, coin measures, decision stability
                and purity against the paper's §2 / Theorem 6 clauses
  cil lint      [<P>|all|mutant:<M>] [--json] [--footprints]   dataflow lints
                over the same transition graph: dead writes, never-read
                registers, statically stuck states, wasted register width,
                fictitious coins; --footprints also prints the per-state
                static access-footprint table; any finding exits 1
  cil prove     [<P>] [--cert <file>] [--json] [--domain 0,1,..]
                [--max-configs N]                  prove agreement + validity
                over the exact product configuration graph (BFS reach-set as
                a 1-inductive invariant); PROVED emits a cil-cert-v1
                certificate via --cert; REFUTED exits 1 with a replayable
                counterexample schedule (ddmin-shrunk on native threads)
  cil prove     --check-cert <file> [<P>]          re-verify a certificate
                with the independent checker (protocol inferred from the
                certificate when <P> is omitted)
  cil sweep     --protocol <P> --inputs a,b[,..] [--adversary <A>] [--trials N]
                [--seed N] [--max-steps N] [--jobs N] [--progress]
                [--metrics-out <file>] [--metrics-format json|openmetrics]
                [--timings]                        parallel Monte-Carlo sweep
  cil check     --protocol <P> --inputs a,b[,..] [--depth N] [--max-configs N]
                [--jobs N] [--stats] [--progress] [--compat-dense]
                [--metrics-out <file>] [--metrics-format F] [--timings]
  cil mdp       --inputs a,b [--kmax N] [--jobs N] [--metrics-out <file>]
                [--metrics-format F] [--timings]
                [--compat-dense]                   exact Theorem 7 analysis
  cil survival  --protocol <P> --inputs a,b[,..] [--target N] [--kmax N]
                [--depth N] [--max-configs N] [--jobs N] [--metrics-out <file>]
                [--metrics-format F] [--timings]
                [--compat-dense]                   exact worst-case survival
                curve P[target undecided after k of its steps]; --depth is
                required for the infinite-space protocols (fig2, fig3, n:<c>)
  cil report    <file> [--merge <f2,f3,..>] [--flame]   offline analyzer for
                --trace-json captures (per-processor op/coin tables, span
                tree, decided-by-k, violations) and --metrics-out snapshots
                (all sections, log-histogram quantiles with error bounds);
                --merge folds further snapshots in (a shape mismatch exits 2
                naming the metric); --flame emits folded-stack lines
  cil theorem4  --rule <R> [--steps N]             construct the infinite schedule
  cil elect     [--n N] [--rounds N]               leader election / mutual exclusion
  cil threads   --protocol <P> --inputs ... [--seed N]   real OS threads
  cil conc stress  --protocol <P> --inputs a,b[,..] [--strategy <S>]
                [--trials N] [--seed N] [--budget N] [--jobs N] [--progress]
                [--metrics-out <file>] [--metrics-format F] [--timings]
                [--trace-json <file>] [--trace-trial N]
                controlled native threads: every register operation is a
                yield point scheduled by a seeded strategy; a whole batch is
                a pure function of (--seed, --strategy) at any --jobs
  cil conc replay  <file> [--audit]        re-execute a conc capture's
                recorded schedule and verify the regenerated event stream
                byte-for-byte; --audit adds the happens-before audit
  cil conc shrink  --protocol <P> --inputs a,b[,..] --trial N
                [--strategy <S>] [--seed N] [--budget N]   delta-debug a
                failing stress trial's schedule to a 1-minimal repro
  cil conc explore --protocol <P> --inputs a,b[,..] [--depth-bound D]
                [--jobs N] [--naive] [--no-hunt] [--static-indep]
                [--cross-check] [--progress]
                [--metrics-out <file>] [--metrics-format F] [--timings]
                exhaustive DPOR: enumerate every
                interleaving and coin outcome to depth D on real threads,
                with sleep-set partial-order reduction (--naive disables it)
                after a bounded-preemption hunt pass (--no-hunt skips it);
                --cross-check verifies the enumerated outcome sets
                config-for-config against the simulator's configuration
                graph; --static-indep precomputes `cil lint`'s access
                footprints so threads slept before their first access was
                observed wake only on statically dependent steps (identical
                digest, never more executions). A violation exits 1 with a
                ddmin 1-minimal repro; a clean pass prints an
                exhaustive-to-depth-D certificate with a jobs-invariant
                execution digest
  cil serve     <P> [--instances N | --duration MS | --target-decisions N]
                [--shards J] [--slots N] [--batch N] [--inputs a,b[,..]]
                [--seed N] [--max-steps N] [--out <file>] [--progress]
                [--metrics-out <file>] [--metrics-format F] [--timings]
                coordination as a service: run N consensus instances to
                decision over the hardware atomic-register backend on J
                sharded arenas (allocation-free steady state), then report
                decisions/sec and service-latency percentiles and write
                them to BENCH_serve.json (--out; 'none' skips). --inputs
                defaults to alternating a,b. With --instances, stats and
                serve.* metric exports are a pure function of
                (--seed, --instances) — byte-identical at any --shards;
                --duration / --target-decisions are load-generator modes
  cil help

PROTOCOLS <P>: two | fig2 | fig2-literal | fig2-1w1r | fig3 | naive
               | n:<count> | kvalued:<k>
               (conc also accepts det:<R> and mutant:racy, the planted
               interleaving-sensitive consistency bug)
ADVERSARIES <A>: round-robin | random | split-keeper | laggard | leader
               | alternator | lookahead:<h> | \"(2,3,3,2,1)\" (paper notation)
STRATEGIES <S> (conc): random | pct | pct:<d> — pct randomizes thread
      priorities with d-1 change points (detection probability >= 1/(n*k^(d-1)))
RULES <R>: always-adopt | always-keep | adopt-if-greater | alternate
JOBS: --jobs 0 (default) = all cores, 1 = serial; results are identical at
      every setting — only wall time changes.
BACKENDS: check, mdp and survival run on a hash-consed, symmetry-reduced
      state space by default; --compat-dense switches to the original dense
      enumeration (same verdicts and values, more states).
OBSERVABILITY: --progress renders a live rate/ETA (sweep) or per-level BFS
      line (check) on stderr; --metrics-out writes a metrics snapshot in
      canonical JSON or OpenMetrics text (--metrics-format); --trace-json
      captures a structured JSONL event stream that `cil replay` re-executes
      and verifies; `cil report` analyzes both offline. Default exports are
      deterministic (byte-identical at any --jobs); --timings additionally
      records wall-clock telemetry — hierarchical spans, log-scale latency
      histograms (trial, gate-wait/run, per-sweep), reproducible in shape
      but never in value. None of these change results.
MUTANTS <M>: width-overflow | unauthorized-reader | unstable-decision
      | non-normalized-coin — the two-processor protocol with one planted
      model violation each; `cil audit mutant:<M>` must reject all four.
      Lint mutants: dead-write | width-waste — model-compliant (audit
      passes) but each fires its `cil lint` pass.
EXIT CODES: 0 = success; 1 = verification failed (`cil audit` found model
      violations, `cil lint` found findings, `cil prove` refuted a property
      or rejected a certificate, `cil replay` found trace anomalies or
      divergence — the report is printed on stdout); 2 = usage or I/O
      error (stderr).
"
    .to_string()
}

fn make_adversary<P: Protocol + 'static>(spec: &str, seed: u64) -> Result<BoxedAdversary<P>, String>
where
    P::State: 'static,
    P::Reg: 'static,
{
    Ok(match spec {
        "round-robin" => Box::new(RoundRobin::new()),
        "random" => Box::new(RandomScheduler::new(seed)),
        "split-keeper" => Box::new(SplitKeeper::new()),
        "laggard" => Box::new(LaggardFirst::new()),
        "leader" => Box::new(LeaderFirst::new()),
        "alternator" => Box::new(Alternator::new()),
        s if s.starts_with("lookahead:") => {
            let h: u32 = s["lookahead:".len()..]
                .parse()
                .map_err(|_| format!("bad lookahead horizon in adversary '{s}'"))?;
            Box::new(LookaheadAdversary::new(h))
        }
        s if s.starts_with('(') || s.chars().next().is_some_and(|c| c.is_ascii_digit()) => {
            let sched =
                parse_schedule(s, true).map_err(|e| format!("bad adversary schedule: {e}"))?;
            Box::new(FixedSchedule::new(sched))
        }
        other => return Err(format!("unknown adversary '{other}' (see cil help)")),
    })
}

/// Writes the registry's snapshot to `--metrics-out` in the selected
/// `--metrics-format`: canonical JSON (default) or OpenMetrics text.
/// A no-op when `--metrics-out` was not given, but `--metrics-format`
/// without a destination is rejected as a usage error.
fn write_metrics_out(args: &Args, registry: &Registry) -> Result<(), String> {
    let format = args.get("metrics-format");
    let Some(path) = args.get("metrics-out") else {
        if format.is_some() {
            return Err("--metrics-format needs --metrics-out <file>".into());
        }
        return Ok(());
    };
    let snap = registry.snapshot();
    let body = match format.unwrap_or("json") {
        "json" => snap.to_json(),
        "openmetrics" => cil_obs::export::to_openmetrics(&snap),
        other => {
            return Err(format!(
                "unknown --metrics-format '{other}' (json | openmetrics)"
            ))
        }
    };
    std::fs::write(path, body).map_err(|e| format!("cannot write --metrics-out file '{path}': {e}"))
}

/// Whether `--timings` was requested. Wall-clock telemetry only surfaces
/// through the metrics export, so the flag requires `--metrics-out`.
fn timings_flag(args: &Args) -> Result<bool, String> {
    let on = args.flag("timings");
    if on && args.get("metrics-out").is_none() {
        return Err(
            "--timings records wall-clock telemetry into the metrics export; \
             add --metrics-out <file>"
                .into(),
        );
    }
    Ok(on)
}

/// Elapsed nanoseconds since `started`, saturating at `u64::MAX`.
fn elapsed_ns(started: std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Builds the two-level span tree of a trial sweep from its wall-clock
/// duration and the per-trial timing histogram already in the registry:
/// `<root>` (batch overhead as self time) over `<root>/trial`.
fn merge_sweep_spans(registry: &Registry, root: &str, hist: &str, trials: u64, wall_ns: u64) {
    let trials_total = registry
        .snapshot()
        .log_histogram(hist)
        .map(|h| h.sum)
        .unwrap_or(0);
    let mut tree = SpanTree::new();
    tree.add(
        root,
        SpanStat {
            count: 1,
            total_ns: wall_ns,
            self_ns: wall_ns.saturating_sub(trials_total),
        },
    );
    tree.add(
        &format!("{root}/trial"),
        SpanStat {
            count: trials,
            total_ns: trials_total,
            self_ns: trials_total,
        },
    );
    registry.merge_spans(&tree);
}

fn run_one<P: Protocol + 'static>(protocol: &P, args: &Args) -> Result<String, String> {
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    if inputs.len() != protocol.processes() {
        return Err(format!(
            "--inputs: expected {} values for {}, got {}",
            protocol.processes(),
            protocol.name(),
            inputs.len()
        ));
    }
    let seed = args.get_u64("seed", 0)?;
    let spec = args.get_or("adversary", "random");
    let adversary = make_adversary::<P>(spec, seed)?;
    let adv_name = adversary.name();
    let max_steps = args.get_u64("max-steps", 1_000_000)?;
    let runner = Runner::new(protocol, &inputs, adversary)
        .seed(seed)
        .max_steps(max_steps)
        .record_trace(args.flag("trace"));
    let mut captured: Option<(&str, String)> = None;
    let out = if let Some(path) = args.get("trace-json") {
        let mut sink = JsonlSink::new(Vec::new());
        let out = runner.events(&mut sink).run();
        let body = String::from_utf8(sink.into_inner()).expect("events are valid UTF-8");
        captured = Some((path, body));
        out
    } else {
        runner.run()
    };
    let mut s = String::new();
    let _ = writeln!(s, "protocol : {}", protocol.name());
    let _ = writeln!(s, "adversary: {adv_name}   seed: {seed}");
    if let Some(t) = &out.trace {
        let _ = writeln!(s, "\ntrace ({} steps):", t.len());
        let _ = write!(s, "{t}");
    }
    let _ = writeln!(
        s,
        "\ndecisions: {:?}   steps: {:?}   total: {}",
        out.decisions
            .iter()
            .map(|d| d.map(|v| v.to_string()).unwrap_or_else(|| "—".into()))
            .collect::<Vec<_>>(),
        out.steps,
        out.total_steps
    );
    let _ = writeln!(
        s,
        "consistent: {}   nontrivial: {}   halt: {:?}",
        out.consistent(),
        out.nontrivial(),
        out.halt
    );
    if let Some((path, body)) = captured {
        let meta = json::ObjWriter::new()
            .str("type", "meta")
            .str("protocol", args.get_or("protocol", "two"))
            .str("inputs", args.get_or("inputs", ""))
            .num("seed", seed)
            .num("max_steps", max_steps)
            .str("adversary", spec)
            .finish();
        let events = body.lines().count();
        std::fs::write(path, format!("{meta}\n{body}"))
            .map_err(|e| format!("cannot write --trace-json file '{path}': {e}"))?;
        let _ = writeln!(
            s,
            "events: {events} JSONL records -> {path}   (verify: cil replay {path})"
        );
    }
    Ok(s)
}

macro_rules! with_protocol {
    ($args:expr, $f:ident) => {{
        let args = $args;
        let spec = args.get_or("protocol", "two");
        let n_inputs = parse_inputs(args.get_or("inputs", ""))?.len();
        match spec {
            "two" => $f(&TwoProcessor::new(), args),
            "fig2" => $f(&NUnbounded::three(), args),
            "fig2-literal" => $f(&NUnbounded::literal_fig2(3), args),
            "fig2-1w1r" => $f(&NUnbounded1W1R::three(), args),
            "fig3" => $f(&ThreeBounded::new(), args),
            "naive" => $f(&Naive::new(n_inputs.max(2)), args),
            s if s.starts_with("n:") => {
                let n: usize = s[2..]
                    .parse()
                    .map_err(|_| format!("bad processor count in '{s}'"))?;
                $f(&NUnbounded::new(n), args)
            }
            s if s.starts_with("kvalued:") => {
                let k: u64 = s["kvalued:".len()..]
                    .parse()
                    .map_err(|_| format!("bad k in '{s}'"))?;
                if n_inputs <= 2 {
                    $f(&KValued::new(TwoProcessor::new(), k), args)
                } else {
                    $f(&KValued::new(NUnbounded::new(n_inputs), k), args)
                }
            }
            other => Err(format!("unknown protocol '{other}' (see cil help)")),
        }
    }};
}

/// `cil run` — execute one run.
pub fn run(args: &Args) -> Result<String, String> {
    with_protocol!(args, run_one)
}

/// Re-runs a protocol under a fixed schedule and returns the regenerated
/// JSONL event body (no meta line) for byte-for-byte comparison.
fn capture_events_one<P: Protocol + 'static>(protocol: &P, args: &Args) -> Result<String, String>
where
    P::State: 'static,
    P::Reg: 'static,
{
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    if inputs.len() != protocol.processes() {
        return Err(format!(
            "--inputs: expected {} values for {}, got {}",
            protocol.processes(),
            protocol.name(),
            inputs.len()
        ));
    }
    let seed = args.get_u64("seed", 0)?;
    let adversary = make_adversary::<P>(args.get_or("adversary", "round-robin"), seed)?;
    let max_steps = args.get_u64("max-steps", 1_000_000)?;
    let mut sink = JsonlSink::new(Vec::new());
    Runner::new(protocol, &inputs, adversary)
        .seed(seed)
        .max_steps(max_steps)
        .events(&mut sink)
        .run();
    Ok(String::from_utf8(sink.into_inner()).expect("events are valid UTF-8"))
}

/// `cil replay <file> [--audit]` — re-execute a `--trace-json` capture and
/// verify the regenerated event stream matches the captured one
/// byte-for-byte. With `--audit`, first verify the capture is a valid
/// serialization of atomic register operations (happens-before audit: no
/// stale/phantom reads, declared access sets respected, decisions
/// irrevocable).
///
/// The executor's coin RNG is independent of the adversary's randomness, so
/// re-running the captured *schedule* (the pids of the step events) with the
/// captured seed reproduces every coin flip, step, and decision exactly.
///
/// # Errors
///
/// [`CliFailure::Audit`] (exit 1) on trace anomalies or divergence;
/// [`CliFailure::Usage`] (exit 2) on unreadable or malformed captures.
pub fn replay(args: &Args) -> Result<String, CliFailure> {
    let path = args
        .pos(0)
        .or_else(|| args.get("file"))
        .ok_or_else(|| "replay needs a capture file: cil replay <out.jsonl>".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let mut lines = text.lines();
    let meta_line = lines.next().ok_or_else(|| format!("'{path}' is empty"))?;
    let meta = json::parse_flat(meta_line).map_err(|e| format!("bad meta line: {e}"))?;
    if meta.get("type").and_then(Value::as_str) != Some("meta") {
        return Err(CliFailure::Usage(format!(
            "'{path}' does not start with a meta record (capture with cil run --trace-json)"
        )));
    }
    let meta_str = |k: &str| {
        meta.get(k)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("meta record missing '{k}'"))
    };
    let meta_num = |k: &str| {
        meta.get(k)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("meta record missing '{k}'"))
    };
    let protocol = meta_str("protocol")?;
    let inputs = meta_str("inputs")?;
    let seed = meta_num("seed")?;
    let max_steps = meta_num("max_steps")?;
    let captured: Vec<&str> = lines.collect();

    // The captured schedule: pids of the step events, in order.
    let mut schedule = Vec::new();
    for (i, line) in captured.iter().enumerate() {
        let ev = json::parse_flat(line).map_err(|e| format!("bad event on line {}: {e}", i + 2))?;
        if ev.get("type").and_then(Value::as_str) == Some("step") {
            let pid = ev
                .get("pid")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("step event on line {} has no pid", i + 2))?;
            // One-based, as the adversary schedule notation expects.
            schedule.push(pid + 1);
        }
    }
    let sched_spec = format!(
        "({})",
        schedule
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    let tokens = [
        "replay".to_string(),
        "--protocol".into(),
        protocol.to_string(),
        "--inputs".into(),
        inputs.to_string(),
        "--seed".into(),
        seed.to_string(),
        "--max-steps".into(),
        max_steps.to_string(),
        "--adversary".into(),
        sched_spec,
    ];
    let inner = Args::parse(tokens, &[])?;

    // Happens-before audit of the captured stream, before re-execution: the
    // capture's own claim — "I am a serialization of atomic register
    // operations" — is checked against the protocol's declared registers.
    let mut audit_section = String::new();
    if args.flag("audit") {
        let auditor = with_protocol!(&inner, trace_auditor_one)?;
        let report = auditor.audit_jsonl(&captured.join("\n"))?;
        audit_section = report.render();
        if !report.ok() {
            return Err(CliFailure::Audit(format!(
                "trace '{path}' FAILED the happens-before audit:\n{audit_section}"
            )));
        }
    }

    let regenerated = with_protocol!(&inner, capture_events_one)?;
    let regen: Vec<&str> = regenerated.lines().collect();
    for (i, (a, b)) in captured.iter().zip(&regen).enumerate() {
        if a != b {
            return Err(CliFailure::Audit(format!(
                "replay DIVERGED at event {i}:\n  captured: {a}\n  replayed: {b}"
            )));
        }
    }
    if captured.len() != regen.len() {
        return Err(CliFailure::Audit(format!(
            "replay DIVERGED: {} captured events vs {} replayed",
            captured.len(),
            regen.len()
        )));
    }
    let mut s = format!(
        "replayed {protocol} from '{path}' (seed {seed}, {} steps)\n\
         {} events re-executed — trace matches byte-for-byte ✓\n",
        schedule.len(),
        captured.len()
    );
    if !audit_section.is_empty() {
        let _ = writeln!(s, "\nhappens-before audit of the capture:");
        s.push_str(&audit_section);
    }
    Ok(s)
}

/// Builds the happens-before auditor for a protocol (used by
/// `cil replay --audit`).
fn trace_auditor_one<P: Protocol + 'static>(
    protocol: &P,
    _args: &Args,
) -> Result<TraceAuditor, String> {
    Ok(TraceAuditor::for_protocol(protocol))
}

/// How far the symbolic walk explores protocols with unbounded counters
/// (the §5 `num` field): enough to exercise every program location several
/// times while keeping `cil audit all` instant.
const UNBOUNDED_WALK_STATES: usize = 600;

/// Audits one protocol spec. Each protocol supplies its own packer so the
/// width-bound check (b) sees the same encoding `cil threads` executes on.
fn audit_one(spec: &str) -> Result<AuditReport, String> {
    Ok(match spec {
        "two" => Auditor::new(&TwoProcessor::new()).with_packable().run(),
        "fig2" => Auditor::new(&NUnbounded::three())
            .with_packable()
            .with_max_states(UNBOUNDED_WALK_STATES)
            .run(),
        "fig2-literal" => Auditor::new(&NUnbounded::literal_fig2(3))
            .with_packable()
            .with_max_states(UNBOUNDED_WALK_STATES)
            .run(),
        "fig2-1w1r" => Auditor::new(&NUnbounded1W1R::three())
            .with_packable()
            .with_max_states(UNBOUNDED_WALK_STATES)
            .run(),
        "fig3" => Auditor::new(&ThreeBounded::new()).with_packable().run(),
        "naive" => Auditor::new(&Naive::new(3)).with_packable().run(),
        s if s.starts_with("det:") => {
            let rule = parse_rule(&s["det:".len()..])?;
            Auditor::new(&DetTwo::new(rule)).with_packable().run()
        }
        s if s.starts_with("n:") => {
            let n: usize = s[2..]
                .parse()
                .map_err(|_| format!("bad processor count in '{s}'"))?;
            Auditor::new(&NUnbounded::new(n))
                .with_packable()
                .with_max_states(UNBOUNDED_WALK_STATES)
                .run()
        }
        s if s.starts_with("kvalued:") => {
            let k: u64 = s["kvalued:".len()..]
                .parse()
                .map_err(|_| format!("bad k in '{s}'"))?;
            // KReg cannot implement Packable (Inner/Cand words are
            // ambiguous on unpack), so the packer is supplied by hand:
            // the same encoding the register specs' widths were sized for.
            Auditor::new(&KValued::new(TwoProcessor::new(), k))
                .with_inputs((0..k.max(2)).map(Val))
                .with_packer(|r: &KReg<cil_core::two::TwoReg>| match r {
                    KReg::Inner(inner) => inner.pack(),
                    KReg::Cand(c) => c.map_or(0, |v| v + 1),
                })
                .run()
        }
        s if s.starts_with("mutant:") => {
            let key = &s["mutant:".len()..];
            if let Some(kind) = MutantKind::parse(key) {
                Auditor::new(&MutantTwo::new(kind)).with_packable().run()
            } else if let Some(kind) = LintMutant::parse(key) {
                Auditor::new(&LintMutantTwo::new(kind))
                    .with_packable()
                    .run()
            } else {
                return Err(unknown_mutant(s));
            }
        }
        other => return Err(format!("unknown protocol '{other}' (see cil help)")),
    })
}

/// The error for an unrecognized `mutant:<M>` spec, listing both mutant
/// families (model mutants and lint mutants).
fn unknown_mutant(spec: &str) -> String {
    format!(
        "unknown mutant in '{spec}' (one of: {} | {})",
        MutantKind::all().map(|k| k.key()).join(" | "),
        LintMutant::all().map(|k| k.key()).join(" | ")
    )
}

/// The specs `cil audit all` covers: every built-in protocol family,
/// including a Theorem 4 deterministic victim and the k-valued composite.
const AUDIT_ALL: &[&str] = &[
    "two",
    "fig2",
    "fig2-literal",
    "fig2-1w1r",
    "fig3",
    "naive",
    "det:always-adopt",
    "n:4",
    "kvalued:4",
];

/// `cil audit [<P>|all|mutant:<M>]` — static model-compliance analysis.
///
/// # Errors
///
/// [`CliFailure::Audit`] (exit 1) when any audited protocol violates a
/// model clause; [`CliFailure::Usage`] (exit 2) for unknown specs.
pub fn audit(args: &Args) -> Result<String, CliFailure> {
    let spec = args
        .pos(0)
        .or_else(|| args.get("protocol"))
        .unwrap_or("all")
        .to_string();
    let specs: Vec<&str> = if spec == "all" {
        AUDIT_ALL.to_vec()
    } else {
        vec![spec.as_str()]
    };
    let json = args.flag("json");
    let mut out = String::new();
    let mut failed = 0usize;
    for (i, s) in specs.iter().enumerate() {
        if i > 0 && !json {
            out.push('\n');
        }
        let report = audit_one(s).map_err(CliFailure::Usage)?;
        if !report.ok() {
            failed += 1;
        }
        if json {
            out.push_str(&report.to_json());
            out.push('\n');
        } else {
            out.push_str(&report.render());
        }
    }
    if specs.len() > 1 && !json {
        let _ = writeln!(
            out,
            "\n{}/{} protocols pass the model-compliance audit",
            specs.len() - failed,
            specs.len()
        );
    }
    if failed > 0 {
        Err(CliFailure::Audit(out))
    } else {
        Ok(out)
    }
}

/// Lints one protocol spec, returning the report together with the
/// footprint table the passes were computed from. Same construction as
/// [`audit_one`] (same inputs, budgets and packers), so the lint verdicts
/// describe exactly the graph the audit walked.
fn lint_one(spec: &str) -> Result<(LintReport, FootprintTable), String> {
    Ok(match spec {
        "two" => lint_with_footprints(&Auditor::new(&TwoProcessor::new()).with_packable()),
        "fig2" => lint_with_footprints(
            &Auditor::new(&NUnbounded::three())
                .with_packable()
                .with_max_states(UNBOUNDED_WALK_STATES),
        ),
        "fig2-literal" => lint_with_footprints(
            &Auditor::new(&NUnbounded::literal_fig2(3))
                .with_packable()
                .with_max_states(UNBOUNDED_WALK_STATES),
        ),
        "fig2-1w1r" => lint_with_footprints(
            &Auditor::new(&NUnbounded1W1R::three())
                .with_packable()
                .with_max_states(UNBOUNDED_WALK_STATES),
        ),
        "fig3" => lint_with_footprints(&Auditor::new(&ThreeBounded::new()).with_packable()),
        "naive" => lint_with_footprints(&Auditor::new(&Naive::new(3)).with_packable()),
        s if s.starts_with("det:") => {
            let rule = parse_rule(&s["det:".len()..])?;
            lint_with_footprints(&Auditor::new(&DetTwo::new(rule)).with_packable())
        }
        s if s.starts_with("n:") => {
            let n: usize = s[2..]
                .parse()
                .map_err(|_| format!("bad processor count in '{s}'"))?;
            lint_with_footprints(
                &Auditor::new(&NUnbounded::new(n))
                    .with_packable()
                    .with_max_states(UNBOUNDED_WALK_STATES),
            )
        }
        s if s.starts_with("kvalued:") => {
            let k: u64 = s["kvalued:".len()..]
                .parse()
                .map_err(|_| format!("bad k in '{s}'"))?;
            lint_with_footprints(
                &Auditor::new(&KValued::new(TwoProcessor::new(), k))
                    .with_inputs((0..k.max(2)).map(Val))
                    .with_packer(|r: &KReg<cil_core::two::TwoReg>| match r {
                        KReg::Inner(inner) => inner.pack(),
                        KReg::Cand(c) => c.map_or(0, |v| v + 1),
                    }),
            )
        }
        s if s.starts_with("mutant:") => {
            let key = &s["mutant:".len()..];
            if let Some(kind) = LintMutant::parse(key) {
                lint_with_footprints(&Auditor::new(&LintMutantTwo::new(kind)).with_packable())
            } else if let Some(kind) = MutantKind::parse(key) {
                lint_with_footprints(&Auditor::new(&MutantTwo::new(kind)).with_packable())
            } else {
                return Err(unknown_mutant(s));
            }
        }
        other => return Err(format!("unknown protocol '{other}' (see cil help)")),
    })
}

/// `cil lint [<P>|all|mutant:<M>] [--json] [--footprints]` — dataflow lints
/// over the symbolic transition graph.
///
/// # Errors
///
/// [`CliFailure::Audit`] (exit 1) when any linted protocol has findings;
/// [`CliFailure::Usage`] (exit 2) for unknown specs.
pub fn lint(args: &Args) -> Result<String, CliFailure> {
    let spec = args
        .pos(0)
        .or_else(|| args.get("protocol"))
        .unwrap_or("all")
        .to_string();
    let specs: Vec<&str> = if spec == "all" {
        AUDIT_ALL.to_vec()
    } else {
        vec![spec.as_str()]
    };
    let json = args.flag("json");
    let want_footprints = args.flag("footprints");
    let mut out = String::new();
    let mut failed = 0usize;
    for (i, s) in specs.iter().enumerate() {
        if i > 0 && !json {
            out.push('\n');
        }
        let (report, table) = lint_one(s).map_err(CliFailure::Usage)?;
        if !report.ok() {
            failed += 1;
        }
        if json {
            out.push_str(&report.to_json());
            out.push('\n');
            if want_footprints {
                out.push_str(&table.to_json());
                out.push('\n');
            }
        } else {
            out.push_str(&report.render());
            if want_footprints {
                out.push('\n');
                out.push_str(&table.render());
            }
        }
    }
    if specs.len() > 1 && !json {
        let _ = writeln!(
            out,
            "\n{}/{} protocols are lint-clean",
            specs.len() - failed,
            specs.len()
        );
    }
    if failed > 0 {
        Err(CliFailure::Audit(out))
    } else {
        Ok(out)
    }
}

macro_rules! with_prove_protocol {
    ($spec:expr, $args:expr, $f:ident) => {{
        let spec: &str = $spec;
        let args = $args;
        match spec {
            "two" => $f(&TwoProcessor::new(), &PackCodec, args),
            "fig2" => $f(&NUnbounded::three(), &PackCodec, args),
            "fig2-literal" => $f(&NUnbounded::literal_fig2(3), &PackCodec, args),
            "fig2-1w1r" => $f(&NUnbounded1W1R::three(), &PackCodec, args),
            "fig3" => $f(&ThreeBounded::new(), &PackCodec, args),
            "naive" => $f(&Naive::new(2), &PackCodec, args),
            "mutant:racy" => $f(&RacyTwo::default(), &PackCodec, args),
            s if s.starts_with("det:") => {
                let rule = parse_rule(&s["det:".len()..]).map_err(CliFailure::Usage)?;
                $f(&DetTwo::new(rule), &PackCodec, args)
            }
            s if s.starts_with("n:") => {
                let n: usize = s[2..]
                    .parse()
                    .map_err(|_| CliFailure::Usage(format!("bad processor count in '{s}'")))?;
                $f(&NUnbounded::new(n), &PackCodec, args)
            }
            s if s.starts_with("kvalued:") => {
                let k: u64 = s["kvalued:".len()..]
                    .parse()
                    .map_err(|_| CliFailure::Usage(format!("bad k in '{s}'")))?;
                let p = KValued::new(TwoProcessor::new(), k);
                let codec = KRegCodec::for_protocol(&p);
                $f(&p, &codec, args)
            }
            other => Err(CliFailure::Usage(format!(
                "unknown protocol '{other}' (see cil help)"
            ))),
        }
    }};
}

/// The specs [`prove`] can infer a checked certificate's protocol from, by
/// matching the `protocol` name embedded in the certificate.
fn prove_spec_candidates() -> Vec<String> {
    let mut specs: Vec<String> = [
        "two",
        "fig2",
        "fig2-literal",
        "fig2-1w1r",
        "fig3",
        "naive",
        "mutant:racy",
    ]
    .map(String::from)
    .to_vec();
    specs.extend((2..=8).map(|n| format!("n:{n}")));
    specs.extend((2..=8).map(|k| format!("kvalued:{k}")));
    for rule in [
        "always-adopt",
        "always-keep",
        "adopt-if-greater",
        "alternate",
    ] {
        specs.push(format!("det:{rule}"));
    }
    specs
}

/// `Protocol::name()` of a prove spec, used to map certificates back to
/// protocol instances.
fn prove_proto_name<P, C>(protocol: &P, _codec: &C, _args: &Args) -> Result<String, CliFailure>
where
    P: Protocol + Sync,
    P::Reg: Send + Sync,
    C: WordCodec<P::Reg>,
{
    Ok(protocol.name())
}

/// Resolves a prove spec to its protocol's display name.
fn prove_spec_name(spec: &str, args: &Args) -> Result<String, CliFailure> {
    with_prove_protocol!(spec, args, prove_proto_name)
}

/// Runs [`check_certificate`] for one protocol instance against the
/// certificate text passed through `--check-cert` (re-read here).
fn prove_check_one<P, C>(protocol: &P, _codec: &C, args: &Args) -> Result<String, CliFailure>
where
    P: Protocol + Sync,
    P::Reg: Send + Sync,
    C: WordCodec<P::Reg>,
{
    let path = args.get("check-cert").expect("caller checked");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    match check_certificate(protocol, &text) {
        Ok(check) => Ok(format!("{check}\n")),
        Err(e) => Err(CliFailure::Audit(format!(
            "certificate check FAILED: {e}\n"
        ))),
    }
}

/// Runs the prover for one protocol instance: BFS reach-set closure per
/// input assignment, safety checked at every insertion. On REFUTED the
/// counterexample schedule is replayed on native threads (best-effort) and
/// ddmin-shrunk when it reproduces.
fn prove_run<P, C>(protocol: &P, codec: &C, args: &Args) -> Result<String, CliFailure>
where
    P: Protocol + Sync,
    P::Reg: Send + Sync,
    C: WordCodec<P::Reg>,
{
    let domain = match args.get("domain") {
        Some(d) => parse_inputs(d)?,
        None => vec![Val::A, Val::B],
    };
    if domain.is_empty() {
        return Err(CliFailure::Usage(
            "--domain needs at least one value".into(),
        ));
    }
    let max_configs = args.get_u64("max-configs", 262_144)? as usize;
    let report = Prover::new(protocol)
        .with_domain(domain)
        .with_max_configs(max_configs)
        .run();
    let json = args.flag("json");
    let mut out = if json {
        let mut s = report.to_json();
        s.push('\n');
        s
    } else {
        report.render()
    };
    if let ProveOutcome::Refuted(cex) = &report.outcome {
        if !json {
            let inputs = cex.inputs.clone();
            let schedule = cex.schedule();
            let budget = (schedule.len() as u64).max(4) * 2;
            let failing = |candidate: &[usize]| {
                let run: ConcOutcome = ControlledRun::new(protocol, &inputs)
                    .seed(0)
                    .budget(budget)
                    .run_with_codec(
                        codec,
                        Box::new(ReplaySchedule::best_effort(candidate.to_vec())),
                    );
                match cex.property {
                    "agreement" => !run.consistent(),
                    _ => !run.nontrivial(),
                }
            };
            if failing(&schedule) {
                let minimal = ddmin_schedule(&schedule, failing);
                let _ = writeln!(
                    out,
                    "  native replay (best-effort schedule): reproduces the violation"
                );
                let _ = writeln!(
                    out,
                    "  1-minimal repro (ddmin): {} steps — {minimal:?}",
                    minimal.len()
                );
            } else {
                let _ = writeln!(
                    out,
                    "  (schedule-only native replay does not reproduce this \
                     counterexample — it depends on forced coin branches)"
                );
            }
        }
        return Err(CliFailure::Audit(out));
    }
    if let Some(path) = args.get("cert") {
        let Some(cert) = report.certificate() else {
            return Err(CliFailure::Usage(
                "--cert: no certificate — the result was BOUNDED, not PROVED \
                 (raise --max-configs)"
                    .into(),
            ));
        };
        std::fs::write(path, &cert)
            .map_err(|e| format!("cannot write --cert file '{path}': {e}"))?;
        if !json {
            let _ = writeln!(out, "certificate: {path} ({} bytes)", cert.len());
        }
    }
    Ok(out)
}

/// `cil prove [<P>] [--cert <file>] [--json] [--domain ..] [--max-configs N]`
/// / `cil prove --check-cert <file> [<P>]` — safety proofs with
/// certificates.
///
/// # Errors
///
/// [`CliFailure::Audit`] (exit 1) when a property is refuted or a
/// certificate fails to verify; [`CliFailure::Usage`] (exit 2) for unknown
/// specs, unreadable files, or `--cert` without a PROVED result.
pub fn prove(args: &Args) -> Result<String, CliFailure> {
    let explicit = args.pos(0).or_else(|| args.get("protocol"));
    if let Some(path) = args.get("check-cert") {
        let spec = match explicit {
            Some(s) => s.to_string(),
            None => {
                // Infer the protocol from the certificate's embedded name.
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read '{path}': {e}"))?;
                let node = json::parse_value(&text)
                    .map_err(|e| format!("malformed certificate JSON: {e}"))?;
                let name = node
                    .as_obj()
                    .and_then(|o| o.get("protocol"))
                    .and_then(json::Node::as_str)
                    .ok_or_else(|| "certificate has no protocol field".to_string())?
                    .to_string();
                prove_spec_candidates()
                    .into_iter()
                    .find(|s| prove_spec_name(s, args).is_ok_and(|n| n == name))
                    .ok_or_else(|| {
                        CliFailure::Usage(format!(
                            "cannot map certificate protocol '{name}' to a spec; pass it \
                             explicitly: cil prove --check-cert {path} <P>"
                        ))
                    })?
            }
        };
        return with_prove_protocol!(spec.as_str(), args, prove_check_one);
    }
    with_prove_protocol!(explicit.unwrap_or("two"), args, prove_run)
}

fn sweep_one<P: Protocol + Sync + 'static>(protocol: &P, args: &Args) -> Result<String, String>
where
    P::State: 'static,
    P::Reg: 'static,
{
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    if inputs.len() != protocol.processes() {
        return Err(format!(
            "--inputs: expected {} values for {}, got {}",
            protocol.processes(),
            protocol.name(),
            inputs.len()
        ));
    }
    let trials = args.get_u64("trials", 1_000)?;
    let root_seed = args.get_u64("seed", 0)?;
    let max_steps = args.get_u64("max-steps", 1_000_000)?;
    let jobs = args.get_u64("jobs", 0)? as usize;
    let spec = args.get_or("adversary", "random");
    // Validate the adversary spec once, up front, so a typo fails fast
    // instead of panicking inside a worker.
    make_adversary::<P>(spec, 0)?;
    let sweep = TrialSweep::new(trials).root_seed(root_seed).jobs(jobs);
    let effective = sweep.effective_jobs();
    let metrics_out = args.get("metrics-out");
    let timings = timings_flag(args)?;
    let registry = Registry::new();
    let observer = (args.flag("progress") || metrics_out.is_some()).then(|| {
        let mut obs = SweepObserver::new(&registry);
        if args.flag("progress") {
            obs = obs.with_progress(ProgressMeter::new("sweep", Some(trials)));
        }
        if timings {
            obs = obs.with_timing(&registry, "sweep");
        }
        obs
    });
    let sweep_started = timings.then(std::time::Instant::now);
    let stats = sweep.run_observed(observer.as_ref(), |trial| {
        let adversary =
            make_adversary::<P>(spec, trial.seed).expect("adversary spec validated above");
        let out = Runner::new(protocol, &inputs, adversary)
            .seed(trial.seed)
            .max_steps(max_steps)
            .run();
        TrialResult::from_run(&out)
    });
    if let Some(obs) = &observer {
        obs.finish();
    }
    if let Some(started) = sweep_started {
        merge_sweep_spans(
            &registry,
            "sweep",
            "sweep.trial_ns",
            stats.trials,
            elapsed_ns(started),
        );
    }
    write_metrics_out(args, &registry)?;
    let mut s = String::new();
    let _ = writeln!(s, "protocol : {}", protocol.name());
    let _ = writeln!(
        s,
        "adversary: {spec}   root seed: {root_seed}   jobs: {effective}"
    );
    let _ = writeln!(
        s,
        "\ntrials: {}   decided: {}   undecided: {}   violations: {}",
        stats.trials,
        stats.decided,
        stats.undecided,
        stats.violations()
    );
    let _ = writeln!(
        s,
        "steps: mean {}   min {}   max {}",
        stats.mean().map(fnum).unwrap_or_else(|| "—".into()),
        stats.metric_min().unwrap_or(0),
        stats.metric_max().unwrap_or(0)
    );
    if let (Some(lo), Some(hi)) = (
        stats.decided_by_k.keys().next(),
        stats.decided_by_k.keys().next_back(),
    ) {
        let _ = writeln!(s, "decided-by-k support: {lo}..={hi} steps");
    }
    if stats.failures.is_empty() {
        let _ = writeln!(s, "\nno safety violations in {} trials ✓", stats.trials);
    } else {
        let _ = writeln!(s, "\nfailing trials (replay with `cil run ... --trace`):");
        for f in &stats.failures {
            let seed = cil_sim::SplitMix64::jump(root_seed, f.trial).next_u64();
            let _ = writeln!(
                s,
                "  trial {:>6}  {:?}  replay: cil run --protocol {} --inputs {} \
                 --adversary {spec} --seed {seed} --max-steps {max_steps} --trace",
                f.trial,
                f.kind,
                conc_protocol_spec(args),
                args.get_or("inputs", ""),
            );
        }
    }
    Ok(s)
}

/// `cil sweep` — parallel Monte-Carlo trial sweep; results are a pure
/// function of `(--seed, --trials)`, independent of `--jobs`.
pub fn sweep(args: &Args) -> Result<String, String> {
    with_protocol!(args, sweep_one)
}

fn check_one<P>(protocol: &P, args: &Args) -> Result<String, String>
where
    P: Symmetric + Sync,
    P::State: Send + Sync,
    P::Reg: Send + Sync,
{
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    if inputs.len() != protocol.processes() {
        return Err(format!(
            "--inputs: expected {} values, got {}",
            protocol.processes(),
            inputs.len()
        ));
    }
    let depth = args.get_u64("depth", 10)? as usize;
    let max_configs = args.get_u64("max-configs", 3_000_000)? as usize;
    let jobs = args.get_u64("jobs", 0)? as usize;
    let timings = timings_flag(args)?;
    let registry = Registry::new();
    let reporter = args.flag("progress").then(|| LevelReporter::new("check"));
    // Per-level wall clock (only with --timings): each BFS level pushes the
    // time since the previous one into the `check.level_ns` series.
    let level_clock = timings.then(|| {
        (
            registry.series("check.level_ns"),
            std::sync::Mutex::new(std::time::Instant::now()),
        )
    });
    let track = |d: usize, frontier: usize, generated: usize, fresh: usize| {
        if let Some(rep) = &reporter {
            rep.level(d, frontier, generated, fresh);
        }
        if let Some((series, last)) = &level_clock {
            let mut last = last
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            series.push(elapsed_ns(*last));
            *last = std::time::Instant::now();
        }
    };
    let observe_levels = reporter.is_some() || level_clock.is_some();
    let (report, compact_stats) = if args.flag("compat-dense") {
        let mut explorer = Explorer::new(protocol, &inputs)
            .max_depth(depth)
            .max_configs(max_configs)
            .jobs(jobs);
        if observe_levels {
            explorer = explorer.on_level(|l| track(l.depth, l.frontier, l.generated, l.fresh));
        }
        (explorer.par_run(), None)
    } else {
        let mut explorer = CompactExplorer::new(protocol, &inputs)
            .max_depth(depth)
            .max_configs(max_configs);
        if observe_levels {
            explorer = explorer.on_level(|l| track(l.depth, l.frontier, l.generated, l.fresh));
        }
        let (report, stats) = explorer.run_with_stats();
        (report, Some(stats))
    };
    registry
        .counter("check.configs")
        .add(report.explored as u64);
    registry
        .counter("check.violations")
        .add(report.violations.len() as u64);
    registry.gauge("check.depth").set(depth as u64);
    registry
        .gauge("check.complete")
        .set(u64::from(report.complete));
    let fresh_series = registry.series("check.level_fresh");
    let generated_series = registry.series("check.level_generated");
    for l in &report.levels {
        fresh_series.push(l.fresh as u64);
        generated_series.push(l.generated as u64);
    }
    if let Some(cs) = &compact_stats {
        registry.gauge("check.classes").set(cs.classes as u64);
        registry.counter("check.sym_hits").add(cs.sym_hits);
    }
    write_metrics_out(args, &registry)?;
    let mut s = format!(
        "exhaustive check of {} to depth {}\n{} configurations explored \
         (complete: {})\nviolations: {}\n{}\n",
        protocol.name(),
        depth,
        report.explored,
        report.complete,
        report.violations.len(),
        if report.safe() {
            "consistency and nontriviality hold on every explored run ✓"
        } else {
            "VIOLATIONS FOUND — see above"
        }
    );
    if let Some(cs) = &compact_stats {
        let _ = writeln!(
            s,
            "symmetry-reduced: {} canonical classes ({} orbit hits; \
             {} state / {} register words interned)",
            cs.classes, cs.sym_hits, cs.interned_states, cs.interned_regs
        );
    }
    if args.flag("stats") {
        let _ = writeln!(s, "\nlevel  frontier  generated  fresh  dedup-hit");
        for l in &report.levels {
            let hit = if l.generated == 0 {
                "    —".to_string()
            } else {
                format!(
                    "{:4.1}%",
                    100.0 * (1.0 - l.fresh as f64 / l.generated as f64)
                )
            };
            let _ = writeln!(
                s,
                "{:>5}  {:>8}  {:>9}  {:>5}  {:>9}",
                l.depth, l.frontier, l.generated, l.fresh, hit
            );
        }
    }
    Ok(s)
}

/// `cil check` — exhaustive bounded safety check.
pub fn check(args: &Args) -> Result<String, String> {
    with_protocol!(args, check_one)
}

/// `cil mdp` — exact Theorem 7 analysis of the two-processor protocol.
///
/// Runs on the hash-consed, symmetry-reduced backend by default;
/// `--compat-dense` switches to the original dense solver (identical
/// numbers, more enumerated states).
pub fn mdp(args: &Args) -> Result<String, String> {
    let inputs = parse_inputs(args.get_or("inputs", "a,b"))?;
    if inputs.len() != 2 {
        return Err("--inputs: the mdp command analyses the 2-processor protocol".into());
    }
    let kmax = args.get_u64("kmax", 20)? as usize;
    let jobs = args.get_u64("jobs", 0)? as usize;
    let timings = timings_flag(args)?;
    let timer = if timings {
        SpanTimer::monotonic()
    } else {
        SpanTimer::disabled()
    };
    let p = TwoProcessor::new();
    let root = timer.enter("mdp");
    let (header, steps, total, curve, compact) = if args.flag("compat-dense") {
        let solver = {
            let _g = timer.enter("build");
            MdpSolver::build(&p, &inputs, 1_000_000)
        };
        let (steps, total) = {
            let _g = timer.enter("solve");
            (
                solver.expected_steps(&p, Objective::StepsOf(0), 1e-12, 100_000),
                solver.expected_steps(&p, Objective::TotalSteps, 1e-12, 100_000),
            )
        };
        let curve = {
            let _g = timer.enter("survival");
            solver.survival(&p, 0, kmax, 1e-13, 200_000)
        };
        let header = format!("configuration space: {} states (dense)", solver.size());
        (header, steps, total, curve, None)
    } else {
        // The per-processor objective constrains which symmetries apply, so
        // the P0 analysis and the total-steps analysis quotient differently.
        let (p0, any) = {
            let _g = timer.enter("build");
            let p0 = CompactMdp::build(
                &p,
                &inputs,
                &CompactOptions {
                    target: Some(0),
                    ..CompactOptions::default()
                },
            )?;
            let any = CompactMdp::build(&p, &inputs, &CompactOptions::default())?;
            (p0, any)
        };
        let (steps, total) = {
            let _g = timer.enter("solve");
            (
                p0.expected_steps(Objective::StepsOf(0), 1e-12, 100_000, jobs),
                any.expected_steps(Objective::TotalSteps, 1e-12, 100_000, jobs),
            )
        };
        let curve = {
            let _g = timer.enter("survival");
            p0.survival(0, kmax, 1e-13, 200_000, jobs)
        };
        let header = format!(
            "configuration space: {} canonical classes (P0 objective), \
             {} (any-processor objective)",
            p0.size(),
            any.size()
        );
        (header, steps, total, curve, Some(p0))
    };
    drop(root);
    let registry = Registry::new();
    registry.merge_spans(&timer.finish());
    if let Some(m) = &compact {
        m.export_metrics(&registry);
    }
    registry
        .gauge("mdp.iterations")
        .set(steps.iterations as u64);
    // Per-sweep VI residuals, in femto-units (1e-15). Deterministic and
    // jobs-invariant, so they ride in the default export.
    let residual_fe = |r: f64| (r * 1e15).round() as u64;
    let p0_res = registry.series("mdp.vi.p0.residual_fe");
    for r in &steps.residuals {
        p0_res.push(residual_fe(*r));
    }
    let total_res = registry.series("mdp.vi.total.residual_fe");
    for r in &total.residuals {
        total_res.push(residual_fe(*r));
    }
    if timings {
        // Wall clock per VI sweep — opt-in, never byte-reproducible.
        let p0_ns = registry.series("mdp.vi.p0.sweep_ns");
        for v in &steps.sweep_ns {
            p0_ns.push(*v);
        }
        let total_ns = registry.series("mdp.vi.total.sweep_ns");
        for v in &total.sweep_ns {
            total_ns.push(*v);
        }
    }
    write_metrics_out(args, &registry)?;
    let mut s = String::new();
    let _ = writeln!(s, "{header}");
    let _ = writeln!(
        s,
        "E[steps of P0 | optimal adaptive adversary] = {}  (paper Corollary: <= 10)",
        fnum(steps.value)
    );
    let _ = writeln!(
        s,
        "E[total steps | optimal adaptive adversary] = {}",
        fnum(total.value)
    );
    let _ = writeln!(
        s,
        "\nexact worst-case survival P[P0 undecided after k steps]:"
    );
    for (k, v) in curve.iter().enumerate().step_by(2) {
        let _ = writeln!(s, "  k = {k:>2}: {}", fnum(*v));
    }
    Ok(s)
}

fn survival_one<P: Symmetric>(protocol: &P, args: &Args) -> Result<String, String> {
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    if inputs.len() != protocol.processes() {
        return Err(format!(
            "--inputs: expected {} values for {}, got {}",
            protocol.processes(),
            protocol.name(),
            inputs.len()
        ));
    }
    let target = args.get_u64("target", 0)? as usize;
    if target >= protocol.processes() {
        return Err(format!(
            "--target: processor {target} does not exist in {}",
            protocol.name()
        ));
    }
    let kmax = args.get_u64("kmax", 20)? as usize;
    let jobs = args.get_u64("jobs", 0)? as usize;
    let max_configs = args.get_u64("max-configs", 2_000_000)? as usize;
    let depth = match args.get("depth") {
        Some(_) => Some(args.get_u64("depth", 0)? as usize),
        None => None,
    };
    let timings = timings_flag(args)?;
    let timer = if timings {
        SpanTimer::monotonic()
    } else {
        SpanTimer::disabled()
    };
    let registry = Registry::new();
    let mut s = String::new();
    let root = timer.enter("survival");
    let curve = if args.flag("compat-dense") {
        let solver = {
            let _g = timer.enter("build");
            match depth {
                Some(d) => MdpSolver::build_bounded(protocol, &inputs, max_configs, d),
                None => MdpSolver::build(protocol, &inputs, max_configs),
            }
        };
        let _ = writeln!(
            s,
            "{}: {} states (dense), target P{target}",
            protocol.name(),
            solver.size()
        );
        let _g = timer.enter("curve");
        solver.survival(protocol, target, kmax, 1e-13, 200_000)
    } else {
        let opts = CompactOptions {
            max_configs,
            max_depth: depth,
            target: Some(target),
            ..CompactOptions::default()
        };
        let mdp = {
            let _g = timer.enter("build");
            CompactMdp::build(protocol, &inputs, &opts)
                .map_err(|e| format!("{e} — unbounded protocols need --depth (see cil help)"))?
        };
        let stats = *mdp.stats();
        let _ = writeln!(
            s,
            "{}: {} canonical classes ({} orbit hits), target P{target}",
            protocol.name(),
            mdp.size(),
            stats.sym_hits
        );
        mdp.export_metrics(&registry);
        let _g = timer.enter("curve");
        mdp.survival(target, kmax, 1e-13, 200_000, jobs)
    };
    drop(root);
    registry.merge_spans(&timer.finish());
    write_metrics_out(args, &registry)?;
    if let Some(d) = depth {
        let _ = writeln!(
            s,
            "(depth-bounded at {d}: survival values are lower bounds on the \
             full space)"
        );
    }
    let _ = writeln!(
        s,
        "\nexact worst-case survival P[P{target} undecided after k of its steps]:"
    );
    for (k, v) in curve.iter().enumerate() {
        let _ = writeln!(s, "  k = {k:>2}: {}", fnum(*v));
    }
    Ok(s)
}

/// `cil survival` — exact worst-case survival curve for any protocol, on
/// the compact symmetry-reduced backend (or the dense solver with
/// `--compat-dense`). Protocols with infinite reachable spaces (`fig2`,
/// `fig3`, `n:<count>`) need `--depth`.
pub fn survival(args: &Args) -> Result<String, String> {
    with_protocol!(args, survival_one)
}

/// Parses a deterministic-rule name (shared by `theorem4` and `audit`).
fn parse_rule(name: &str) -> Result<DetRule, String> {
    match name {
        "always-adopt" => Ok(DetRule::AlwaysAdopt),
        "always-keep" => Ok(DetRule::AlwaysKeep),
        "adopt-if-greater" => Ok(DetRule::AdoptIfGreater),
        "alternate" => Ok(DetRule::Alternate),
        other => Err(format!("unknown rule '{other}' (see cil help)")),
    }
}

/// `cil theorem4` — run the impossibility construction.
pub fn theorem4(args: &Args) -> Result<String, String> {
    let rule = parse_rule(args.get_or("rule", "always-adopt"))?;
    let steps = args.get_u64("steps", 100_000)? as usize;
    let p = DetTwo::new(rule);
    match construct_infinite_schedule(&p, &[Val::A, Val::B], steps, 1_000_000) {
        Ok(demo) => Ok(format!(
            "victim: {}\nconstructed a {}-step schedule; decisions made: {}\n\
             first 30 schedule entries: {:?}\n\
             Theorem 4 in action: no decision is ever forced ✓",
            p.name(),
            demo.schedule.len(),
            if demo.anyone_decided {
                "SOME (bug!)"
            } else {
                "no decision"
            },
            &demo.schedule[..demo.schedule.len().min(30)]
        )),
        Err(partial) => Ok(format!(
            "construction got stuck after {} steps (protocol not a coordination \
             protocol from these inputs?)",
            partial.schedule.len()
        )),
    }
}

/// `cil elect` — leader-election rounds with the mutual-exclusion check.
pub fn elect(args: &Args) -> Result<String, String> {
    let n = args.get_u64("n", 3)? as usize;
    let rounds = args.get_u64("rounds", 10)?;
    if n < 2 {
        return Err("--n must be at least 2".into());
    }
    let p = NUnbounded::new(n);
    let mut log = MutexLog::new();
    let mut s = String::new();
    for round in 0..rounds {
        let (winner, out) = elect_leader(&p, RandomScheduler::new(round), round, 5_000_000);
        log.enter(round, winner);
        let _ = writeln!(
            s,
            "round {round:>3}: P{winner} enters the critical section ({} total steps)",
            out.total_steps
        );
    }
    let _ = writeln!(
        s,
        "\nmutual exclusion held across all {} rounds: {}",
        rounds,
        log.mutual_exclusion_holds()
    );
    Ok(s)
}

fn threads_one<P>(protocol: &P, args: &Args) -> Result<String, String>
where
    P: Protocol + Sync,
    P::Reg: Packable + Send + Sync,
{
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    if inputs.len() != protocol.processes() {
        return Err(format!(
            "--inputs: expected {} values, got {}",
            protocol.processes(),
            inputs.len()
        ));
    }
    let seed = args.get_u64("seed", 0)?;
    let out = run_on_threads(protocol, &inputs, seed, 5_000_000);
    Ok(format!(
        "{} on {} OS threads over AtomicU64 registers\n\
         decisions: {:?}   steps: {:?}   coin flips: {:?}\nagreed: {:?}\n",
        protocol.name(),
        protocol.processes(),
        out.decisions,
        out.steps,
        out.flips,
        out.agreed()
    ))
}

/// `cil threads` — run on real OS threads (word-packable protocols only).
pub fn threads(args: &Args) -> Result<String, String> {
    let spec = args.get_or("protocol", "two");
    match spec {
        "two" => threads_one(&TwoProcessor::new(), args),
        "fig2" => threads_one(&NUnbounded::three(), args),
        "fig2-1w1r" => threads_one(&NUnbounded1W1R::three(), args),
        "fig3" => threads_one(&ThreeBounded::new(), args),
        s if s.starts_with("n:") => {
            let n: usize = s[2..]
                .parse()
                .map_err(|_| format!("bad processor count in '{s}'"))?;
            threads_one(&NUnbounded::new(n), args)
        }
        other => Err(format!(
            "protocol '{other}' does not support the threads backend \
             (word-packable registers required)"
        )),
    }
}

/// Like `with_protocol!`, but for the controlled native backend: the
/// callee also receives the [`WordCodec`] matching the protocol's register
/// encoding, and the spec space additionally covers `det:<R>` (the
/// Theorem 4 deterministic victims) and `mutant:racy` (the planted
/// interleaving-sensitive consistency bug).
macro_rules! with_conc_protocol {
    ($args:expr, $f:ident) => {{
        let args = $args;
        let spec = conc_protocol_spec(args);
        let n_inputs = parse_inputs(args.get_or("inputs", ""))?.len();
        match spec {
            "two" => $f(&TwoProcessor::new(), &PackCodec, args),
            "fig2" => $f(&NUnbounded::three(), &PackCodec, args),
            "fig2-literal" => $f(&NUnbounded::literal_fig2(3), &PackCodec, args),
            "fig2-1w1r" => $f(&NUnbounded1W1R::three(), &PackCodec, args),
            "fig3" => $f(&ThreeBounded::new(), &PackCodec, args),
            "naive" => $f(&Naive::new(n_inputs.max(2)), &PackCodec, args),
            "mutant:racy" => $f(&RacyTwo::default(), &PackCodec, args),
            s if s.starts_with("det:") => {
                let rule = parse_rule(&s["det:".len()..])?;
                $f(&DetTwo::new(rule), &PackCodec, args)
            }
            s if s.starts_with("n:") => {
                let n: usize = s[2..]
                    .parse()
                    .map_err(|_| format!("bad processor count in '{s}'"))?;
                $f(&NUnbounded::new(n), &PackCodec, args)
            }
            s if s.starts_with("kvalued:") => {
                let k: u64 = s["kvalued:".len()..]
                    .parse()
                    .map_err(|_| format!("bad k in '{s}'"))?;
                // KReg has no uniform Packable encoding; the per-register
                // codec mirrors the audit packer (None -> 0, Some(v) -> v+1).
                if n_inputs <= 2 {
                    let p = KValued::new(TwoProcessor::new(), k);
                    let codec = KRegCodec::for_protocol(&p);
                    $f(&p, &codec, args)
                } else {
                    let p = KValued::new(NUnbounded::new(n_inputs), k);
                    let codec = KRegCodec::for_protocol(&p);
                    $f(&p, &codec, args)
                }
            }
            other => Err(CliFailure::Usage(format!(
                "unknown protocol '{other}' (see cil help)"
            ))),
        }
    }};
}

/// `cil conc stress|replay|shrink|explore` — controlled native-thread
/// concurrency testing: every register operation is a yield point,
/// scheduled by a seeded [`StrategySpec`] (or enumerated exhaustively by
/// the DPOR explorer).
///
/// # Errors
///
/// [`CliFailure::Audit`] (exit 1) when `conc replay` finds divergence or
/// trace anomalies, or when `conc explore` finds a safety violation or a
/// cross-check divergence; [`CliFailure::Usage`] (exit 2) otherwise.
pub fn conc(args: &Args) -> Result<String, CliFailure> {
    match args.pos(0) {
        Some("stress") => with_conc_protocol!(args, conc_stress_one),
        Some("replay") => conc_replay(args),
        Some("shrink") => with_conc_protocol!(args, conc_shrink_one),
        Some("explore") => with_conc_protocol!(args, conc_explore_one),
        Some(other) => Err(CliFailure::Usage(format!(
            "unknown conc subcommand '{other}' (one of: stress | replay | shrink | explore)"
        ))),
        None => Err(CliFailure::Usage(
            "conc needs a subcommand: cil conc stress|replay|shrink|explore (see cil help)".into(),
        )),
    }
}

/// The conc protocol spec: `--protocol <P>` everywhere, with the
/// positional after the subcommand (`cil conc explore <P>`) as fallback.
fn conc_protocol_spec(args: &Args) -> &str {
    args.get("protocol")
        .or_else(|| args.pos(1))
        .unwrap_or("two")
}

/// The serve protocol spec: the positional right after the subcommand
/// (`cil serve fig2`), with `--protocol <P>` as the explicit form.
fn serve_protocol_spec(args: &Args) -> &str {
    args.get("protocol")
        .or_else(|| args.pos(0))
        .unwrap_or("two")
}

/// Like [`with_conc_protocol!`] minus the planted mutant: dispatches the
/// serve engine over every built-in protocol spec with the word codec
/// matching its register encoding.
macro_rules! with_serve_protocol {
    ($args:expr, $f:ident) => {{
        let args = $args;
        let spec = serve_protocol_spec(args);
        let n_inputs = parse_inputs(args.get_or("inputs", ""))?.len();
        match spec {
            "two" => $f(&TwoProcessor::new(), &PackCodec, args),
            "fig2" => $f(&NUnbounded::three(), &PackCodec, args),
            "fig2-literal" => $f(&NUnbounded::literal_fig2(3), &PackCodec, args),
            "fig2-1w1r" => $f(&NUnbounded1W1R::three(), &PackCodec, args),
            "fig3" => $f(&ThreeBounded::new(), &PackCodec, args),
            "naive" => $f(&Naive::new(n_inputs.max(2)), &PackCodec, args),
            s if s.starts_with("det:") => {
                let rule = parse_rule(&s["det:".len()..])?;
                $f(&DetTwo::new(rule), &PackCodec, args)
            }
            s if s.starts_with("n:") => {
                let n: usize = s[2..]
                    .parse()
                    .map_err(|_| format!("bad processor count in '{s}'"))?;
                $f(&NUnbounded::new(n), &PackCodec, args)
            }
            s if s.starts_with("kvalued:") => {
                let k: u64 = s["kvalued:".len()..]
                    .parse()
                    .map_err(|_| format!("bad k in '{s}'"))?;
                if n_inputs <= 2 {
                    let p = KValued::new(TwoProcessor::new(), k);
                    let codec = KRegCodec::for_protocol(&p);
                    $f(&p, &codec, args)
                } else {
                    let p = KValued::new(NUnbounded::new(n_inputs), k);
                    let codec = KRegCodec::for_protocol(&p);
                    $f(&p, &codec, args)
                }
            }
            other => Err(format!("unknown protocol '{other}' (see cil help)")),
        }
    }};
}

/// `cil serve` — run consensus instances to decision at scale over the
/// hardware register backend and report throughput + latency percentiles.
pub fn serve(args: &Args) -> Result<String, String> {
    with_serve_protocol!(args, serve_one)
}

/// Picks the admission limit from `--instances` / `--duration` /
/// `--target-decisions` (mutually exclusive; default 100 000 instances).
fn serve_limit(args: &Args) -> Result<ServeLimit, String> {
    let given = ["instances", "duration", "target-decisions"]
        .iter()
        .filter(|k| args.get(k).is_some())
        .count();
    if given > 1 {
        return Err(
            "pick one of --instances, --duration, --target-decisions (they are \
             mutually exclusive admission limits)"
                .into(),
        );
    }
    if args.get("duration").is_some() {
        return Ok(ServeLimit::Duration(std::time::Duration::from_millis(
            args.get_u64("duration", 0)?,
        )));
    }
    if args.get("target-decisions").is_some() {
        return Ok(ServeLimit::Decisions(args.get_u64("target-decisions", 0)?));
    }
    Ok(ServeLimit::Instances(args.get_u64("instances", 100_000)?))
}

fn serve_one<P, C>(protocol: &P, codec: &C, args: &Args) -> Result<String, String>
where
    P: Protocol + Sync,
    P::State: Send,
    C: WordCodec<P::Reg>,
{
    let inputs = match args.get("inputs") {
        Some(text) => {
            let inputs = parse_inputs(text)?;
            if inputs.len() != protocol.processes() {
                return Err(format!(
                    "--inputs: expected {} values for {}, got {}",
                    protocol.processes(),
                    protocol.name(),
                    inputs.len()
                ));
            }
            inputs
        }
        // Default load: alternating inputs, so both decision values show up.
        None => (0..protocol.processes())
            .map(|i| if i % 2 == 0 { Val::A } else { Val::B })
            .collect(),
    };
    let limit = serve_limit(args)?;
    let root_seed = args.get_u64("seed", 0)?;
    let shards = args.get_u64("shards", 0)? as usize;
    let slots = args.get_u64("slots", cil_serve::DEFAULT_SLOTS as u64)? as usize;
    let batch = args.get_u64("batch", cil_serve::DEFAULT_BATCH)?;
    let max_steps = args.get_u64("max-steps", cil_serve::DEFAULT_MAX_STEPS)?;
    if slots == 0 || batch == 0 {
        return Err("--slots and --batch must be at least 1".into());
    }
    let timings = timings_flag(args)?;
    let registry = Registry::new();
    let observer = (args.flag("progress") || args.get("metrics-out").is_some()).then(|| {
        let mut obs = SweepObserver::with_prefix(&registry, "serve");
        if args.flag("progress") {
            let total = match limit {
                ServeLimit::Instances(n) => Some(n),
                _ => None,
            };
            obs = obs.with_progress(ProgressMeter::new("serve", total));
        }
        if timings {
            obs = obs.with_timing(&registry, "serve");
        }
        obs
    });
    let engine = ServeEngine::new(protocol, codec, &inputs, limit)
        .root_seed(root_seed)
        .shards(shards)
        .slots(slots)
        .batch(batch)
        .max_steps(max_steps);
    let report = engine.run_observed(observer.as_ref());
    report.export_decided_values(&registry);
    if timings {
        merge_sweep_spans(
            &registry,
            "serve",
            "serve.trial_ns",
            report.instances,
            report.elapsed_ns,
        );
    }
    write_metrics_out(args, &registry)?;
    let out_path = args.get_or("out", "BENCH_serve.json");
    if out_path != "none" {
        write_bench_serve(out_path, &protocol.name(), &report)?;
    }

    let q = |q: f64| report.latency.quantile(q).map(|b| b.mid()).unwrap_or(0);
    let mut s = String::new();
    let _ = writeln!(s, "protocol : {}", protocol.name());
    let _ = writeln!(
        s,
        "limit    : {:?}   root seed: {root_seed}   shards: {}   slots/shard: {slots}   batch: {batch}",
        limit, report.shards
    );
    let _ = writeln!(
        s,
        "\ninstances: {}   decided: {}   undecided: {}   violations: {}",
        report.instances,
        report.stats.decided,
        report.stats.undecided,
        report.stats.violations()
    );
    let _ = writeln!(
        s,
        "throughput: {} decisions/sec over {} ms",
        fnum(report.decisions_per_sec()),
        report.elapsed_ns / 1_000_000
    );
    let _ = writeln!(
        s,
        "latency  : p50 {} ns   p90 {} ns   p99 {} ns   (service: admission to decision)",
        q(0.5),
        q(0.9),
        q(0.99)
    );
    if !report.decided_values.is_empty() {
        let _ = write!(s, "decided  :");
        for (value, count) in &report.decided_values {
            let _ = write!(s, "  v{value}={count}");
        }
        let _ = writeln!(s);
    }
    if out_path != "none" {
        let _ = writeln!(s, "\nwrote {out_path}");
    }
    Ok(s)
}

/// Serializes a [`ServeReport`] to the `BENCH_serve.json` schema the CI
/// `serve-bench` job uploads and gates on.
fn write_bench_serve(path: &str, protocol: &str, report: &ServeReport) -> Result<(), String> {
    let q = |q: f64| report.latency.quantile(q).map(|b| b.mid()).unwrap_or(0);
    let mut values = String::from("{");
    for (i, (value, count)) in report.decided_values.iter().enumerate() {
        if i > 0 {
            values.push(',');
        }
        let _ = write!(values, "\"v{value}\":{count}");
    }
    values.push('}');
    let body = json::ObjWriter::new()
        .str("bench", "serve")
        .str("protocol", protocol)
        .num("instances", report.instances)
        .num("shards", report.shards as u64)
        .num("decided", report.stats.decided)
        .num("undecided", report.stats.undecided)
        .num("violations", report.stats.violations())
        .num("elapsed_ns", report.elapsed_ns)
        .raw(
            "decisions_per_sec",
            &format!("{:.1}", report.decisions_per_sec()),
        )
        .num("latency_p50_ns", q(0.5))
        .num("latency_p90_ns", q(0.9))
        .num("latency_p99_ns", q(0.99))
        .raw("decided_values", &values)
        .finish();
    std::fs::write(path, format!("{body}\n"))
        .map_err(|e| format!("cannot write --out file '{path}': {e}"))
}

/// Parses the shared knobs of `conc stress` and `conc shrink`.
fn conc_config(args: &Args) -> Result<StressConfig, CliFailure> {
    Ok(StressConfig {
        trials: args.get_u64("trials", 256)?,
        root_seed: args.get_u64("seed", 0)?,
        budget: args.get_u64("budget", 4096)?,
        jobs: args.get_u64("jobs", 0)? as usize,
        strategy: StrategySpec::parse(args.get_or("strategy", "random"))?,
        max_failure_samples: 5,
    })
}

fn conc_check_arity<P: Protocol>(protocol: &P, inputs: &[Val]) -> Result<(), CliFailure> {
    if inputs.len() != protocol.processes() {
        return Err(CliFailure::Usage(format!(
            "--inputs: expected {} values for {}, got {}",
            protocol.processes(),
            protocol.name(),
            inputs.len()
        )));
    }
    Ok(())
}

fn conc_stress_one<P, C>(protocol: &P, codec: &C, args: &Args) -> Result<String, CliFailure>
where
    P: Protocol + Sync,
    P::Reg: Send + Sync,
    C: WordCodec<P::Reg>,
{
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    conc_check_arity(protocol, &inputs)?;
    let cfg = conc_config(args)?;
    let metrics_out = args.get("metrics-out");
    let timings = timings_flag(args)?;
    let registry = Registry::new();
    let observer = (args.flag("progress") || metrics_out.is_some()).then(|| {
        let mut obs = SweepObserver::with_prefix(&registry, "conc");
        if args.flag("progress") {
            obs = obs.with_progress(ProgressMeter::new("conc", Some(cfg.trials)));
        }
        if timings {
            obs = obs.with_timing(&registry, "conc");
        }
        obs
    });
    let gate_timing = timings.then(|| GateTimingAgg::new(&registry, "conc.gate"));
    let stress_started = timings.then(std::time::Instant::now);
    let stats = stress_timed_with_codec(
        protocol,
        &inputs,
        codec,
        &cfg,
        observer.as_ref(),
        gate_timing.as_ref(),
    );
    if let Some(obs) = &observer {
        obs.finish();
    }
    if let Some(started) = stress_started {
        merge_sweep_spans(
            &registry,
            "stress",
            "conc.trial_ns",
            stats.trials,
            elapsed_ns(started),
        );
    }
    write_metrics_out(args, &registry)?;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "protocol : {}   (controlled native threads)",
        protocol.name()
    );
    let _ = writeln!(
        s,
        "strategy : {}   root seed: {}   budget: {}",
        cfg.strategy.label(),
        cfg.root_seed,
        cfg.budget
    );
    let _ = writeln!(
        s,
        "\ntrials: {}   decided: {}   undecided: {}   violations: {}",
        stats.trials,
        stats.decided,
        stats.undecided,
        stats.violations()
    );
    let _ = writeln!(
        s,
        "steps: mean {}   min {}   max {}",
        stats.mean().map(fnum).unwrap_or_else(|| "—".into()),
        stats.metric_min().unwrap_or(0),
        stats.metric_max().unwrap_or(0)
    );
    if let (Some(lo), Some(hi)) = (
        stats.decided_by_k.keys().next(),
        stats.decided_by_k.keys().next_back(),
    ) {
        let _ = writeln!(s, "decided-by-k support: {lo}..={hi} steps");
    }
    if stats.failures.is_empty() {
        let _ = writeln!(s, "\nno safety violations in {} trials ✓", stats.trials);
    } else {
        let _ = writeln!(s, "\nfailing trials (shrink with `cil conc shrink ...`):");
        for f in &stats.failures {
            let _ = writeln!(
                s,
                "  trial {:>6}  {:?}  shrink: cil conc shrink --protocol {} --inputs {} \
                 --strategy {} --seed {} --budget {} --trial {}",
                f.trial,
                f.kind,
                conc_protocol_spec(args),
                args.get_or("inputs", ""),
                cfg.strategy.label(),
                cfg.root_seed,
                cfg.budget,
                f.trial,
            );
        }
    }
    if let Some(path) = args.get("trace-json") {
        let trial = args.get_u64("trace-trial", 0)?;
        if trial >= cfg.trials {
            return Err(CliFailure::Usage(format!(
                "--trace-trial {trial} is out of range (the batch has {} trials)",
                cfg.trials
            )));
        }
        let (_, outcome) = rerun_trial_with_codec(protocol, &inputs, codec, &cfg, trial);
        let body = conc_capture_body(args, &cfg, trial, &outcome);
        std::fs::write(path, body)
            .map_err(|e| format!("cannot write --trace-json file '{path}': {e}"))?;
        let _ = writeln!(
            s,
            "trial {trial} captured: {} JSONL records -> {path}   \
             (verify: cil conc replay {path})",
            outcome.events.len()
        );
    }
    Ok(s)
}

/// Serializes one captured trial as a conc JSONL capture: a meta record
/// carrying everything `conc replay` needs, then the event stream.
fn conc_capture_body(
    args: &Args,
    cfg: &StressConfig,
    trial: u64,
    outcome: &cil_conc::ConcOutcome,
) -> String {
    let seed = cil_sim::SplitMix64::jump(cfg.root_seed, trial).next_u64();
    let meta = json::ObjWriter::new()
        .str("type", "meta")
        .str("mode", "conc")
        .str("protocol", conc_protocol_spec(args))
        .str("inputs", args.get_or("inputs", ""))
        .num("seed", seed)
        .num("budget", cfg.budget)
        .str("strategy", &cfg.strategy.label())
        .num("trial", trial)
        .num("root_seed", cfg.root_seed)
        .finish();
    format!("{meta}\n{}\n", outcome.events_jsonl())
}

/// `cil conc replay <file> [--audit]` — re-execute a conc capture's
/// recorded schedule under strict replay and verify the regenerated event
/// stream byte-for-byte. The controlled scheduler makes a run a pure
/// function of `(seed, schedule)`, so a successful replay certifies the
/// capture really is the deterministic record of that native execution.
/// With `--audit`, the capture is additionally checked to be a valid
/// serialization of atomic register operations (happens-before audit).
fn conc_replay(args: &Args) -> Result<String, CliFailure> {
    let path = args.pos(1).or_else(|| args.get("file")).ok_or_else(|| {
        "conc replay needs a capture file: cil conc replay <out.jsonl>".to_string()
    })?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let mut lines = text.lines();
    let meta_line = lines.next().ok_or_else(|| format!("'{path}' is empty"))?;
    let meta = json::parse_flat(meta_line).map_err(|e| format!("bad meta line: {e}"))?;
    if meta.get("type").and_then(Value::as_str) != Some("meta")
        || meta.get("mode").and_then(Value::as_str) != Some("conc")
    {
        return Err(CliFailure::Usage(format!(
            "'{path}' is not a conc capture (create one with \
             cil conc stress --trace-json)"
        )));
    }
    let meta_str = |k: &str| {
        meta.get(k)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("meta record missing '{k}'"))
    };
    let meta_num = |k: &str| {
        meta.get(k)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("meta record missing '{k}'"))
    };
    let protocol = meta_str("protocol")?;
    let inputs = meta_str("inputs")?;
    let seed = meta_num("seed")?;
    let budget = meta_num("budget")?;
    let captured: Vec<&str> = lines.collect();

    // Structural integrity first: a capture written by `--trace-json` is a
    // complete event stream that closes with the run's `span_end` record. A
    // file failing this (a truncated copy, a corrupted line) is a malformed
    // input — a usage error, exit 2 — not a verification verdict, so it is
    // rejected before the audit and replay stages can mistake it for a
    // divergent or non-serializable execution.
    for (i, line) in captured.iter().enumerate() {
        RunEvent::from_json(line).map_err(|e| {
            format!(
                "'{path}' is truncated or corrupt: bad event on line {}: {e}",
                i + 2
            )
        })?;
    }
    if !matches!(
        captured.last().map(|l| RunEvent::from_json(l)),
        Some(Ok(RunEvent::SpanEnd { ref name, .. })) if name == "conc"
    ) {
        return Err(CliFailure::Usage(format!(
            "'{path}' is truncated or corrupt: the capture does not end with \
             the run's closing span_end record"
        )));
    }

    // The recorded schedule: pids of the step events, in serialization
    // order (zero-based — the controlled scheduler's own notation).
    let mut schedule = Vec::new();
    for (i, line) in captured.iter().enumerate() {
        let ev = json::parse_flat(line).map_err(|e| format!("bad event on line {}: {e}", i + 2))?;
        if ev.get("type").and_then(Value::as_str) == Some("step") {
            let pid = ev
                .get("pid")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("step event on line {} has no pid", i + 2))?;
            schedule.push(pid.to_string());
        }
    }
    let tokens = [
        "conc".to_string(),
        "--protocol".into(),
        protocol.to_string(),
        "--inputs".into(),
        inputs.to_string(),
        "--seed".into(),
        seed.to_string(),
        "--budget".into(),
        budget.to_string(),
        "--schedule".into(),
        schedule.join(","),
    ];
    let inner = Args::parse(tokens, &[])?;

    let mut audit_section = String::new();
    if args.flag("audit") {
        let auditor = with_conc_protocol!(&inner, conc_auditor_one)?;
        let report = auditor.audit_jsonl(&captured.join("\n"))?;
        audit_section = report.render();
        if !report.ok() {
            return Err(CliFailure::Audit(format!(
                "trace '{path}' FAILED the happens-before audit:\n{audit_section}"
            )));
        }
    }

    let regenerated = with_conc_protocol!(&inner, conc_capture_one)?;
    let regen: Vec<&str> = regenerated.lines().collect();
    for (i, (a, b)) in captured.iter().zip(&regen).enumerate() {
        if a != b {
            return Err(CliFailure::Audit(format!(
                "conc replay DIVERGED at event {i}:\n  captured: {a}\n  replayed: {b}"
            )));
        }
    }
    if captured.len() != regen.len() {
        return Err(CliFailure::Audit(format!(
            "conc replay DIVERGED: {} captured events vs {} replayed",
            captured.len(),
            regen.len()
        )));
    }
    let mut s = format!(
        "replayed {protocol} under the controlled scheduler from '{path}' \
         (seed {seed}, {} steps)\n\
         {} events re-executed — trace matches byte-for-byte ✓\n",
        schedule.len(),
        captured.len()
    );
    if !audit_section.is_empty() {
        let _ = writeln!(s, "\nhappens-before audit of the capture:");
        s.push_str(&audit_section);
    }
    Ok(s)
}

/// Builds the happens-before auditor for a conc protocol spec (used by
/// `cil conc replay --audit`).
fn conc_auditor_one<P, C>(
    protocol: &P,
    _codec: &C,
    _args: &Args,
) -> Result<TraceAuditor, CliFailure>
where
    P: Protocol + Sync,
    P::Reg: Send + Sync,
    C: WordCodec<P::Reg>,
{
    Ok(TraceAuditor::for_protocol(protocol))
}

/// Re-runs a protocol under strict replay of a recorded schedule and
/// returns the regenerated JSONL event body (no meta line).
fn conc_capture_one<P, C>(protocol: &P, codec: &C, args: &Args) -> Result<String, CliFailure>
where
    P: Protocol + Sync,
    P::Reg: Send + Sync,
    C: WordCodec<P::Reg>,
{
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    conc_check_arity(protocol, &inputs)?;
    let seed = args.get_u64("seed", 0)?;
    let budget = args.get_u64("budget", 4096)?;
    let schedule = parse_conc_schedule(args.get_or("schedule", ""))?;
    let outcome = ControlledRun::new(protocol, &inputs)
        .seed(seed)
        .budget(budget)
        .capture(true)
        .run_with_codec(codec, Box::new(ReplaySchedule::strict(schedule)));
    Ok(outcome.events_jsonl())
}

/// Parses a comma-separated list of zero-based pids.
fn parse_conc_schedule(spec: &str) -> Result<Vec<usize>, String> {
    if spec.is_empty() {
        return Ok(Vec::new());
    }
    spec.split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad schedule entry '{t}'"))
        })
        .collect()
}

/// `cil conc shrink` — re-derive one failing stress trial and delta-debug
/// its schedule to a 1-minimal repro that still fails. Candidate schedules
/// are re-executed with best-effort replay, whose deterministic fallback
/// keeps truncated schedules runnable.
fn conc_shrink_one<P, C>(protocol: &P, codec: &C, args: &Args) -> Result<String, CliFailure>
where
    P: Protocol + Sync,
    P::Reg: Send + Sync,
    C: WordCodec<P::Reg>,
{
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    conc_check_arity(protocol, &inputs)?;
    let cfg = conc_config(args)?;
    let trial = args.get_u64("trial", 0)?;
    let (trial_seed, outcome) = rerun_trial_with_codec(protocol, &inputs, codec, &cfg, trial);
    let kind = classify(&outcome).outcome;
    if !matches!(kind, TrialOutcome::Inconsistent | TrialOutcome::Trivial) {
        return Err(CliFailure::Usage(format!(
            "trial {trial} of {} under {} (root seed {}) did not violate safety \
             ({kind:?}) — nothing to shrink",
            protocol.name(),
            cfg.strategy.label(),
            cfg.root_seed
        )));
    }
    let replay_fails = |candidate: &[usize]| {
        let out = ControlledRun::new(protocol, &inputs)
            .seed(trial_seed)
            .budget(cfg.budget)
            .run_with_codec(
                codec,
                Box::new(ReplaySchedule::best_effort(candidate.to_vec())),
            );
        classify(&out).outcome == kind
    };
    let minimal = ddmin_schedule(&outcome.schedule, replay_fails);
    let revalidated = replay_fails(&minimal);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "protocol : {}   strategy: {}   trial: {trial}   trial seed: {trial_seed}",
        protocol.name(),
        cfg.strategy.label()
    );
    let _ = writeln!(
        s,
        "failure  : {kind:?} after {} scheduled steps",
        outcome.schedule.len()
    );
    let _ = writeln!(
        s,
        "\n1-minimal repro: {} preemption points (removing any single entry \
         makes the failure vanish)",
        minimal.len()
    );
    let _ = writeln!(s, "  schedule: {minimal:?}");
    let _ = writeln!(
        s,
        "  re-validated under best-effort replay: still fails — {revalidated}"
    );
    if let Some(path) = args.get("trace-json") {
        let repro = ControlledRun::new(protocol, &inputs)
            .seed(trial_seed)
            .budget(cfg.budget)
            .capture(true)
            .run_with_codec(
                codec,
                Box::new(ReplaySchedule::best_effort(minimal.clone())),
            );
        let body = conc_capture_body(args, &cfg, trial, &repro);
        std::fs::write(path, body)
            .map_err(|e| format!("cannot write --trace-json file '{path}': {e}"))?;
        let _ = writeln!(
            s,
            "  minimal repro captured -> {path}   (verify: cil conc replay {path})"
        );
    }
    Ok(s)
}

/// Publishes a DPOR report's tallies under the `conc.dpor.*` metric names.
fn dpor_metrics(registry: &Registry, report: &DporReport) {
    registry
        .counter("conc.dpor.executions")
        .add(report.executions);
    registry.counter("conc.dpor.complete").add(report.complete);
    registry
        .counter("conc.dpor.truncated")
        .add(report.truncated);
    registry
        .counter("conc.dpor.sleep_blocked")
        .add(report.sleep_blocked);
    registry.counter("conc.dpor.steps").add(report.steps_total);
    registry
        .counter("conc.dpor.violations")
        .add(report.violations);
    registry
        .counter("conc.dpor.frontier_roots")
        .add(report.frontier_roots);
    if let Some(h) = &report.hunt {
        registry.counter("conc.dpor.hunt_runs").add(h.runs);
        registry.counter("conc.dpor.hunt_cut").add(h.cut);
    }
    registry
        .gauge("conc.dpor.depth_bound")
        .set(report.depth_bound);
    // Deliberately no `jobs` gauge: exports must be byte-identical at any
    // `--jobs`, so the worker count never enters the snapshot.
    registry
        .gauge("conc.dpor.decision_vectors")
        .set(report.decision_vectors.len() as u64);
    registry
        .gauge("conc.dpor.terminal_configs")
        .set(report.terminal_configs.len() as u64);
}

/// Renders a decision vector, `—` for an undecided processor.
fn fmt_decisions(decisions: &[Option<Val>]) -> String {
    let inner: Vec<String> = decisions
        .iter()
        .map(|d| match d {
            Some(v) => v.to_string(),
            None => "—".into(),
        })
        .collect();
    format!("[{}]", inner.join(", "))
}

/// `cil conc explore` — exhaustive DPOR exploration: enumerate every
/// interleaving and coin outcome up to `--depth-bound` on real threads,
/// with sleep-set partial-order reduction and a bounded-preemption hunt
/// prelude. A violation is delta-debugged to a 1-minimal repro and reported
/// via exit 1; a clean pass prints an exhaustive-to-depth certificate whose
/// execution digest is invariant at any `--jobs`.
fn conc_explore_one<P, C>(protocol: &P, codec: &C, args: &Args) -> Result<String, CliFailure>
where
    P: Protocol + Sync,
    P::Reg: Send + Sync,
    C: WordCodec<P::Reg>,
{
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    conc_check_arity(protocol, &inputs)?;
    let static_indep = if args.flag("static-indep") {
        // The lint layer's footprint table, walked with this run's inputs,
        // converted to the explorer's dependency-free table. Only a
        // complete (fully converged) walk over-approximates every native
        // execution, so a bounded walk is a usage error, not a silent
        // soundness hole.
        let auditor = Auditor::new(protocol).with_inputs(inputs.iter().copied());
        let table = cil_audit::footprints(&auditor);
        if !table.complete {
            return Err(CliFailure::Usage(format!(
                "--static-indep: the footprint walk of {} did not converge \
                 (coverage bounded); static independence needs a complete table",
                protocol.name()
            )));
        }
        let mut statics = StaticIndep::new(table.processes);
        for (pid, state, first, reachable) in table.flat_states() {
            statics.insert_state(pid, state, first, reachable);
        }
        Some(std::sync::Arc::new(statics))
    } else {
        None
    };
    let defaults = DporConfig::default();
    let cfg = DporConfig {
        depth_bound: args.get_u64("depth-bound", defaults.depth_bound)?,
        jobs: args.get_u64("jobs", 0)? as usize,
        naive: args.flag("naive"),
        hunt_preemptions: if args.flag("no-hunt") {
            None
        } else {
            defaults.hunt_preemptions
        },
        static_indep,
        ..defaults
    };
    let meter = args
        .flag("progress")
        .then(|| ProgressMeter::new("explore", None));
    let tick = |n: u64| {
        if let Some(m) = &meter {
            m.tick(n);
        }
    };
    let timings = timings_flag(args)?;
    let registry = Registry::new();
    let timing = timings.then(|| DporTiming::new(&registry, "conc.dpor"));
    let report = cil_conc::explore_timed_with_codec(
        protocol,
        &inputs,
        codec,
        &cfg,
        Some(&tick),
        timing.as_ref(),
    );
    if let Some(m) = &meter {
        m.finish();
    }
    dpor_metrics(&registry, &report);
    write_metrics_out(args, &registry)?;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "protocol : {}   (exhaustive native exploration)",
        report.protocol
    );
    let _ = writeln!(
        s,
        "depth bound: {}   jobs: {}   reduction: {}",
        report.depth_bound,
        if report.jobs == 0 {
            "auto".to_string()
        } else {
            report.jobs.to_string()
        },
        if report.naive {
            "none (naive enumeration)"
        } else if report.static_indep {
            "sleep-set + static footprints"
        } else {
            "sleep-set"
        }
    );
    if let Some(h) = &report.hunt {
        let _ = writeln!(
            s,
            "hunt (≤{} preemptions): {} runs, {} cut by the bound — {}",
            h.preemption_bound,
            h.runs,
            h.cut,
            if h.found { "VIOLATION FOUND" } else { "clean" }
        );
    }
    if report.exhaustive {
        let _ = writeln!(
            s,
            "\nexecutions: {} ({} complete, {} truncated at the bound)   sleep-blocked: {}",
            report.executions, report.complete, report.truncated, report.sleep_blocked
        );
        let _ = writeln!(
            s,
            "frontier subtrees: {}   total steps: {}",
            report.frontier_roots, report.steps_total
        );
        if report.static_indep {
            let _ = writeln!(
                s,
                "static footprints: {} misses{}",
                report.footprint_misses,
                if report.footprint_misses == 0 {
                    " (every observed access inside the static table) ✓"
                } else {
                    " — the table FAILED to over-approximate the execution ✗"
                }
            );
        }
        let depths = match (
            report.depth_histogram.keys().next(),
            report.depth_histogram.keys().next_back(),
        ) {
            (Some(lo), Some(hi)) => format!("{lo}..={hi}"),
            _ => "—".into(),
        };
        let _ = writeln!(
            s,
            "decision vectors: {}   terminal configs: {}   complete depths: {depths}",
            report.decision_vectors.len(),
            report.terminal_configs.len()
        );
        let _ = writeln!(
            s,
            "execution digest: {:016x}   (invariant at any --jobs)",
            report.digest
        );
    }
    if args.flag("cross-check") {
        if report.exhaustive {
            match cross_validate(protocol, &inputs, codec, &report) {
                Ok(check) => {
                    let paths = check
                        .sim_executions
                        .map(|n| format!(", {n} paths counted exactly"))
                        .unwrap_or_default();
                    let _ = writeln!(
                        s,
                        "cross-check vs the simulator configuration graph: OK — \
                         {} terminal configs, {} decision vectors{paths} ✓",
                        check.terminal_configs, check.decision_vectors
                    );
                }
                Err(e) => {
                    let _ = writeln!(s, "\ncross-check vs the simulator DIVERGED: {e}");
                    return Err(CliFailure::Audit(s));
                }
            }
        } else {
            let _ = writeln!(
                s,
                "cross-check skipped: the hunt found a violation before the \
                 exhaustive pass ran"
            );
        }
    }
    if report.certified() {
        let _ = writeln!(
            s,
            "\nexhaustive to depth {} — 0 violations ✓ (certificate)",
            report.depth_bound
        );
        return Ok(s);
    }
    let _ = writeln!(s, "\nviolations: {}", report.violations);
    if let Some(v) = report.violation_samples.first() {
        let _ = writeln!(
            s,
            "VIOLATION ({:?}): decisions {} after {} steps",
            v.kind,
            fmt_decisions(&v.decisions),
            v.total_steps
        );
        let _ = writeln!(s, "  schedule: {:?}", v.schedule);
        // Delta-debug the counterexample: best-effort replay of a candidate
        // schedule, same classification ⇒ still failing. The explorer found
        // the violation with forced coins, so for coin-flipping protocols a
        // schedule-only replay may not reproduce it — guarded below.
        let replay_fails = |candidate: &[usize]| {
            let out = ControlledRun::new(protocol, &inputs)
                .seed(0)
                .budget(cfg.depth_bound)
                .run_with_codec(
                    codec,
                    Box::new(ReplaySchedule::best_effort(candidate.to_vec())),
                );
            classify(&out).outcome == v.kind
        };
        if replay_fails(&v.schedule) {
            let minimal = ddmin_schedule(&v.schedule, replay_fails);
            let _ = writeln!(
                s,
                "  1-minimal repro (ddmin): {} preemption points (removing any \
                 single entry makes the failure vanish)",
                minimal.len()
            );
            let _ = writeln!(s, "  schedule: {minimal:?}");
            let _ = writeln!(
                s,
                "  re-validated under best-effort replay: still fails — {}",
                replay_fails(&minimal)
            );
        } else {
            let _ = writeln!(
                s,
                "  (schedule-only replay does not reproduce this counterexample — \
                 it depends on forced coin outcomes; sample kept unshrunk)"
            );
        }
    }
    Err(CliFailure::Audit(s))
}

/// Renders a flat-JSON value (string or number) for display.
fn value_text(v: &Value) -> String {
    match v.as_str() {
        Some(s) => s.to_string(),
        None => v.as_num().map(|n| n.to_string()).unwrap_or_default(),
    }
}

/// `cil report <file>` — offline analyzer for the artifacts the other
/// commands write: a `--trace-json` JSONL capture (simulator or conc) or a
/// `--metrics-out` canonical-JSON metrics snapshot.
///
/// Capture mode prints per-processor operation/coin tables, per-register
/// traffic, decision points, the span tree of the event stream (weighted by
/// contained events), and recorded violations — all derived from the
/// deterministic event stream, so the report is byte-reproducible. Metrics
/// mode renders every snapshot section, estimating log-histogram quantiles
/// with their bucket error bounds; `--merge <f2,f3,..>` folds further
/// snapshots in first (commutative). `--flame` switches the output to
/// folded-stack lines for flamegraph tooling (event counts in capture mode,
/// self-nanoseconds in metrics mode).
///
/// # Errors
///
/// [`CliFailure::Usage`] (exit 2) for unreadable or unrecognizable files
/// and for `--merge` shape mismatches (the error names the offending
/// metric).
pub fn report(args: &Args) -> Result<String, CliFailure> {
    let path = args.pos(0).or_else(|| args.get("file")).ok_or_else(|| {
        CliFailure::Usage(
            "report needs a file: cil report <capture.jsonl | metrics.json> \
             [--merge <f2,f3>] [--flame]"
                .into(),
        )
    })?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let first = text.lines().next().unwrap_or("");
    let is_capture = json::parse_flat(first)
        .ok()
        .is_some_and(|m| m.get("type").and_then(Value::as_str) == Some("meta"));
    if is_capture {
        if args.get("merge").is_some() {
            return Err(CliFailure::Usage(
                "--merge applies to metrics snapshots; captures cannot be merged".into(),
            ));
        }
        report_capture(path, &text, args).map_err(CliFailure::Usage)
    } else {
        report_metrics(path, &text, args)
    }
}

/// Per-processor tallies of a capture's event stream.
#[derive(Default, Clone)]
struct PidTally {
    reads: u64,
    writes: u64,
    choose: u64,
    transit: u64,
    /// `(value, own-step count when deciding, global step index)`.
    decided: Option<(u64, u64, u64)>,
}

/// Capture mode of [`report`]: tables over the JSONL event stream.
fn report_capture(path: &str, text: &str, args: &Args) -> Result<String, String> {
    let mut lines = text.lines();
    let meta_line = lines.next().ok_or_else(|| format!("'{path}' is empty"))?;
    let meta = json::parse_flat(meta_line).map_err(|e| format!("bad meta line: {e}"))?;
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(
            RunEvent::from_json(line).map_err(|e| format!("bad event on line {}: {e}", i + 2))?,
        );
    }

    let mut pids: std::collections::BTreeMap<usize, PidTally> = std::collections::BTreeMap::new();
    let mut regs: std::collections::BTreeMap<usize, (u64, u64)> = std::collections::BTreeMap::new();
    let mut violations: Vec<String> = Vec::new();
    // Span nesting: (path, self-events, total-events) per open frame. The
    // weights are contained event counts — deterministic, unlike wall time.
    let mut stack: Vec<(String, u64, u64)> = Vec::new();
    let mut spans = SpanTree::new();
    let mut total_steps = 0u64;
    for ev in &events {
        match ev {
            RunEvent::SpanBegin { name, .. } => {
                let span_path = match stack.last() {
                    Some((parent, _, _)) => format!("{parent}/{name}"),
                    None => name.clone(),
                };
                stack.push((span_path, 0, 0));
            }
            RunEvent::SpanEnd { .. } => {
                if let Some((span_path, self_ev, total_ev)) = stack.pop() {
                    spans.add(
                        &span_path,
                        SpanStat {
                            count: 1,
                            total_ns: total_ev,
                            self_ns: self_ev,
                        },
                    );
                    if let Some((_, _, parent_total)) = stack.last_mut() {
                        *parent_total += total_ev;
                    }
                }
            }
            other => {
                if let Some((_, self_ev, total_ev)) = stack.last_mut() {
                    *self_ev += 1;
                    *total_ev += 1;
                }
                match other {
                    RunEvent::Step { pid, op, reg, .. } => {
                        total_steps += 1;
                        let t = pids.entry(*pid).or_default();
                        let r = regs.entry(*reg).or_default();
                        match op {
                            cil_obs::OpKind::Read => {
                                t.reads += 1;
                                r.0 += 1;
                            }
                            cil_obs::OpKind::Write => {
                                t.writes += 1;
                                r.1 += 1;
                            }
                        }
                    }
                    RunEvent::CoinFlip { pid, stage, .. } => {
                        let t = pids.entry(*pid).or_default();
                        match stage {
                            cil_obs::CoinStage::Choose => t.choose += 1,
                            cil_obs::CoinStage::Transit => t.transit += 1,
                        }
                    }
                    RunEvent::Decision { index, pid, value } => {
                        let t = pids.entry(*pid).or_default();
                        if t.decided.is_none() {
                            t.decided = Some((*value, t.reads + t.writes, *index));
                        }
                    }
                    RunEvent::Violation {
                        index,
                        kind,
                        detail,
                    } => {
                        violations.push(format!("step {index}: {kind} — {detail}"));
                    }
                    _ => {}
                }
            }
        }
    }

    if args.flag("flame") {
        return Ok(spans.folded());
    }

    let meta_val = |k: &str| meta.get(k).map(value_text);
    let mut s = String::new();
    let _ = writeln!(s, "capture : {path}");
    let _ = writeln!(
        s,
        "mode    : {}   protocol: {}   inputs: {}   seed: {}",
        meta_val("mode").unwrap_or_else(|| "sim".into()),
        meta_val("protocol").unwrap_or_else(|| "?".into()),
        meta_val("inputs").unwrap_or_else(|| "?".into()),
        meta_val("seed").unwrap_or_else(|| "?".into()),
    );
    let _ = writeln!(s, "events  : {}   steps: {total_steps}", events.len());

    let _ = writeln!(
        s,
        "\nprocessor  reads  writes  coins(choose)  coins(transit)  decided"
    );
    for (pid, t) in &pids {
        let decided = match t.decided {
            Some((v, own, global)) => format!(
                "{} (after {own} of its steps, global step {global})",
                Val(v)
            ),
            None => "—".into(),
        };
        let _ = writeln!(
            s,
            "{:>9}  {:>5}  {:>6}  {:>13}  {:>14}  {decided}",
            format!("P{pid}"),
            t.reads,
            t.writes,
            t.choose,
            t.transit
        );
    }

    let _ = writeln!(s, "\nregister  reads  writes");
    for (reg, (r, w)) in &regs {
        let _ = writeln!(s, "{:>8}  {r:>5}  {w:>6}", format!("r{reg}"));
    }

    if !spans.is_empty() {
        let _ = writeln!(s, "\nspans (weights = contained events):");
        let _ = writeln!(s, "  count  total   self  path");
        for (span_path, stat) in spans.iter() {
            let _ = writeln!(
                s,
                "  {:>5}  {:>5}  {:>5}  {span_path}",
                stat.count, stat.total_ns, stat.self_ns
            );
        }
    }

    // Decided-by-k decay over this capture's processors: how many were
    // still undecided after k of their own steps, for each decision point.
    let mut decision_ks: Vec<u64> = pids
        .values()
        .filter_map(|t| t.decided.map(|(_, own, _)| own))
        .collect();
    decision_ks.sort_unstable();
    if !decision_ks.is_empty() {
        let n = pids.len() as u64;
        let _ = writeln!(s, "\ndecided-by-k (own steps):");
        let mut done = 0u64;
        for k in &decision_ks {
            done += 1;
            let _ = writeln!(
                s,
                "  k = {k:>3}: {done}/{n} decided, {} undecided",
                n - done
            );
        }
    }

    let decided_vals: Vec<u64> = pids
        .values()
        .filter_map(|t| t.decided.map(|(v, _, _)| v))
        .collect();
    let consistent = decided_vals.windows(2).all(|w| w[0] == w[1]);
    if violations.is_empty() {
        let _ = writeln!(
            s,
            "\nviolations: none recorded   consistent: {consistent} ✓"
        );
    } else {
        let _ = writeln!(s, "\nviolations: {}", violations.len());
        for v in &violations {
            let _ = writeln!(s, "  {v}");
        }
    }
    Ok(s)
}

/// Metrics mode of [`report`]: renders (optionally merged) snapshots.
fn report_metrics(path: &str, text: &str, args: &Args) -> Result<String, CliFailure> {
    let mut snap = MetricsSnapshot::from_json(text).map_err(|e| {
        CliFailure::Usage(format!(
            "'{path}' is neither a JSONL capture (no meta line) nor a \
             metrics snapshot: {e}"
        ))
    })?;
    let mut merged = 0usize;
    if let Some(list) = args.get("merge") {
        for f in list.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            let t = std::fs::read_to_string(f).map_err(|e| format!("cannot read '{f}': {e}"))?;
            let other = MetricsSnapshot::from_json(&t)
                .map_err(|e| format!("'{f}' is not a metrics snapshot: {e}"))?;
            snap.merge(&other)
                .map_err(|e| format!("cannot merge '{f}': {e}"))?;
            merged += 1;
        }
    }
    if args.flag("flame") {
        let mut tree = SpanTree::new();
        for (p, stat) in &snap.spans {
            tree.add(p, *stat);
        }
        return Ok(tree.folded());
    }
    let mut s = String::new();
    let _ = writeln!(
        s,
        "metrics snapshot: {path}{}",
        if merged > 0 {
            format!(" (+{merged} merged)")
        } else {
            String::new()
        }
    );
    if !snap.counters.is_empty() {
        let _ = writeln!(s, "\ncounters:");
        for (k, v) in &snap.counters {
            let _ = writeln!(s, "  {k} = {v}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(s, "\ngauges:");
        for (k, v) in &snap.gauges {
            let _ = writeln!(s, "  {k} = {v}");
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(s, "\nhistograms:");
        for (k, h) in &snap.histograms {
            let _ = writeln!(
                s,
                "  {k}: count {}  sum {}  bucket width {}  overflow {}",
                h.count(),
                h.sum,
                h.width,
                h.overflow
            );
        }
    }
    if !snap.log_histograms.is_empty() {
        let _ = writeln!(s, "\nlog histograms (quantile ± bucket error bound):");
        for (k, h) in &snap.log_histograms {
            let _ = writeln!(s, "  {k}: count {}  sum {}", h.count(), h.sum);
            for (label, q) in [
                ("p50", 0.50),
                ("p90", 0.90),
                ("p99", 0.99),
                ("p99.9", 0.999),
            ] {
                if let Some(b) = h.quantile(q) {
                    let _ = writeln!(s, "    {label:>5} = {} ±{}", b.mid(), b.err());
                }
            }
        }
    }
    if !snap.series.is_empty() {
        let _ = writeln!(s, "\nseries:");
        for (k, v) in &snap.series {
            let _ = writeln!(
                s,
                "  {k}: len {}  last {}",
                v.len(),
                v.last().copied().unwrap_or(0)
            );
        }
    }
    if !snap.spans.is_empty() {
        let _ = writeln!(s, "\nspans:");
        let _ = writeln!(s, "  count      total_ns       self_ns  path");
        for (p, stat) in &snap.spans {
            let _ = writeln!(
                s,
                "  {:>5}  {:>12}  {:>12}  {p}",
                stat.count, stat.total_ns, stat.self_ns
            );
        }
    }
    Ok(s)
}
