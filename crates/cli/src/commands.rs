//! The `cil` subcommands.

use crate::args::{parse_inputs, Args};
use cil_analysis::fnum;
use cil_core::apps::{elect_leader, MutexLog};
use cil_core::deterministic::{DetRule, DetTwo};
use cil_core::kvalued::KValued;
use cil_core::n_unbounded::NUnbounded;
use cil_core::n_unbounded_1w1r::NUnbounded1W1R;
use cil_core::naive::Naive;
use cil_core::three_bounded::ThreeBounded;
use cil_core::two::TwoProcessor;
use cil_mc::mdp::{MdpSolver, Objective};
use cil_mc::{construct_infinite_schedule, Explorer, LookaheadAdversary};
use cil_registers::Packable;
use cil_sim::{
    parse_schedule, run_on_threads, Adversary, Alternator, BoxedAdversary, FixedSchedule,
    LaggardFirst, LeaderFirst, Protocol, RandomScheduler, Rng as _, RoundRobin, Runner,
    SplitKeeper, TrialResult, TrialSweep, Val,
};
use std::fmt::Write as _;

/// Usage text.
pub fn help() -> String {
    "cil — Chor–Israeli–Li (PODC 1987) coordination protocols

USAGE:
  cil run       --protocol <P> --inputs a,b[,..] [--adversary <A>] [--seed N]
                [--max-steps N] [--trace]
  cil sweep     --protocol <P> --inputs a,b[,..] [--adversary <A>] [--trials N]
                [--seed N] [--max-steps N] [--jobs N]   parallel Monte-Carlo sweep
  cil check     --protocol <P> --inputs a,b[,..] [--depth N] [--max-configs N]
                [--jobs N]
  cil mdp       --inputs a,b [--kmax N]            exact Theorem 7 analysis
  cil theorem4  --rule <R> [--steps N]             construct the infinite schedule
  cil elect     [--n N] [--rounds N]               leader election / mutual exclusion
  cil threads   --protocol <P> --inputs ... [--seed N]   real OS threads
  cil help

PROTOCOLS <P>: two | fig2 | fig2-literal | fig2-1w1r | fig3 | naive
               | n:<count> | kvalued:<k>
ADVERSARIES <A>: round-robin | random | split-keeper | laggard | leader
               | alternator | lookahead:<h> | \"(2,3,3,2,1)\" (paper notation)
RULES <R>: always-adopt | always-keep | adopt-if-greater | alternate
JOBS: --jobs 0 (default) = all cores, 1 = serial; results are identical at
      every setting — only wall time changes.
"
    .to_string()
}

fn make_adversary<P: Protocol + 'static>(spec: &str, seed: u64) -> Result<BoxedAdversary<P>, String>
where
    P::State: 'static,
    P::Reg: 'static,
{
    Ok(match spec {
        "round-robin" => Box::new(RoundRobin::new()),
        "random" => Box::new(RandomScheduler::new(seed)),
        "split-keeper" => Box::new(SplitKeeper::new()),
        "laggard" => Box::new(LaggardFirst::new()),
        "leader" => Box::new(LeaderFirst::new()),
        "alternator" => Box::new(Alternator::new()),
        s if s.starts_with("lookahead:") => {
            let h: u32 = s["lookahead:".len()..]
                .parse()
                .map_err(|_| format!("bad lookahead horizon in adversary '{s}'"))?;
            Box::new(LookaheadAdversary::new(h))
        }
        s if s.starts_with('(') || s.chars().next().is_some_and(|c| c.is_ascii_digit()) => {
            let sched = parse_schedule(s, true)
                .map_err(|e| format!("bad adversary schedule: {e}"))?;
            Box::new(FixedSchedule::new(sched))
        }
        other => return Err(format!("unknown adversary '{other}' (see cil help)")),
    })
}

fn run_one<P: Protocol + 'static>(protocol: &P, args: &Args) -> Result<String, String> {
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    if inputs.len() != protocol.processes() {
        return Err(format!(
            "--inputs: expected {} values for {}, got {}",
            protocol.processes(),
            protocol.name(),
            inputs.len()
        ));
    }
    let seed = args.get_u64("seed", 0)?;
    let adversary = make_adversary::<P>(args.get_or("adversary", "random"), seed)?;
    let adv_name = adversary.name();
    let max_steps = args.get_u64("max-steps", 1_000_000)?;
    let out = Runner::new(protocol, &inputs, adversary)
        .seed(seed)
        .max_steps(max_steps)
        .record_trace(args.flag("trace"))
        .run();
    let mut s = String::new();
    let _ = writeln!(s, "protocol : {}", protocol.name());
    let _ = writeln!(s, "adversary: {adv_name}   seed: {seed}");
    if let Some(t) = &out.trace {
        let _ = writeln!(s, "\ntrace ({} steps):", t.len());
        let _ = write!(s, "{t}");
    }
    let _ = writeln!(
        s,
        "\ndecisions: {:?}   steps: {:?}   total: {}",
        out.decisions
            .iter()
            .map(|d| d.map(|v| v.to_string()).unwrap_or_else(|| "—".into()))
            .collect::<Vec<_>>(),
        out.steps,
        out.total_steps
    );
    let _ = writeln!(
        s,
        "consistent: {}   nontrivial: {}   halt: {:?}",
        out.consistent(),
        out.nontrivial(),
        out.halt
    );
    Ok(s)
}

macro_rules! with_protocol {
    ($args:expr, $f:ident) => {{
        let args = $args;
        let spec = args.get_or("protocol", "two");
        let n_inputs = parse_inputs(args.get_or("inputs", ""))?.len();
        match spec {
            "two" => $f(&TwoProcessor::new(), args),
            "fig2" => $f(&NUnbounded::three(), args),
            "fig2-literal" => $f(&NUnbounded::literal_fig2(3), args),
            "fig2-1w1r" => $f(&NUnbounded1W1R::three(), args),
            "fig3" => $f(&ThreeBounded::new(), args),
            "naive" => $f(&Naive::new(n_inputs.max(2)), args),
            s if s.starts_with("n:") => {
                let n: usize = s[2..]
                    .parse()
                    .map_err(|_| format!("bad processor count in '{s}'"))?;
                $f(&NUnbounded::new(n), args)
            }
            s if s.starts_with("kvalued:") => {
                let k: u64 = s["kvalued:".len()..]
                    .parse()
                    .map_err(|_| format!("bad k in '{s}'"))?;
                if n_inputs <= 2 {
                    $f(&KValued::new(TwoProcessor::new(), k), args)
                } else {
                    $f(&KValued::new(NUnbounded::new(n_inputs), k), args)
                }
            }
            other => Err(format!("unknown protocol '{other}' (see cil help)")),
        }
    }};
}

/// `cil run` — execute one run.
pub fn run(args: &Args) -> Result<String, String> {
    with_protocol!(args, run_one)
}

fn sweep_one<P: Protocol + Sync + 'static>(protocol: &P, args: &Args) -> Result<String, String>
where
    P::State: 'static,
    P::Reg: 'static,
{
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    if inputs.len() != protocol.processes() {
        return Err(format!(
            "--inputs: expected {} values for {}, got {}",
            protocol.processes(),
            protocol.name(),
            inputs.len()
        ));
    }
    let trials = args.get_u64("trials", 1_000)?;
    let root_seed = args.get_u64("seed", 0)?;
    let max_steps = args.get_u64("max-steps", 1_000_000)?;
    let jobs = args.get_u64("jobs", 0)? as usize;
    let spec = args.get_or("adversary", "random");
    // Validate the adversary spec once, up front, so a typo fails fast
    // instead of panicking inside a worker.
    make_adversary::<P>(spec, 0)?;
    let sweep = TrialSweep::new(trials).root_seed(root_seed).jobs(jobs);
    let effective = sweep.effective_jobs();
    let stats = sweep.run(|trial| {
        let adversary =
            make_adversary::<P>(spec, trial.seed).expect("adversary spec validated above");
        let out = Runner::new(protocol, &inputs, adversary)
            .seed(trial.seed)
            .max_steps(max_steps)
            .run();
        TrialResult::from_run(&out)
    });
    let mut s = String::new();
    let _ = writeln!(s, "protocol : {}", protocol.name());
    let _ = writeln!(
        s,
        "adversary: {spec}   root seed: {root_seed}   jobs: {effective}"
    );
    let _ = writeln!(
        s,
        "\ntrials: {}   decided: {}   undecided: {}   violations: {}",
        stats.trials,
        stats.decided,
        stats.undecided,
        stats.violations()
    );
    let _ = writeln!(
        s,
        "steps: mean {}   min {}   max {}",
        stats
            .mean()
            .map(fnum)
            .unwrap_or_else(|| "—".into()),
        stats.metric_min().unwrap_or(0),
        stats.metric_max().unwrap_or(0)
    );
    if let (Some(lo), Some(hi)) = (
        stats.decided_by_k.keys().next(),
        stats.decided_by_k.keys().next_back(),
    ) {
        let _ = writeln!(s, "decided-by-k support: {lo}..={hi} steps");
    }
    if stats.failures.is_empty() {
        let _ = writeln!(s, "\nno safety violations in {} trials ✓", stats.trials);
    } else {
        let _ = writeln!(s, "\nfailing trials (replay with `cil run ... --trace`):");
        for f in &stats.failures {
            let seed = cil_sim::SplitMix64::jump(root_seed, f.trial).next_u64();
            let _ = writeln!(
                s,
                "  trial {:>6}  {:?}  replay: cil run --protocol {} --inputs {} \
                 --adversary {spec} --seed {seed} --max-steps {max_steps} --trace",
                f.trial,
                f.kind,
                args.get_or("protocol", "two"),
                args.get_or("inputs", ""),
            );
        }
    }
    Ok(s)
}

/// `cil sweep` — parallel Monte-Carlo trial sweep; results are a pure
/// function of `(--seed, --trials)`, independent of `--jobs`.
pub fn sweep(args: &Args) -> Result<String, String> {
    with_protocol!(args, sweep_one)
}

fn check_one<P>(protocol: &P, args: &Args) -> Result<String, String>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
    P::Reg: Send + Sync,
{
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    if inputs.len() != protocol.processes() {
        return Err(format!(
            "--inputs: expected {} values, got {}",
            protocol.processes(),
            inputs.len()
        ));
    }
    let depth = args.get_u64("depth", 10)? as usize;
    let max_configs = args.get_u64("max-configs", 3_000_000)? as usize;
    let jobs = args.get_u64("jobs", 0)? as usize;
    let report = Explorer::new(protocol, &inputs)
        .max_depth(depth)
        .max_configs(max_configs)
        .jobs(jobs)
        .par_run();
    Ok(format!(
        "exhaustive check of {} to depth {}\n{} configurations explored \
         (complete: {})\nviolations: {}\n{}",
        protocol.name(),
        depth,
        report.explored,
        report.complete,
        report.violations.len(),
        if report.safe() {
            "consistency and nontriviality hold on every explored run ✓"
        } else {
            "VIOLATIONS FOUND — see above"
        }
    ))
}

/// `cil check` — exhaustive bounded safety check.
pub fn check(args: &Args) -> Result<String, String> {
    with_protocol!(args, check_one)
}

/// `cil mdp` — exact Theorem 7 analysis of the two-processor protocol.
pub fn mdp(args: &Args) -> Result<String, String> {
    let inputs = parse_inputs(args.get_or("inputs", "a,b"))?;
    if inputs.len() != 2 {
        return Err("--inputs: the mdp command analyses the 2-processor protocol".into());
    }
    let kmax = args.get_u64("kmax", 20)? as usize;
    let p = TwoProcessor::new();
    let solver = MdpSolver::build(&p, &inputs, 1_000_000);
    let steps = solver.expected_steps(&p, Objective::StepsOf(0), 1e-12, 100_000);
    let total = solver.expected_steps(&p, Objective::TotalSteps, 1e-12, 100_000);
    let curve = solver.survival(&p, 0, kmax, 1e-13, 200_000);
    let mut s = String::new();
    let _ = writeln!(s, "configuration space: {} states", solver.size());
    let _ = writeln!(
        s,
        "E[steps of P0 | optimal adaptive adversary] = {}  (paper Corollary: <= 10)",
        fnum(steps.value)
    );
    let _ = writeln!(
        s,
        "E[total steps | optimal adaptive adversary] = {}",
        fnum(total.value)
    );
    let _ = writeln!(s, "\nexact worst-case survival P[P0 undecided after k steps]:");
    for (k, v) in curve.iter().enumerate().step_by(2) {
        let _ = writeln!(s, "  k = {k:>2}: {}", fnum(*v));
    }
    Ok(s)
}

/// `cil theorem4` — run the impossibility construction.
pub fn theorem4(args: &Args) -> Result<String, String> {
    let rule = match args.get_or("rule", "always-adopt") {
        "always-adopt" => DetRule::AlwaysAdopt,
        "always-keep" => DetRule::AlwaysKeep,
        "adopt-if-greater" => DetRule::AdoptIfGreater,
        "alternate" => DetRule::Alternate,
        other => return Err(format!("unknown rule '{other}' (see cil help)")),
    };
    let steps = args.get_u64("steps", 100_000)? as usize;
    let p = DetTwo::new(rule);
    match construct_infinite_schedule(&p, &[Val::A, Val::B], steps, 1_000_000) {
        Ok(demo) => Ok(format!(
            "victim: {}\nconstructed a {}-step schedule; decisions made: {}\n\
             first 30 schedule entries: {:?}\n\
             Theorem 4 in action: no decision is ever forced ✓",
            p.name(),
            demo.schedule.len(),
            if demo.anyone_decided { "SOME (bug!)" } else { "no decision" },
            &demo.schedule[..demo.schedule.len().min(30)]
        )),
        Err(partial) => Ok(format!(
            "construction got stuck after {} steps (protocol not a coordination \
             protocol from these inputs?)",
            partial.schedule.len()
        )),
    }
}

/// `cil elect` — leader-election rounds with the mutual-exclusion check.
pub fn elect(args: &Args) -> Result<String, String> {
    let n = args.get_u64("n", 3)? as usize;
    let rounds = args.get_u64("rounds", 10)?;
    if n < 2 {
        return Err("--n must be at least 2".into());
    }
    let p = NUnbounded::new(n);
    let mut log = MutexLog::new();
    let mut s = String::new();
    for round in 0..rounds {
        let (winner, out) = elect_leader(&p, RandomScheduler::new(round), round, 5_000_000);
        log.enter(round, winner);
        let _ = writeln!(
            s,
            "round {round:>3}: P{winner} enters the critical section ({} total steps)",
            out.total_steps
        );
    }
    let _ = writeln!(
        s,
        "\nmutual exclusion held across all {} rounds: {}",
        rounds,
        log.mutual_exclusion_holds()
    );
    Ok(s)
}

fn threads_one<P>(protocol: &P, args: &Args) -> Result<String, String>
where
    P: Protocol + Sync,
    P::Reg: Packable + Send + Sync,
{
    let inputs = parse_inputs(args.get_or("inputs", ""))?;
    if inputs.len() != protocol.processes() {
        return Err(format!(
            "--inputs: expected {} values, got {}",
            protocol.processes(),
            inputs.len()
        ));
    }
    let seed = args.get_u64("seed", 0)?;
    let out = run_on_threads(protocol, &inputs, seed, 5_000_000);
    Ok(format!(
        "{} on {} OS threads over AtomicU64 registers\n\
         decisions: {:?}   steps: {:?}\nagreed: {:?}",
        protocol.name(),
        protocol.processes(),
        out.decisions,
        out.steps,
        out.agreed()
    ))
}

/// `cil threads` — run on real OS threads (word-packable protocols only).
pub fn threads(args: &Args) -> Result<String, String> {
    let spec = args.get_or("protocol", "two");
    match spec {
        "two" => threads_one(&TwoProcessor::new(), args),
        "fig2" => threads_one(&NUnbounded::three(), args),
        "fig2-1w1r" => threads_one(&NUnbounded1W1R::three(), args),
        "fig3" => threads_one(&ThreeBounded::new(), args),
        s if s.starts_with("n:") => {
            let n: usize = s[2..]
                .parse()
                .map_err(|_| format!("bad processor count in '{s}'"))?;
            threads_one(&NUnbounded::new(n), args)
        }
        other => Err(format!(
            "protocol '{other}' does not support the threads backend \
             (word-packable registers required)"
        )),
    }
}
