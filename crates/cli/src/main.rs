//! The `cil` binary: see [`cil_cli::dispatch`] and `cil help`.

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match cil_cli::dispatch(tokens) {
        Ok(text) => print!("{text}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
