//! The `cil` binary: see [`cil_cli::dispatch_full`] and `cil help`.

use cil_cli::CliFailure;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match cil_cli::dispatch_full(tokens) {
        Ok(text) => print!("{text}"),
        // Verification failures print their report on stdout and exit 1 so
        // scripts can distinguish "model violated" from "bad invocation".
        Err(failure @ CliFailure::Audit(_)) => {
            print!("{}", failure.message());
            std::process::exit(failure.exit_code());
        }
        Err(failure) => {
            eprintln!("error: {}", failure.message());
            std::process::exit(failure.exit_code());
        }
    }
}
