//! Tiny dependency-free argument parsing: `--key value` / `--flag` options
//! and positional arguments after a subcommand.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options, `--flag`
/// switches, and bare positional arguments (e.g. `cil replay out.jsonl`).
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parses the given tokens (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a message for a dangling `--key` with no value when the key
    /// is not a known boolean flag, or for tokens before the subcommand.
    pub fn parse<I: IntoIterator<Item = String>>(
        tokens: I,
        boolean_flags: &[&str],
    ) -> Result<Self, String> {
        let mut args = Args::default();
        let mut it = tokens.into_iter().peekable();
        match it.next() {
            Some(cmd) if !cmd.starts_with("--") => args.command = cmd,
            Some(other) => return Err(format!("expected a subcommand, got '{other}'")),
            None => return Ok(args),
        }
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                args.positionals.push(tok);
                continue;
            };
            let key = key.to_string();
            if boolean_flags.contains(&key.as_str()) {
                args.flags.push(key);
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{key} needs a value"))?;
                args.options.insert(key, value);
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Integer option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the option if the value fails to parse.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// The `i`-th bare positional argument after the subcommand.
    pub fn pos(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }
}

/// Parses an input list like `a,b,a` or `0,1,0` into values
/// (`a`/`b` map to 0/1).
///
/// # Errors
///
/// Returns a message naming the offending token.
pub fn parse_inputs(text: &str) -> Result<Vec<cil_sim::Val>, String> {
    text.split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| match t.trim() {
            "a" | "A" => Ok(cil_sim::Val::A),
            "b" | "B" => Ok(cil_sim::Val::B),
            other => other
                .parse::<u64>()
                .map(cil_sim::Val)
                .map_err(|_| format!("bad input value '{other}' (use a, b or integers)")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_sim::Val;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = Args::parse(toks("run --protocol fig2 --seed 7 --trace"), &["trace"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("protocol"), Some("fig2"));
        assert_eq!(a.get_u64("seed", 0).unwrap(), 7);
        assert!(a.flag("trace"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(toks("run --seed"), &[]).is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(toks("check"), &[]).unwrap();
        assert_eq!(a.get_or("protocol", "two"), "two");
        assert_eq!(a.get_u64("depth", 9).unwrap(), 9);
    }

    #[test]
    fn bad_integer_is_reported_with_its_option() {
        let a = Args::parse(toks("run --seed xyz"), &[]).unwrap();
        let err = a.get_u64("seed", 0).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
    }

    #[test]
    fn inputs_accept_letters_and_numbers() {
        assert_eq!(parse_inputs("a,b,a").unwrap(), vec![Val::A, Val::B, Val::A]);
        assert_eq!(parse_inputs("0,1,5").unwrap(), vec![Val(0), Val(1), Val(5)]);
        assert!(parse_inputs("a,x").is_err());
    }

    #[test]
    fn empty_args_have_no_command() {
        let a = Args::parse(Vec::<String>::new(), &[]).unwrap();
        assert!(a.command.is_empty());
    }

    #[test]
    fn bare_tokens_become_positionals() {
        let a = Args::parse(toks("replay out.jsonl --jobs 2 extra"), &[]).unwrap();
        assert_eq!(a.command, "replay");
        assert_eq!(a.pos(0), Some("out.jsonl"));
        assert_eq!(a.pos(1), Some("extra"));
        assert_eq!(a.pos(2), None);
        assert_eq!(a.get_u64("jobs", 0).unwrap(), 2);
    }
}
