//! # cil-cli — command-line interface to the CIL reproduction
//!
//! One binary, `cil`, exposing the protocols, the simulator, and the model
//! checker:
//!
//! ```text
//! cil run       --protocol fig2 --inputs a,b,a --adversary random --seed 7
//!               [--trace] [--trace-json out.jsonl]
//! cil audit     [two|all|mutant:width-overflow] [--json]
//! cil lint      [two|all|mutant:dead-write] [--json] [--footprints]
//! cil prove     two [--cert out.json] [--json] [--domain 0,1] [--max-configs N]
//! cil prove     --check-cert out.json
//! cil replay    out.jsonl
//! cil sweep     --protocol fig2 --inputs a,b,a --trials 10000 --seed 7 --jobs 4
//!               [--progress] [--metrics-out m.json] [--metrics-format json|openmetrics]
//!               [--timings]
//! cil check     --protocol fig3 --inputs a,b,a --depth 11 --jobs 4 [--stats]
//! cil mdp       --inputs a,b [--kmax 20]
//! cil survival  --protocol two --inputs a,b --target 0 --kmax 20
//! cil theorem4  --rule always-adopt --steps 100000
//! cil elect     --n 3 --rounds 10
//! cil threads   --protocol two --inputs a,b --seed 1
//! cil conc      stress --protocol two --inputs a,b --strategy pct --trials 256
//! cil conc      replay out.jsonl [--audit]
//! cil conc      shrink --protocol mutant:racy --inputs a,b --trial 3
//! cil conc      explore mutant:racy --inputs a,b [--depth-bound 24] [--jobs 4]
//!               [--naive] [--no-hunt] [--static-indep] [--cross-check]
//!               [--progress]
//! cil serve     two --instances 1000000 --shards 8 [--out BENCH_serve.json]
//! cil report    <capture.jsonl | metrics.json> [--merge f2,f3] [--flame]
//! cil help
//! ```
//!
//! Protocols: `two` (Fig. 1), `fig2` (§5, corrected rule), `fig2-literal`,
//! `fig2-1w1r`, `fig3` (§6 bounded), `naive`, `n:<count>`, `kvalued:<k>`.
//! Adversaries: `round-robin`, `random`, `split-keeper`, `laggard`,
//! `leader`, `alternator`, `lookahead:<h>`, or an explicit schedule like
//! `"(2,3,3,2,1)"` (one-based, as in the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse_inputs, Args};

/// Why a dispatch failed, mapped to distinct process exit codes by the
/// binary (documented in `cil help` under EXIT CODES).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliFailure {
    /// Usage, parse or I/O error — exit code 2, message on stderr.
    Usage(String),
    /// A verification failed: `cil audit` found model violations, or
    /// `cil replay` found trace anomalies / divergence — exit code 1, the
    /// report on stdout.
    Audit(String),
}

impl From<String> for CliFailure {
    fn from(message: String) -> Self {
        CliFailure::Usage(message)
    }
}

impl CliFailure {
    /// The failure text, regardless of kind.
    pub fn message(&self) -> &str {
        match self {
            CliFailure::Usage(m) | CliFailure::Audit(m) => m,
        }
    }

    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliFailure::Usage(_) => 2,
            CliFailure::Audit(_) => 1,
        }
    }
}

/// Entry point used by the binary: dispatches a full command line (without
/// the program name) and returns the text to print.
///
/// # Errors
///
/// [`CliFailure::Usage`] for unknown commands or malformed options;
/// [`CliFailure::Audit`] when an audit or replay verification fails.
pub fn dispatch_full<I: IntoIterator<Item = String>>(tokens: I) -> Result<String, CliFailure> {
    let args = Args::parse(
        tokens,
        &[
            "trace",
            "literal",
            "progress",
            "stats",
            "audit",
            "compat-dense",
            "naive",
            "no-hunt",
            "cross-check",
            "timings",
            "flame",
            "json",
            "footprints",
            "static-indep",
        ],
    )
    .map_err(CliFailure::Usage)?;
    let usage = |r: Result<String, String>| r.map_err(CliFailure::Usage);
    match args.command.as_str() {
        "run" => usage(commands::run(&args)),
        "replay" => commands::replay(&args),
        "audit" => commands::audit(&args),
        "lint" => commands::lint(&args),
        "prove" => commands::prove(&args),
        "sweep" => usage(commands::sweep(&args)),
        "check" => usage(commands::check(&args)),
        "mdp" => usage(commands::mdp(&args)),
        "survival" => usage(commands::survival(&args)),
        "theorem4" => usage(commands::theorem4(&args)),
        "elect" => usage(commands::elect(&args)),
        "threads" => usage(commands::threads(&args)),
        "conc" => commands::conc(&args),
        "serve" => usage(commands::serve(&args)),
        "report" => commands::report(&args),
        "" | "help" | "--help" | "-h" => Ok(commands::help()),
        other => Err(CliFailure::Usage(format!(
            "unknown command '{other}'\n\n{}",
            commands::help()
        ))),
    }
}

/// Like [`dispatch_full`] but with the failure flattened to its message —
/// kept for callers that do not distinguish exit codes.
///
/// # Errors
///
/// Returns the failure message for any [`CliFailure`].
pub fn dispatch<I: IntoIterator<Item = String>>(tokens: I) -> Result<String, String> {
    dispatch_full(tokens).map_err(|f| f.message().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_lists_all_commands() {
        let h = dispatch(toks("help")).unwrap();
        for c in [
            "run",
            "replay",
            "audit",
            "lint",
            "prove",
            "sweep",
            "check",
            "mdp",
            "survival",
            "theorem4",
            "elect",
            "threads",
            "conc",
            "serve",
            "report",
            "--jobs",
            "--instances",
            "--shards",
            "--target-decisions",
            "--duration",
            "--trace-json",
            "--metrics-out",
            "--metrics-format",
            "--timings",
            "--merge",
            "--flame",
            "--progress",
            "--stats",
            "--compat-dense",
            "--json",
            "--footprints",
            "--static-indep",
            "--cert",
            "--check-cert",
            "--domain",
            "--max-configs",
        ] {
            assert!(h.contains(c), "help missing {c}");
        }
    }

    #[test]
    fn unknown_command_reports_usage() {
        let e = dispatch(toks("frobnicate")).unwrap_err();
        assert!(e.contains("unknown command"));
        // The usage text must list every current subcommand.
        for c in [
            "run", "replay", "audit", "lint", "prove", "sweep", "check", "mdp", "survival",
            "theorem4", "elect", "threads", "conc", "serve", "report",
        ] {
            assert!(e.contains(c), "usage missing {c}");
        }
    }

    #[test]
    fn run_two_processor_end_to_end() {
        let out = dispatch(toks("run --protocol two --inputs a,b --seed 3")).unwrap();
        assert!(out.contains("decisions"), "{out}");
        assert!(out.contains("consistent: true"), "{out}");
    }

    #[test]
    fn run_with_trace_prints_steps() {
        let out = dispatch(toks("run --protocol two --inputs a,b --seed 1 --trace")).unwrap();
        assert!(out.contains("write"), "{out}");
        assert!(out.contains("read"), "{out}");
    }

    #[test]
    fn run_with_paper_schedule() {
        let out = dispatch(
            [
                "run",
                "--protocol",
                "fig2",
                "--inputs",
                "a,b,a",
                "--adversary",
                "(1,2,3,1,2,3)",
                "--seed",
                "2",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(out.contains("decisions"), "{out}");
    }

    #[test]
    fn run_every_protocol_spec() {
        for p in [
            "two",
            "fig2",
            "fig2-literal",
            "fig2-1w1r",
            "fig3",
            "n:4",
            "kvalued:8",
        ] {
            let inputs = match p {
                "two" | "kvalued:8" => "0,1",
                "n:4" => "a,b,a,b",
                _ => "a,b,a",
            };
            let out = dispatch(
                ["run", "--protocol", p, "--inputs", inputs, "--seed", "5"].map(String::from),
            )
            .unwrap_or_else(|e| panic!("{p}: {e}"));
            assert!(out.contains("decisions"), "{p}: {out}");
        }
        // naive may not terminate; give it a budget and accept both outcomes.
        let out = dispatch(
            [
                "run",
                "--protocol",
                "naive",
                "--inputs",
                "a,b,a",
                "--max-steps",
                "5000",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(out.contains("decisions"), "{out}");
    }

    #[test]
    fn check_reports_exploration() {
        let out = dispatch(toks("check --protocol two --inputs a,b")).unwrap();
        assert!(out.contains("configurations"), "{out}");
        assert!(out.contains("violations: 0"), "{out}");
    }

    #[test]
    fn check_is_jobs_invariant() {
        let serial = dispatch(toks("check --protocol two --inputs a,b --jobs 1")).unwrap();
        let par = dispatch(toks("check --protocol two --inputs a,b --jobs 4")).unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn sweep_reports_stats_and_is_jobs_invariant() {
        let serial = dispatch(toks(
            "sweep --protocol two --inputs a,b --trials 200 --seed 9 --jobs 1",
        ))
        .unwrap();
        assert!(serial.contains("trials: 200"), "{serial}");
        assert!(serial.contains("decided: 200"), "{serial}");
        assert!(serial.contains("violations: 0"), "{serial}");
        assert!(serial.contains("no safety violations"), "{serial}");
        for jobs in [2, 8] {
            let par = dispatch(toks(&format!(
                "sweep --protocol two --inputs a,b --trials 200 --seed 9 --jobs {jobs}"
            )))
            .unwrap();
            // Identical output except the reported worker count.
            let strip = |s: &str| {
                s.replace(&format!("jobs: {jobs}"), "jobs: X")
                    .replace("jobs: 1", "jobs: X")
            };
            assert_eq!(strip(&serial), strip(&par), "jobs = {jobs}");
        }
    }

    #[test]
    fn sweep_rejects_bad_adversary_before_spawning() {
        let e = dispatch(toks("sweep --protocol two --inputs a,b --adversary bogus")).unwrap_err();
        assert!(e.contains("adversary"), "{e}");
    }

    #[test]
    fn sweep_every_protocol_spec_is_clean() {
        for p in ["two", "fig2", "fig2-1w1r", "fig3", "n:4", "kvalued:4"] {
            let inputs = match p {
                "two" | "kvalued:4" => "0,1",
                "n:4" => "a,b,a,b",
                _ => "a,b,a",
            };
            let out = dispatch(toks(&format!(
                "sweep --protocol {p} --inputs {inputs} --trials 50"
            )))
            .unwrap_or_else(|e| panic!("{p}: {e}"));
            assert!(out.contains("violations: 0"), "{p}: {out}");
        }
    }

    #[test]
    fn mdp_reports_the_tight_bound() {
        let out = dispatch(toks("mdp --inputs a,b")).unwrap();
        assert!(out.contains("10.00"), "{out}");
        assert!(out.contains("survival"), "{out}");
    }

    #[test]
    fn mdp_compat_dense_reports_the_same_bound() {
        let compact = dispatch(toks("mdp --inputs a,b")).unwrap();
        let dense = dispatch(toks("mdp --inputs a,b --compat-dense")).unwrap();
        assert!(dense.contains("10.00"), "{dense}");
        // Everything below the state-count header is numerically identical.
        let body = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(body(&compact), body(&dense));
    }

    #[test]
    fn check_compat_dense_agrees_with_the_compact_default() {
        let compact = dispatch(toks("check --protocol two --inputs a,b")).unwrap();
        let dense = dispatch(toks("check --protocol two --inputs a,b --compat-dense")).unwrap();
        for out in [&compact, &dense] {
            assert!(out.contains("violations: 0"), "{out}");
            assert!(out.contains("consistency and nontriviality hold"), "{out}");
        }
        assert!(compact.contains("symmetry-reduced"), "{compact}");
    }

    #[test]
    fn survival_pins_the_corollary_curve() {
        let out = dispatch(toks("survival --protocol two --inputs a,b --kmax 6")).unwrap();
        // P0 cannot decide before its 4th step; from there the worst-case
        // survival decays by 3/4 every second step (Corollary of Theorem 7).
        assert!(out.contains("k =  0: 1"), "{out}");
        assert!(out.contains("k =  4: 0.750"), "{out}");
        assert!(out.contains("k =  6: 0.562"), "{out}");
    }

    #[test]
    fn survival_matches_compat_dense_and_jobs_are_invisible() {
        let compact = dispatch(toks(
            "survival --protocol kvalued:4 --inputs 0,3 --kmax 6 --jobs 8",
        ))
        .unwrap();
        let serial = dispatch(toks(
            "survival --protocol kvalued:4 --inputs 0,3 --kmax 6 --jobs 1",
        ))
        .unwrap();
        assert_eq!(compact, serial);
        let dense = dispatch(toks(
            "survival --protocol kvalued:4 --inputs 0,3 --kmax 6 --compat-dense",
        ))
        .unwrap();
        let curve = |s: &str| {
            s.lines()
                .filter(|l| l.trim_start().starts_with("k ="))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(curve(&compact), curve(&dense));
    }

    #[test]
    fn survival_depth_bounded_handles_unbounded_protocols() {
        let out = dispatch(toks(
            "survival --protocol fig2 --inputs a,b,a --target 1 --depth 6 --kmax 4",
        ))
        .unwrap();
        assert!(out.contains("depth-bounded"), "{out}");
        assert!(out.contains("k =  0: 1"), "{out}");
        // Without --depth the build must fail cleanly, pointing at --depth.
        let e = dispatch(toks(
            "survival --protocol fig2 --inputs a,b,a --max-configs 20000",
        ))
        .unwrap_err();
        assert!(e.contains("--depth"), "{e}");
    }

    #[test]
    fn theorem4_constructs_the_schedule() {
        let out = dispatch(toks("theorem4 --rule always-adopt --steps 5000")).unwrap();
        assert!(out.contains("5000"), "{out}");
        assert!(out.contains("no decision"), "{out}");
    }

    #[test]
    fn elect_runs_rounds() {
        let out = dispatch(toks("elect --n 3 --rounds 5")).unwrap();
        let round_lines = out.lines().filter(|l| l.starts_with("round")).count();
        assert_eq!(round_lines, 5, "{out}");
        assert!(out.contains("mutual exclusion"), "{out}");
    }

    #[test]
    fn threads_agree() {
        let out = dispatch(toks("threads --protocol two --inputs a,b --seed 2")).unwrap();
        assert!(out.contains("agreed"), "{out}");
    }

    #[test]
    fn serve_reports_throughput_and_is_shard_invariant() {
        let out_path =
            std::env::temp_dir().join(format!("cil-serve-test-{}.json", std::process::id()));
        let out_arg = out_path.to_str().unwrap();
        let runs: Vec<String> = [1, 4]
            .iter()
            .map(|shards| {
                dispatch(toks(&format!(
                    "serve two --instances 300 --seed 9 --shards {shards} --out {out_arg}"
                )))
                .unwrap()
            })
            .collect();
        assert!(runs[0].contains("instances: 300"), "{}", runs[0]);
        assert!(runs[0].contains("decided: 300"), "{}", runs[0]);
        assert!(runs[0].contains("violations: 0"), "{}", runs[0]);
        assert!(runs[0].contains("decisions/sec"), "{}", runs[0]);
        // The deterministic lines (instance stats, decided-value counts)
        // match at any shard count; throughput/latency are wall clock.
        let stable = |s: &String| {
            s.lines()
                .filter(|l| l.starts_with("instances:") || l.starts_with("decided  :"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(stable(&runs[0]), stable(&runs[1]));
        let bench = std::fs::read_to_string(&out_path).unwrap();
        let _ = std::fs::remove_file(&out_path);
        for key in [
            "\"bench\":\"serve\"",
            "\"decisions_per_sec\"",
            "\"latency_p50_ns\"",
            "\"latency_p99_ns\"",
            "\"decided_values\"",
        ] {
            assert!(
                bench.contains(key),
                "BENCH_serve.json missing {key}: {bench}"
            );
        }
    }

    #[test]
    fn serve_rejects_conflicting_limits() {
        let e = dispatch(toks("serve two --instances 10 --duration 5 --out none")).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn bad_adversary_is_reported() {
        let e = dispatch(toks("run --protocol two --inputs a,b --adversary bogus")).unwrap_err();
        assert!(e.contains("adversary"), "{e}");
    }

    #[test]
    fn input_arity_mismatch_is_reported() {
        let e = dispatch(toks("run --protocol two --inputs a,b,a")).unwrap_err();
        assert!(e.contains("inputs"), "{e}");
    }
}
