//! Criterion benches for the three-processor protocols: §5 (unbounded) vs
//! §6 (bounded) full-consensus latency, and the failing naive baseline under
//! a benign scheduler.

use cil_core::n_unbounded::NUnbounded;
use cil_core::naive::Naive;
use cil_core::three_bounded::ThreeBounded;
use cil_sim::{RandomScheduler, Runner, Val};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_three(c: &mut Criterion) {
    let mut g = c.benchmark_group("three_proc/full_consensus");
    let inputs = [Val::A, Val::B, Val::A];
    let mut seed = 0u64;
    let unbounded = NUnbounded::three();
    g.bench_function("fig2_unbounded", |b| {
        b.iter(|| {
            seed += 1;
            let out = Runner::new(&unbounded, &inputs, RandomScheduler::new(seed))
                .seed(seed)
                .run();
            black_box(out.total_steps)
        })
    });
    let bounded = ThreeBounded::new();
    g.bench_function("fig3_bounded", |b| {
        b.iter(|| {
            seed += 1;
            let out = Runner::new(&bounded, &inputs, RandomScheduler::new(seed))
                .seed(seed)
                .max_steps(10_000_000)
                .run();
            black_box(out.total_steps)
        })
    });
    let naive = Naive::new(3);
    g.bench_function("naive_baseline", |b| {
        b.iter(|| {
            seed += 1;
            let out = Runner::new(&naive, &inputs, RandomScheduler::new(seed))
                .seed(seed)
                .max_steps(100_000)
                .run();
            black_box(out.total_steps)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_three);
criterion_main!(benches);
