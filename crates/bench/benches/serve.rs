//! Throughput bench for `cil-serve`, the batched decision engine.
//!
//! Hand-written harness (not `criterion_group!`): every invocation —
//! including `cargo bench -p cil-bench --bench serve -- --test`, the CI
//! smoke mode — first proves the determinism contract at load (shard-count
//! invariance of the sweep digest and the decided-value distribution),
//! then measures decided instances per second and service-latency
//! percentiles and writes them to `BENCH_serve.json` at the repository
//! root. Smoke mode runs a reduced instance count and gates on a
//! conservative throughput floor; the full mode runs the paper-scale
//! million-instance load.

use cil_core::n_unbounded::NUnbounded;
use cil_core::two::TwoProcessor;
use cil_obs::json::ObjWriter;
use cil_serve::{ServeEngine, ServeLimit, ServeReport};
use cil_sim::threads::WordCodec;
use cil_sim::{PackCodec, Protocol, Val};

/// Throughput floor asserted in smoke mode (decisions/sec). Deliberately
/// far below the real rate so CI only fails on order-of-magnitude
/// regressions (an accidental allocation or lock on the step loop), not on
/// shared-runner noise.
const SMOKE_FLOOR: f64 = 50_000.0;

/// Throughput target for the full paper-scale run (decisions/sec).
const FULL_TARGET: f64 = 1_000_000.0;

struct LoadRow {
    name: &'static str,
    report: ServeReport,
}

fn run_load<P, C>(
    name: &'static str,
    protocol: &P,
    codec: &C,
    inputs: &[Val],
    instances: u64,
) -> LoadRow
where
    P: Protocol + Sync,
    P::State: Send,
    C: WordCodec<P::Reg>,
{
    // Determinism at load: a sharded run must produce exactly the
    // single-shard digest and decided-value counts on a small prefix.
    let probe = instances.min(2_000);
    let serial = ServeEngine::new(protocol, codec, inputs, ServeLimit::Instances(probe))
        .root_seed(1)
        .shards(1)
        .run();
    let sharded = ServeEngine::new(protocol, codec, inputs, ServeLimit::Instances(probe))
        .root_seed(1)
        .shards(4)
        .slots(16)
        .batch(8)
        .run();
    assert_eq!(
        serial.stats.digest(),
        sharded.stats.digest(),
        "{name}: sharded digest diverged from the serial run"
    );
    assert_eq!(
        serial.decided_values, sharded.decided_values,
        "{name}: sharded decided-value counts diverged"
    );

    let report = ServeEngine::new(protocol, codec, inputs, ServeLimit::Instances(instances))
        .root_seed(1)
        .run();
    assert_eq!(
        report.stats.violations(),
        0,
        "{name}: safety violations at load"
    );
    let q = |q: f64| report.latency.quantile(q).map(|b| b.mid()).unwrap_or(0);
    println!(
        "serve/{:<8} instances={:>8} shards={} decided={} rate={:>12.0}/s p50={}ns p99={}ns",
        name,
        report.instances,
        report.shards,
        report.stats.decided,
        report.decisions_per_sec(),
        q(0.5),
        q(0.99),
    );
    LoadRow { name, report }
}

/// Serializes the load rows to `BENCH_serve.json` at the repo root.
fn write_report(rows: &[LoadRow], smoke: bool) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let mut protocols = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            protocols.push(',');
        }
        let r = &row.report;
        let q = |q: f64| r.latency.quantile(q).map(|b| b.mid()).unwrap_or(0);
        let obj = ObjWriter::new()
            .str("protocol", row.name)
            .num("instances", r.instances)
            .num("shards", r.shards as u64)
            .num("decided", r.stats.decided)
            .num("undecided", r.stats.undecided)
            .num("elapsed_ns", r.elapsed_ns)
            .raw(
                "decisions_per_sec",
                &format!("{:.1}", r.decisions_per_sec()),
            )
            .num("latency_p50_ns", q(0.5))
            .num("latency_p90_ns", q(0.9))
            .num("latency_p99_ns", q(0.99))
            .finish();
        protocols.push_str(&obj);
    }
    protocols.push(']');
    let report = ObjWriter::new()
        .str("bench", "serve")
        .str("mode", if smoke { "smoke" } else { "full" })
        .raw("protocols", &protocols)
        .finish();
    std::fs::write(path, format!("{report}\n")).expect("write BENCH_serve.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (two_n, fig2_n, n4_n) = if smoke {
        (50_000, 5_000, 2_000)
    } else {
        (1_000_000, 100_000, 50_000)
    };
    let rows = [
        run_load(
            "two",
            &TwoProcessor::new(),
            &PackCodec,
            &[Val::A, Val::B],
            two_n,
        ),
        run_load(
            "fig2",
            &NUnbounded::three(),
            &PackCodec,
            &[Val::A, Val::B, Val::A],
            fig2_n,
        ),
        run_load(
            "n:4",
            &NUnbounded::new(4),
            &PackCodec,
            &[Val::A, Val::B, Val::A, Val::B],
            n4_n,
        ),
    ];
    write_report(&rows, smoke);

    let two_rate = rows[0].report.decisions_per_sec();
    assert!(
        two_rate >= SMOKE_FLOOR,
        "two-processor throughput {two_rate:.0}/s fell below the {SMOKE_FLOOR:.0}/s floor"
    );
    if smoke {
        println!("serve bench smoke mode: determinism + floor checks passed");
        return;
    }
    // The paper-scale bar: a million decided two-processor instances per
    // second on commodity hardware ("implementable in existing technology").
    if two_rate < FULL_TARGET {
        println!("WARNING: two-processor rate {two_rate:.0}/s below the {FULL_TARGET:.0}/s target");
    }
}
