//! Benches and CI smoke checks for the controlled native backend.
//!
//! Hand-written harness (not `criterion_group!`): the first thing every
//! invocation does — including `cargo bench -p cil-bench --bench conc --
//! --test`, the CI smoke mode — is run the seeded detection experiment
//! (PCT must find the planted interleaving mutant within a bounded budget,
//! the uniform random walk must find it far less often, and the failing
//! schedule must delta-debug down to the 12-step solo sprint) and write the
//! counts to `BENCH_conc.json` at the repository root. Timed loops only
//! run without `--test`.

use cil_conc::{
    classify, ddmin_schedule, explore, rerun_trial_with_codec, stress, ControlledRun, DporConfig,
    Pct, RacyTwo, RandomWalk, ReplaySchedule, StaticIndep, StrategySpec, StressConfig,
};
use cil_core::two::TwoProcessor;
use cil_obs::json::ObjWriter;
use cil_sim::{run_on_threads, PackCodec, TrialOutcome, Val};
use criterion::{black_box, Criterion};

/// Counts from the seeded detection experiment.
struct Smoke {
    trials: u64,
    budget: u64,
    pct_violations: u64,
    random_violations: u64,
    original_schedule_len: usize,
    shrunk_schedule_len: usize,
    native_mean_steps: f64,
}

/// The fixed experiment behind the report: mutant detection, shrinking,
/// and a clean two-processor batch for the throughput row.
fn check_detection() -> Smoke {
    let mutant = RacyTwo::default();
    let inputs = [Val::A, Val::B];
    let cfg = StressConfig {
        trials: 64,
        root_seed: 1,
        budget: 64,
        jobs: 0,
        strategy: StrategySpec::Pct { depth: 1 },
        max_failure_samples: 5,
    };
    let pct = stress(&mutant, &inputs, &cfg, None);
    assert!(
        pct.violations() >= 16,
        "PCT found only {}/64 violations of the planted mutant",
        pct.violations()
    );
    let rnd = stress(
        &mutant,
        &inputs,
        &StressConfig {
            strategy: StrategySpec::Random,
            ..cfg.clone()
        },
        None,
    );
    assert!(
        rnd.violations() * 8 <= pct.violations(),
        "detection contrast collapsed: random {} vs pct {}",
        rnd.violations(),
        pct.violations()
    );

    // Shrink the first failing schedule to its 1-minimal core.
    let first = pct.failures.first().expect("PCT finds the mutant");
    let (seed, outcome) = rerun_trial_with_codec(&mutant, &inputs, &PackCodec, &cfg, first.trial);
    let still_fails = |candidate: &[usize]| {
        let out = ControlledRun::new(&mutant, &inputs)
            .seed(seed)
            .budget(cfg.budget)
            .run(Box::new(ReplaySchedule::best_effort(candidate.to_vec())));
        classify(&out).outcome == TrialOutcome::Inconsistent
    };
    let minimal = ddmin_schedule(&outcome.schedule, still_fails);
    assert_eq!(
        minimal,
        vec![1usize; 12],
        "expected the 12-step solo sprint"
    );

    // A clean controlled batch of Fig. 1 for the mean-steps row.
    let two = stress(
        &TwoProcessor::new(),
        &inputs,
        &StressConfig {
            trials: 128,
            root_seed: 7,
            budget: 512,
            jobs: 0,
            strategy: StrategySpec::Random,
            max_failure_samples: 5,
        },
        None,
    );
    assert_eq!(two.violations(), 0);
    assert_eq!(two.decided, 128);

    Smoke {
        trials: cfg.trials,
        budget: cfg.budget,
        pct_violations: pct.violations(),
        random_violations: rnd.violations(),
        original_schedule_len: outcome.schedule.len(),
        shrunk_schedule_len: minimal.len(),
        native_mean_steps: two.mean().expect("decided trials exist"),
    }
}

/// Counts from the exhaustive DPOR experiment.
struct DporSmoke {
    depth_bound: u64,
    naive_executions: u64,
    sleep_executions: u64,
    static_executions: u64,
    static_misses: u64,
    reduction_ratio: f64,
    digest: u64,
    hunt_runs: u64,
    minimal_repro_len: usize,
    certificate: String,
}

/// The statically computed access footprints of `protocol`, converted to
/// the explorer's table (the same bridge `cil conc explore --static-indep`
/// uses).
fn static_indep_table<P: cil_sim::Protocol>(protocol: &P) -> StaticIndep {
    let auditor = cil_audit::Auditor::new(protocol);
    let table = cil_audit::footprints(&auditor);
    assert!(
        table.complete,
        "footprint walk must converge for {}",
        table.protocol
    );
    let mut statics = StaticIndep::new(table.processes);
    for (pid, state, first, reachable) in table.flat_states() {
        statics.insert_state(pid, state, first, reachable);
    }
    statics
}

/// The exhaustive half of the report: the planted mutant must fall to the
/// bounded-preemption hunt on every run with the golden 12-step repro, and
/// the clean two-processor protocol must certify exhaustively at the CI
/// depth bound with sleep sets pruning strictly below the naive count.
fn check_dpor() -> DporSmoke {
    let mutant = RacyTwo::default();
    let inputs = [Val::A, Val::B];
    let hunt = explore(&mutant, &inputs, &DporConfig::default(), None);
    let hunt_report = hunt.hunt.as_ref().expect("hunt prelude ran");
    assert!(hunt_report.found, "hunt must catch the planted mutant");
    let sample = hunt.violation_samples.first().expect("violation sample");
    let still_fails = |candidate: &[usize]| {
        let out = ControlledRun::new(&mutant, &inputs)
            .seed(0)
            .budget(hunt.depth_bound)
            .run(Box::new(ReplaySchedule::best_effort(candidate.to_vec())));
        classify(&out).outcome == TrialOutcome::Inconsistent
    };
    let minimal = ddmin_schedule(&sample.schedule, still_fails);
    assert_eq!(minimal, vec![1usize; 12], "golden solo-sprint repro");

    let p = TwoProcessor::new();
    let depth = 10;
    let no_hunt = DporConfig {
        depth_bound: depth,
        hunt_preemptions: None,
        ..DporConfig::default()
    };
    let sleep = explore(&p, &inputs, &no_hunt, None);
    let naive = explore(
        &p,
        &inputs,
        &DporConfig {
            naive: true,
            ..no_hunt
        },
        None,
    );
    assert!(sleep.certified() && naive.certified());
    assert!(
        sleep.executions < naive.executions,
        "sleep sets must prune: {} vs {}",
        sleep.executions,
        naive.executions
    );
    assert_eq!(sleep.decision_vectors, naive.decision_vectors);
    assert_eq!(sleep.terminal_configs, naive.terminal_configs);

    // Sleep sets strengthened with the static access footprints: identical
    // outcome sets and digest, never more executions, and every access the
    // scheduler observed inside the static table (zero misses).
    let statics = explore(
        &p,
        &inputs,
        &DporConfig {
            static_indep: Some(std::sync::Arc::new(static_indep_table(&p))),
            ..no_hunt
        },
        None,
    );
    assert!(statics.certified());
    assert_eq!(
        statics.digest, sleep.digest,
        "static indep must not change outcomes"
    );
    assert_eq!(statics.decision_vectors, sleep.decision_vectors);
    assert_eq!(statics.terminal_configs, sleep.terminal_configs);
    assert!(
        statics.executions <= sleep.executions,
        "static footprints must not weaken the reduction: {} vs {}",
        statics.executions,
        sleep.executions
    );
    assert_eq!(
        statics.footprint_misses, 0,
        "footprints must over-approximate"
    );

    DporSmoke {
        depth_bound: depth,
        naive_executions: naive.executions,
        sleep_executions: sleep.executions,
        static_executions: statics.executions,
        static_misses: statics.footprint_misses,
        reduction_ratio: sleep.executions as f64 / naive.executions as f64,
        digest: sleep.digest,
        hunt_runs: hunt_report.runs,
        minimal_repro_len: minimal.len(),
        certificate: format!("two: exhaustive to depth {depth}, 0 violations"),
    }
}

/// Serializes the experiment counts to `BENCH_conc.json` at the repo root.
fn write_report(s: &Smoke, d: &DporSmoke) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_conc.json");
    let report = ObjWriter::new()
        .str("bench", "conc")
        .str("mutant", "racy-two(rounds=6)")
        .num("trials", s.trials)
        .num("budget", s.budget)
        .num("pct_violations", s.pct_violations)
        .num("random_violations", s.random_violations)
        .num("original_schedule_len", s.original_schedule_len as u64)
        .num("shrunk_schedule_len", s.shrunk_schedule_len as u64)
        .raw(
            "two_proc_mean_steps",
            &format!("{:.4}", s.native_mean_steps),
        )
        .num("dpor_depth_bound", d.depth_bound)
        .num("dpor_naive_executions", d.naive_executions)
        .num("dpor_sleep_executions", d.sleep_executions)
        .num("dpor_static_executions", d.static_executions)
        .num("dpor_static_misses", d.static_misses)
        .raw("dpor_reduction_ratio", &format!("{:.4}", d.reduction_ratio))
        .str("dpor_digest", &format!("{:016x}", d.digest))
        .num("dpor_hunt_runs", d.hunt_runs)
        .num("dpor_minimal_repro_len", d.minimal_repro_len as u64)
        .str("dpor_certificate", &d.certificate)
        .finish();
    std::fs::write(path, format!("{report}\n")).expect("write BENCH_conc.json");
    println!("wrote {path}");
}

fn bench_conc(c: &mut Criterion) {
    let p = TwoProcessor::new();
    let inputs = [Val::A, Val::B];
    c.bench_function("conc/controlled_run_random_walk", |b| {
        b.iter(|| {
            let out = ControlledRun::new(&p, &inputs)
                .seed(7)
                .budget(512)
                .run(Box::new(RandomWalk::new(7)));
            black_box(out.total_steps)
        })
    });
    c.bench_function("conc/controlled_run_pct", |b| {
        b.iter(|| {
            let out = ControlledRun::new(&p, &inputs)
                .seed(7)
                .budget(512)
                .run(Box::new(Pct::new(7, 2, 3, 512)));
            black_box(out.total_steps)
        })
    });
    c.bench_function("conc/free_running_threads", |b| {
        b.iter(|| black_box(run_on_threads(&p, &inputs, 7, 5_000_000).steps.clone()))
    });
    let mutant = RacyTwo::default();
    c.bench_function("conc/shrink_failing_schedule", |b| {
        let cfg = StressConfig {
            trials: 64,
            root_seed: 1,
            budget: 64,
            jobs: 0,
            strategy: StrategySpec::Pct { depth: 1 },
            max_failure_samples: 5,
        };
        let pct = stress(&mutant, &inputs, &cfg, None);
        let first = pct.failures.first().expect("PCT finds the mutant");
        let (seed, outcome) =
            rerun_trial_with_codec(&mutant, &inputs, &PackCodec, &cfg, first.trial);
        b.iter(|| {
            let minimal = ddmin_schedule(&outcome.schedule, |candidate| {
                let out = ControlledRun::new(&mutant, &inputs)
                    .seed(seed)
                    .budget(cfg.budget)
                    .run(Box::new(ReplaySchedule::best_effort(candidate.to_vec())));
                classify(&out).outcome == TrialOutcome::Inconsistent
            });
            black_box(minimal.len())
        })
    });
    c.bench_function("conc/dpor_explore_two_sleep_d10", |b| {
        let cfg = DporConfig {
            depth_bound: 10,
            hunt_preemptions: None,
            ..DporConfig::default()
        };
        b.iter(|| black_box(explore(&p, &inputs, &cfg, None).executions))
    });
    c.bench_function("conc/dpor_hunt_mutant", |b| {
        b.iter(|| black_box(explore(&mutant, &inputs, &DporConfig::default(), None).violations))
    });
}

fn main() {
    let smoke = check_detection();
    let dpor = check_dpor();
    write_report(&smoke, &dpor);
    // `cargo bench ... -- --test` smoke mode: detection checks and the
    // JSON report only; skip the timed loops.
    if std::env::args().any(|a| a == "--test") {
        println!("conc bench smoke mode: detection and shrink checks passed");
        return;
    }
    let mut c = Criterion::default();
    bench_conc(&mut c);
}
