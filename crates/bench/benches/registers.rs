//! Criterion benches for the register substrate: serialized shared memory,
//! hardware cells, and the classical constructions.

use cil_registers::construct::multivalued::{unary_store, ClearOrder, UnaryReader, UnaryWriter};
use cil_registers::construct::StepMachine;
use cil_registers::taxonomy::FixedResolver;
use cil_registers::{HwCell, HwRegisterFile, Pid, ReaderSet, RegId, RegisterSpec, SharedMemory};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_shared_memory(c: &mut Criterion) {
    let specs = vec![
        RegisterSpec::new(RegId(0), "r0", Pid(0), ReaderSet::All, 0u64),
        RegisterSpec::new(RegId(1), "r1", Pid(1), ReaderSet::All, 0u64),
    ];
    let mut mem = SharedMemory::new(specs).unwrap();
    c.bench_function("registers/shared_memory_write_read", |b| {
        b.iter(|| {
            mem.write(Pid(0), RegId(0), black_box(7)).unwrap();
            black_box(*mem.read(Pid(1), RegId(0)).unwrap())
        })
    });
}

fn bench_hw(c: &mut Criterion) {
    let cell = HwCell::new(0);
    c.bench_function("registers/hw_cell_store_load", |b| {
        b.iter(|| {
            cell.store(black_box(9));
            black_box(cell.load())
        })
    });
    let file = HwRegisterFile::new(vec![RegisterSpec::new(
        RegId(0),
        "r",
        Pid(0),
        ReaderSet::All,
        0u64,
    )])
    .unwrap();
    c.bench_function("registers/hw_file_write_read", |b| {
        b.iter(|| {
            file.write(Pid(0), RegId(0), black_box(&3)).unwrap();
            black_box(file.read(Pid(1), RegId(0)).unwrap())
        })
    });
}

fn bench_construction(c: &mut Criterion) {
    c.bench_function("registers/multivalued_write_read_cycle", |b| {
        b.iter(|| {
            let mut store = unary_store(8, 0);
            let mut res = FixedResolver(0);
            let mut w = UnaryWriter::new(8, [5], ClearOrder::Descending);
            while !w.is_done() {
                store.clock += 1;
                w.step(&mut store, &mut res);
            }
            let mut r = UnaryReader::new(8, 1);
            while !r.is_done() {
                store.clock += 1;
                r.step(&mut store, &mut res);
            }
            black_box(r.history()[0].value)
        })
    });
}

criterion_group!(benches, bench_shared_memory, bench_hw, bench_construction);
criterion_main!(benches);
