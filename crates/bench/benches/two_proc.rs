//! Criterion benches for the two-processor protocol (§4): time per full
//! consensus under each scheduler, and per protocol step.

use cil_core::two::TwoProcessor;
use cil_sim::{Protocol, RandomScheduler, RoundRobin, Runner, SplitKeeper, Val};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_full_consensus(c: &mut Criterion) {
    let p = TwoProcessor::new();
    let mut g = c.benchmark_group("two_proc/full_consensus");
    let mut seed = 0u64;
    g.bench_function("round_robin", |b| {
        b.iter(|| {
            seed += 1;
            let out = Runner::new(&p, &[Val::A, Val::B], RoundRobin::new())
                .seed(seed)
                .run();
            black_box(out.total_steps)
        })
    });
    g.bench_function("random", |b| {
        b.iter(|| {
            seed += 1;
            let out = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(seed))
                .seed(seed)
                .run();
            black_box(out.total_steps)
        })
    });
    g.bench_function("split_keeper", |b| {
        b.iter(|| {
            seed += 1;
            let out = Runner::new(&p, &[Val::A, Val::B], SplitKeeper::new())
                .seed(seed)
                .run();
            black_box(out.total_steps)
        })
    });
    g.finish();
}

fn bench_transition_functions(c: &mut Criterion) {
    let p = TwoProcessor::new();
    let s = p.init(0, Val::A);
    c.bench_function("two_proc/choose", |b| {
        b.iter(|| black_box(p.choose(0, black_box(&s))))
    });
}

criterion_group!(benches, bench_full_consensus, bench_transition_functions);
criterion_main!(benches);
