//! Benches for the observability layer (`cil-obs`): the cost of the
//! timing telemetry when it is attached, and — the number that matters —
//! when it is not.
//!
//! Hand-written harness (not `criterion_group!`): every invocation —
//! including `cargo bench -p cil-bench --bench obs -- --test`, the CI
//! smoke mode — runs the ablation sweep three ways (no instrumentation,
//! disabled spans, full `--timings` telemetry), checks the log-histogram
//! quantile estimator against exact nearest-rank quantiles, and writes the
//! overhead ratios to `BENCH_obs.json` at the repository root. The
//! disabled-span run must stay within noise of the baseline (asserted at a
//! generous 15% to survive loaded CI runners); the enabled ratio is
//! reported for the <5% acceptance tracking. Timed micro-loops only run
//! without `--test`.

use cil_core::n_unbounded::NUnbounded;
use cil_obs::json::ObjWriter;
use cil_obs::{LogHistogram, Registry, SpanTimer};
use cil_sim::{RandomScheduler, Runner, SweepObserver, TrialResult, TrialSweep, Val};
use criterion::{black_box, Criterion};
use std::time::Instant;

/// Minimum-of-reps wall time of one closure, in nanoseconds. The minimum
/// filters scheduler noise far better than the mean on shared runners.
fn min_ns<F: FnMut()>(reps: usize, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let started = Instant::now();
        f();
        best = best.min(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    best
}

/// One ablation sweep: `trials` eight-processor consensus runs, serial,
/// with the given observer (None = the un-instrumented fast path). The
/// 8-processor protocol gives a realistically sized trial (tens of µs) so
/// the per-trial telemetry cost is measured against real work, not an
/// empty loop.
fn sweep(trials: u64, observer: Option<&SweepObserver>) -> u64 {
    let p = NUnbounded::new(8);
    let inputs: Vec<Val> = (0..8).map(|i| Val((i % 2) as u64)).collect();
    let stats = TrialSweep::new(trials)
        .root_seed(7)
        .jobs(1)
        .run_observed(observer, |trial| {
            let out = Runner::new(&p, &inputs, RandomScheduler::new(trial.seed))
                .seed(trial.seed)
                .max_steps(10_000_000)
                .run();
            TrialResult::from_run(&out).metric(out.total_steps)
        });
    stats.decided
}

/// Measured overhead of the telemetry layer on the ablation sweep.
struct Overhead {
    trials: u64,
    reps: usize,
    baseline_ns: u64,
    disabled_ns: u64,
    enabled_ns: u64,
}

impl Overhead {
    fn disabled_ratio(&self) -> f64 {
        self.disabled_ns as f64 / self.baseline_ns as f64
    }

    fn enabled_ratio(&self) -> f64 {
        self.enabled_ns as f64 / self.baseline_ns as f64
    }
}

/// Runs the three-way ablation: baseline, disabled spans (the zero-cost
/// claim), and full `--timings` telemetry (trial log-histogram + span
/// tree).
fn measure_overhead(trials: u64, reps: usize) -> Overhead {
    let baseline_ns = min_ns(reps, || {
        black_box(sweep(trials, None));
    });
    // Disabled spans: the exact code shape `--timings`-aware callers have,
    // with the timer off — enter/exit must compile down to a no-op check.
    let disabled_ns = min_ns(reps, || {
        let timer = SpanTimer::disabled();
        let _root = timer.enter("sweep");
        black_box(sweep(trials, None));
    });
    let enabled_ns = min_ns(reps, || {
        let registry = Registry::new();
        let observer = SweepObserver::new(&registry).with_timing(&registry, "sweep");
        let timer = SpanTimer::monotonic();
        {
            let _root = timer.enter("sweep");
            black_box(sweep(trials, Some(&observer)));
        }
        registry.merge_spans(&timer.finish());
        black_box(registry.snapshot());
    });
    Overhead {
        trials,
        reps,
        baseline_ns,
        disabled_ns,
        enabled_ns,
    }
}

/// One quantile-accuracy row: the estimator's bounds vs the exact
/// nearest-rank quantile of the observed stream.
struct QuantileRow {
    q: f64,
    exact: u64,
    lo: u64,
    hi: u64,
    mid: u64,
    err: u64,
}

/// Streams a deterministic heavy-tailed sequence (`i²`) through a
/// `sub_bits = 5` log-histogram and checks every estimated quantile bucket
/// contains the exact nearest-rank quantile, with the documented ≤ 2⁻⁵
/// relative bucket width.
fn check_quantiles() -> Vec<QuantileRow> {
    const N: u64 = 20_000;
    let hist = LogHistogram::new(5);
    let mut values: Vec<u64> = (1..=N).map(|i| i * i).collect();
    for &v in &values {
        hist.observe(v);
    }
    values.sort_unstable();
    let snap = hist.snapshot();
    let mut rows = Vec::new();
    for q in [0.50, 0.90, 0.99, 0.999] {
        let rank = ((q * N as f64).ceil() as usize).clamp(1, N as usize);
        let exact = values[rank - 1];
        let b = snap.quantile(q).expect("non-empty histogram");
        assert!(
            b.lo <= exact && exact < b.hi,
            "p{q}: exact {exact} outside estimated bucket [{}, {})",
            b.lo,
            b.hi
        );
        let rel = (b.hi - b.lo) as f64 / b.lo.max(1) as f64;
        assert!(
            rel <= 1.0 / 32.0 + 1e-9,
            "p{q}: bucket relative width {rel:.5} exceeds 2^-5"
        );
        rows.push(QuantileRow {
            q,
            exact,
            lo: b.lo,
            hi: b.hi,
            mid: b.mid(),
            err: b.err(),
        });
    }
    rows
}

/// Serializes the ablation and accuracy results to `BENCH_obs.json`.
fn write_report(o: &Overhead, quantiles: &[QuantileRow]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let mut rows = String::from("[");
    for (i, r) in quantiles.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        let obj = ObjWriter::new()
            .raw("q", &format!("{}", r.q))
            .num("exact", r.exact)
            .num("lo", r.lo)
            .num("hi", r.hi)
            .num("mid", r.mid)
            .num("err", r.err)
            .finish();
        rows.push_str(&obj);
    }
    rows.push(']');
    let report = ObjWriter::new()
        .str("bench", "obs")
        .num("trials", o.trials)
        .num("reps", o.reps as u64)
        .num("baseline_ns", o.baseline_ns)
        .num("disabled_spans_ns", o.disabled_ns)
        .num("enabled_telemetry_ns", o.enabled_ns)
        .raw("disabled_overhead", &format!("{:.4}", o.disabled_ratio()))
        .raw("enabled_overhead", &format!("{:.4}", o.enabled_ratio()))
        .raw("quantiles", &rows)
        .finish();
    std::fs::write(path, format!("{report}\n")).expect("write BENCH_obs.json");
    println!("wrote {path}");
}

/// Raw telemetry-primitive costs, timed loops (bench mode only).
fn bench_primitives(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    let log_hist = registry.log_histogram("bench.log_hist", 5);
    c.bench_function("obs/counter_inc_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                counter.inc();
            }
            black_box(counter.get())
        })
    });
    c.bench_function("obs/log_histogram_observe_x1000", |b| {
        b.iter(|| {
            for v in 0..1000u64 {
                log_hist.observe(v * v);
            }
            black_box(log_hist.snapshot().sum)
        })
    });
    c.bench_function("obs/span_enter_exit_disabled_x1000", |b| {
        let timer = SpanTimer::disabled();
        b.iter(|| {
            for _ in 0..1000 {
                let _g = timer.enter("a");
            }
            black_box(timer.enabled())
        })
    });
    c.bench_function("obs/span_enter_exit_enabled_x1000", |b| {
        b.iter(|| {
            let timer = SpanTimer::monotonic();
            for _ in 0..1000 {
                let _g = timer.enter("a");
            }
            black_box(timer.finish())
        })
    });
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (trials, reps) = if smoke { (800, 5) } else { (4_000, 10) };
    let quantiles = check_quantiles();
    let overhead = measure_overhead(trials, reps);
    println!(
        "obs/ablation trials={} reps={} baseline={}ns disabled={}ns ({:.4}x) enabled={}ns ({:.4}x)",
        overhead.trials,
        overhead.reps,
        overhead.baseline_ns,
        overhead.disabled_ns,
        overhead.disabled_ratio(),
        overhead.enabled_ns,
        overhead.enabled_ratio()
    );
    // The zero-cost claim: disabled spans must sit within noise of the
    // uninstrumented baseline (generous bar for loaded CI runners).
    assert!(
        overhead.disabled_ratio() <= 1.15,
        "disabled-span overhead {:.4}x exceeds the 1.15x noise bar",
        overhead.disabled_ratio()
    );
    write_report(&overhead, &quantiles);
    if smoke {
        println!("obs bench smoke mode: quantile + overhead checks passed");
        return;
    }
    let mut c = Criterion::default();
    bench_primitives(&mut c);
}
