//! Criterion benches for the observability layer (`cil-obs`): the cost of
//! instrumentation when it is attached, and — the number that matters —
//! when it is not. The executor's event hook and the sweep's observer hook
//! are `Option`s checked once per step/trial, so the disabled cases here
//! must sit within noise of the baselines; the acceptance bar for the
//! `cil-obs` PR is a disabled-instrumentation sweep within 3% of
//! pre-instrumentation wall time.

use cil_core::two::TwoProcessor;
use cil_obs::{EventSink, NullSink, ProgressMeter, Registry, RunEvent};
use cil_sim::{RandomScheduler, Runner, SweepObserver, TrialResult, TrialSweep, Val};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// One full consensus run: no instrumentation vs a [`NullSink`] event
/// stream. The delta is the entire cost of the per-step event formatting
/// (events are still constructed for a `NullSink`, so this bounds the
/// *enabled* overhead; the *disabled* overhead is the baseline itself).
fn bench_runner_events(c: &mut Criterion) {
    let p = TwoProcessor::new();
    let mut g = c.benchmark_group("obs/runner");
    let mut seed = 0u64;
    g.bench_function("baseline_no_sink", |b| {
        b.iter(|| {
            seed += 1;
            let out = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(seed))
                .seed(seed)
                .run();
            black_box(out.total_steps)
        })
    });
    g.bench_function("null_sink", |b| {
        b.iter(|| {
            seed += 1;
            let mut sink = NullSink;
            let out = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(seed))
                .seed(seed)
                .events(&mut sink)
                .run();
            black_box(out.total_steps)
        })
    });
    g.finish();
}

/// A small sweep: plain `run` vs `run_observed(None)` (must be identical —
/// the None path is what every un-instrumented caller now pays) vs a full
/// observer with metrics and a quiet progress meter.
fn bench_sweep_observer(c: &mut Criterion) {
    const TRIALS: u64 = 2_000;
    let p = TwoProcessor::new();
    let trial_fn = |trial: cil_sim::Trial| {
        let out = Runner::new(&p, &[Val::A, Val::B], RandomScheduler::new(trial.seed))
            .seed(trial.seed)
            .run();
        TrialResult::from_run(&out).metric(out.total_steps)
    };
    let mut g = c.benchmark_group("obs/sweep");
    g.bench_function("baseline_run", |b| {
        b.iter(|| black_box(TrialSweep::new(TRIALS).root_seed(7).jobs(1).run(trial_fn)))
    });
    g.bench_function("run_observed_none", |b| {
        b.iter(|| {
            black_box(
                TrialSweep::new(TRIALS)
                    .root_seed(7)
                    .jobs(1)
                    .run_observed(None, trial_fn),
            )
        })
    });
    g.bench_function("run_observed_metrics_and_progress", |b| {
        b.iter(|| {
            let registry = Registry::new();
            let observer = SweepObserver::new(&registry)
                .with_progress(ProgressMeter::new("bench", Some(TRIALS)).quiet());
            let stats = TrialSweep::new(TRIALS)
                .root_seed(7)
                .jobs(1)
                .run_observed(Some(&observer), trial_fn);
            black_box((stats, registry.snapshot()))
        })
    });
    g.finish();
}

/// Raw metric update costs: the atomics a fully-instrumented hot loop pays
/// per trial.
fn bench_metric_updates(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    let hist = registry.histogram("bench.hist", 1, 512);
    let mut g = c.benchmark_group("obs/metrics");
    g.bench_function("counter_inc_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                counter.inc();
            }
            black_box(counter.get())
        })
    });
    g.bench_function("histogram_observe_x1000", |b| {
        b.iter(|| {
            for v in 0..1000u64 {
                hist.observe(v % 64);
            }
            black_box(hist.snapshot().sum)
        })
    });
    g.bench_function("event_to_json", |b| {
        let ev = RunEvent::Step {
            index: 41,
            pid: 2,
            op: cil_obs::OpKind::Write,
            reg: 5,
            value: "Some(Val(3))".to_string(),
        };
        b.iter(|| black_box(ev.to_json()))
    });
    g.bench_function("null_sink_emit_x1000", |b| {
        let ev = RunEvent::Decision {
            index: 9,
            pid: 0,
            value: 1,
        };
        b.iter(|| {
            let mut sink = NullSink;
            for _ in 0..1000 {
                sink.emit(black_box(&ev));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_runner_events,
    bench_sweep_observer,
    bench_metric_updates
);
criterion_main!(benches);
