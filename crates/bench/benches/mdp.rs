//! Criterion benches for the model-checking machinery: exhaustive space
//! enumeration, MDP solving, and valence analysis.

use cil_core::deterministic::{DetRule, DetTwo};
use cil_core::two::TwoProcessor;
use cil_mc::explore::Explorer;
use cil_mc::mdp::{MdpSolver, Objective};
use cil_mc::valence::ValenceMap;
use cil_sim::Val;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_mc(c: &mut Criterion) {
    let p = TwoProcessor::new();
    c.bench_function("mc/explore_full_two_proc", |b| {
        b.iter(|| {
            let r = Explorer::new(&p, &[Val::A, Val::B]).run();
            black_box(r.explored)
        })
    });
    c.bench_function("mc/mdp_build_and_solve", |b| {
        b.iter(|| {
            let m = MdpSolver::build(&p, &[Val::A, Val::B], 100_000);
            let s = m.expected_steps(&p, Objective::StepsOf(0), 1e-10, 100_000);
            black_box(s.value)
        })
    });
    let victim = DetTwo::new(DetRule::AlwaysAdopt);
    c.bench_function("mc/valence_map_victim", |b| {
        b.iter(|| {
            let m = ValenceMap::build(&victim, &[Val::A, Val::B], 1_000_000);
            black_box(m.explored())
        })
    });
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
