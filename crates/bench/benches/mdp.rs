//! Benches for the model-checking machinery: exhaustive space
//! enumeration, dense and compact MDP solving, and valence analysis.
//!
//! Hand-written harness (not `criterion_group!`): the first thing every
//! invocation does — including `cargo bench -p cil-bench --bench mdp --
//! --test`, the CI smoke mode — is build the dense and compact state
//! spaces side by side, check the symmetry quotient actually pays (the
//! k-valued class space must be at least halved), and write the counts to
//! `BENCH_mdp.json` at the repository root. Timed loops only run without
//! `--test`.

use cil_core::deterministic::{DetRule, DetTwo};
use cil_core::kvalued::KValued;
use cil_core::two::TwoProcessor;
use cil_mc::explore::Explorer;
use cil_mc::mdp::{MdpSolver, Objective};
use cil_mc::valence::ValenceMap;
use cil_mc::{CompactExplorer, CompactMdp, CompactOptions, Symmetric};
use cil_obs::json::ObjWriter;
use cil_sim::Val;
use criterion::{black_box, Criterion};

/// Dense-vs-compact comparison row for one protocol instance.
struct SpaceRow {
    name: &'static str,
    dense: usize,
    compact: usize,
    transitions: usize,
    sym_hits: u64,
    expected_total: f64,
}

impl SpaceRow {
    fn ratio(&self) -> f64 {
        self.dense as f64 / self.compact as f64
    }
}

/// Builds both backends for one protocol and cross-checks the
/// total-steps value before recording the state counts.
fn row<P: Symmetric>(name: &'static str, p: &P, inputs: &[Val]) -> SpaceRow {
    let dense = MdpSolver::build(p, inputs, 2_000_000);
    let dv = dense.expected_steps(p, Objective::TotalSteps, 1e-12, 1_000_000);
    let compact = CompactMdp::build(p, inputs, &CompactOptions::default())
        .expect("finite protocol fits the default class budget");
    let cv = compact.expected_steps(Objective::TotalSteps, 1e-12, 1_000_000, 0);
    assert!(
        (dv.value - cv.value).abs() <= 1e-9,
        "{name}: dense E={} vs compact E={}",
        dv.value,
        cv.value
    );
    let stats = compact.stats();
    SpaceRow {
        name,
        dense: dense.size(),
        compact: compact.size(),
        transitions: stats.transitions,
        sym_hits: stats.sym_hits,
        expected_total: cv.value,
    }
}

/// Serializes the comparison rows to `BENCH_mdp.json` at the repo root.
fn write_report(rows: &[SpaceRow]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mdp.json");
    let mut protocols = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            protocols.push(',');
        }
        let obj = ObjWriter::new()
            .str("protocol", r.name)
            .num("dense_configs", r.dense as u64)
            .num("compact_classes", r.compact as u64)
            .num("transitions", r.transitions as u64)
            .num("sym_hits", r.sym_hits)
            .raw("reduction", &format!("{:.3}", r.ratio()))
            .raw("expected_total_steps", &format!("{:.6}", r.expected_total))
            .finish();
        protocols.push_str(&obj);
    }
    protocols.push(']');
    let report = ObjWriter::new()
        .str("bench", "mdp")
        .raw("protocols", &protocols)
        .finish();
    std::fs::write(path, format!("{report}\n")).expect("write BENCH_mdp.json");
    println!("wrote {path}");
}

/// Space comparison + invariants; runs in both smoke and bench mode.
fn check_spaces() {
    let rows = [
        row("two", &TwoProcessor::new(), &[Val::A, Val::B]),
        row(
            "kvalued:4",
            &KValued::new(TwoProcessor::new(), 4),
            &[Val(0), Val(3)],
        ),
        row(
            "kvalued:8",
            &KValued::new(TwoProcessor::new(), 8),
            &[Val(0), Val(7)],
        ),
    ];
    for r in &rows {
        println!(
            "mdp/space {:<10} dense={:>4} compact={:>4} reduction={:.3}x E[total]={:.4}",
            r.name,
            r.dense,
            r.compact,
            r.ratio(),
            r.expected_total
        );
    }
    // The acceptance bar for the symmetry quotient: the k-valued class
    // space must be at least halved relative to dense enumeration.
    let kv = &rows[1];
    assert!(
        kv.ratio() >= 2.0,
        "kvalued:4 reduction {:.3}x fell below the 2x bar",
        kv.ratio()
    );
    write_report(&rows);
}

fn bench_mc(c: &mut Criterion) {
    let p = TwoProcessor::new();
    c.bench_function("mc/explore_full_two_proc", |b| {
        b.iter(|| {
            let r = Explorer::new(&p, &[Val::A, Val::B]).run();
            black_box(r.explored)
        })
    });
    c.bench_function("mc/explore_compact_two_proc", |b| {
        b.iter(|| {
            let (r, _) = CompactExplorer::new(&p, &[Val::A, Val::B]).run_with_stats();
            black_box(r.explored)
        })
    });
    c.bench_function("mc/mdp_build_and_solve", |b| {
        b.iter(|| {
            let m = MdpSolver::build(&p, &[Val::A, Val::B], 100_000);
            let s = m.expected_steps(&p, Objective::StepsOf(0), 1e-10, 100_000);
            black_box(s.value)
        })
    });
    c.bench_function("mc/compact_build_and_solve", |b| {
        b.iter(|| {
            let opts = CompactOptions {
                target: Some(0),
                ..CompactOptions::default()
            };
            let m = CompactMdp::build(&p, &[Val::A, Val::B], &opts).unwrap();
            let s = m.expected_steps(Objective::StepsOf(0), 1e-10, 100_000, 0);
            black_box(s.value)
        })
    });
    let kv = KValued::new(TwoProcessor::new(), 8);
    c.bench_function("mc/compact_kvalued8_parallel_solve", |b| {
        let m = CompactMdp::build(&kv, &[Val(0), Val(7)], &CompactOptions::default()).unwrap();
        b.iter(|| {
            let s = m.expected_steps(Objective::TotalSteps, 1e-10, 100_000, 0);
            black_box(s.value)
        })
    });
    let victim = DetTwo::new(DetRule::AlwaysAdopt);
    c.bench_function("mc/valence_map_victim", |b| {
        b.iter(|| {
            let m = ValenceMap::build(&victim, &[Val::A, Val::B], 1_000_000);
            black_box(m.explored())
        })
    });
}

fn main() {
    check_spaces();
    // `cargo bench ... -- --test` smoke mode: cross-checks and the JSON
    // report only; skip the timed loops.
    if std::env::args().any(|a| a == "--test") {
        println!("mdp bench smoke mode: space checks passed");
        return;
    }
    let mut c = Criterion::default();
    bench_mc(&mut c);
}
