//! Criterion benches: n-processor scaling (EXP-7's latency counterpart) and
//! the Theorem 5 k-valued composite.

use cil_core::kvalued::KValued;
use cil_core::n_unbounded::NUnbounded;
use cil_core::two::TwoProcessor;
use cil_sim::{RandomScheduler, Runner, Val};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("n_proc/full_consensus");
    for n in [2usize, 4, 8, 16] {
        let p = NUnbounded::new(n);
        let inputs: Vec<Val> = (0..n).map(|i| Val((i % 2) as u64)).collect();
        let mut seed = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                seed += 1;
                let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                    .seed(seed)
                    .max_steps(10_000_000)
                    .run();
                black_box(out.total_steps)
            })
        });
    }
    g.finish();
}

fn bench_kvalued(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvalued/full_consensus");
    for k in [2u64, 8, 64] {
        let p = KValued::new(TwoProcessor::new(), k);
        let mut seed = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                seed += 1;
                let inputs = [Val(seed % k), Val((seed + 1) % k)];
                let out = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                    .seed(seed)
                    .run();
                black_box(out.total_steps)
            })
        });
    }
    g.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("variants/full_consensus");
    let inputs = [Val::A, Val::B, Val::A];
    let mut seed = 0u64;
    let w1r = cil_core::n_unbounded_1w1r::NUnbounded1W1R::three();
    g.bench_function("fig2_1w1r", |b| {
        b.iter(|| {
            seed += 1;
            let out = Runner::new(&w1r, &inputs, RandomScheduler::new(seed))
                .seed(seed)
                .run();
            black_box(out.total_steps)
        })
    });
    let bounded_k = KValued::new(cil_core::three_bounded::ThreeBounded::new(), 8);
    g.bench_function("kvalued8_over_fig3", |b| {
        b.iter(|| {
            seed += 1;
            let inputs = [Val(seed % 8), Val((seed + 3) % 8), Val((seed + 5) % 8)];
            let out = Runner::new(&bounded_k, &inputs, RandomScheduler::new(seed))
                .seed(seed)
                .max_steps(10_000_000)
                .run();
            black_box(out.total_steps)
        })
    });
    g.finish();
}

fn bench_lookahead(c: &mut Criterion) {
    let p = NUnbounded::three();
    let inputs = [Val::A, Val::B, Val::A];
    let mut seed = 0u64;
    c.bench_function("adversary/lookahead3_full_consensus", |b| {
        b.iter(|| {
            seed += 1;
            let out = Runner::new(&p, &inputs, cil_mc::LookaheadAdversary::new(3))
                .seed(seed)
                .max_steps(1_000_000)
                .run();
            black_box(out.total_steps)
        })
    });
}

criterion_group!(
    benches,
    bench_scaling,
    bench_kvalued,
    bench_variants,
    bench_lookahead
);
criterion_main!(benches);
