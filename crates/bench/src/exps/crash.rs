//! EXP-8 — §1: tolerance of t = n − 1 fail-stop crashes.
//!
//! The paper: "we account to fail/stop type errors of up to all but one of
//! the system processors", in contrast with the message-passing model where
//! no (even randomized) agreement survives ⌈n/2⌉ faults. Here all but one
//! processor crash at adversarially staggered early steps; the survivor
//! must still decide, consistently and nontrivially.

use cil_analysis::{fnum, Table};
use cil_core::n_unbounded::NUnbounded;
use cil_sim::{CrashPlan, RandomScheduler, Runner, TrialResult, TrialSweep, Val};

/// Runs the experiment and returns its markdown report.
pub fn run() -> String {
    let mut out = String::from("## EXP-8 — t = n − 1 crash tolerance (§1)\n");
    out.push_str(
        "\nAll processors except P0 crash at staggered adversarial steps (right \
         after their earliest writes). Decision rate of the survivor must be 100%.\n\n",
    );
    let runs = crate::sample(5_000);
    let mut t = Table::new([
        "n",
        "crashes t",
        "survivor decision rate",
        "mean survivor steps",
        "max survivor steps",
        "inconsistent runs",
    ]);
    for n in [2usize, 3, 5, 8] {
        let p = NUnbounded::new(n);
        let inputs: Vec<Val> = (0..n).map(|i| Val((i % 2) as u64)).collect();
        let registry = cil_obs::Registry::new();
        let observer = crate::progress().then(|| {
            cil_sim::SweepObserver::new(&registry)
                .with_progress(cil_obs::ProgressMeter::new("sweep", Some(runs)))
        });
        let sweep = TrialSweep::new(runs).jobs(crate::jobs());
        let stats = sweep.run_observed(observer.as_ref(), |trial| {
            let seed = trial.index;
            let mut plan = CrashPlan::none();
            for (j, pid) in (1..n).enumerate() {
                // Crash P1..P_{n-1} at steps 1, 3, 5, … — each right after
                // it may have performed its initial write.
                plan = plan.crash(pid, (2 * j + 1) as u64);
            }
            let o = Runner::new(&p, &inputs, RandomScheduler::new(seed))
                .seed(seed ^ 0xDEAD)
                .crashes(plan)
                .max_steps(5_000_000)
                .run();
            // The flag counts survivor decisions; the metric is the
            // survivor's own steps, not total work.
            TrialResult::from_run(&o)
                .metric(o.steps[0])
                .flag(o.decisions[0].is_some())
        });
        if let Some(obs) = &observer {
            obs.finish();
        }
        t.row([
            n.to_string(),
            (n - 1).to_string(),
            format!("{}/{runs}", stats.flagged),
            fnum(stats.mean().unwrap_or(0.0)),
            fnum(stats.metric_max().unwrap_or(0) as f64),
            stats.violations().to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: wait-freedom in action — the survivor always decides within a \
         few dozen of its own steps, with no waiting on crashed processors. This \
         separates the shared-register model from message passing, where > n/2 \
         faults kill even randomized agreement (Bracha–Toueg, cited by the paper).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn survivor_always_decides() {
        let r = super::run();
        // Every decision-rate cell is runs/runs.
        for line in r
            .lines()
            .filter(|l| l.chars().nth(2).is_some_and(|c| c.is_ascii_digit()))
        {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            if cells.len() > 4 && cells[3].contains('/') {
                let parts: Vec<&str> = cells[3].split('/').collect();
                assert_eq!(parts[0], parts[1], "survivor failed: {line}");
            }
        }
    }
}
