//! The experiments, one module per paper claim. Each `run()` returns a
//! markdown report fragment; see the crate docs for the index.

pub mod ablation;
pub mod crash;
pub mod impossibility;
pub mod kvalued;
pub mod naive;
pub mod registers;
pub mod scaling;
pub mod three_bounded;
pub mod three_unbounded;
pub mod two_proc;

/// Runs every experiment and concatenates the reports (the `exp_all`
/// binary; this regenerates the measured content of `EXPERIMENTS.md`).
pub fn run_all() -> String {
    let mut out = String::new();
    out.push_str(&impossibility::run());
    out.push_str(&two_proc::run());
    out.push_str(&kvalued::run());
    out.push_str(&three_unbounded::run());
    out.push_str(&naive::run());
    out.push_str(&three_bounded::run());
    out.push_str(&scaling::run());
    out.push_str(&crash::run());
    out.push_str(&registers::run());
    out.push_str(&ablation::run());
    out
}
