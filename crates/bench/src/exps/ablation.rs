//! EXP-10 — ablation study: why each design ingredient of the paper's
//! protocols is there.
//!
//! Each row removes exactly one ingredient and measures what breaks:
//!
//! | ingredient ablated | paper's words | expected failure |
//! |---|---|---|
//! | Fig. 2 retain-coin | "this new contents is only used in half of the time" (symmetry breaking) | termination under adaptive scheduling |
//! | Fig. 2 leader-self gap-2 (this repo's correction; the paper's literal rule) | Theorem 8 | consistency |
//! | Fig. 3 re-read-ahead-last | "the protocol works only if the value of the processor ahead is read last" | consistency |
//! | Fig. 3 T3 history rule | termination of unanimous lockstep | measured: ~1.5× slowdown only — the retain-coin still drifts the counters apart until T2 fires, so T3 is an accelerator rather than a necessity under these schedulers |
//! | Fig. 3 gap 2 → 1 | the "2 steps apart" rule | consistency |

use crate::sweep::sweep;
use cil_analysis::{fnum, Table};
use cil_core::n_unbounded::NUnbounded;
use cil_core::three_bounded::{BoundedOptions, ThreeBounded};
use cil_sim::{Protocol, RandomScheduler, RoundRobin, Runner, Val};

/// Runs the experiment and returns its markdown report.
pub fn run() -> String {
    let mut out = String::from("## EXP-10 — ablations: every ingredient earns its keep\n");
    out.push_str(
        "\nEach row deletes one design ingredient and reruns the safety/liveness \
         searches. `violations` = runs breaking consistency or nontriviality; \
         `undecided` = runs hitting the step budget. The faithful protocols sit \
         in the first rows as the control.\n\n",
    );
    let runs = crate::sample(30_000);
    let budget = 200_000u64;
    let mut t = Table::new([
        "protocol variant",
        "ingredient ablated",
        "runs",
        "violations",
        "undecided",
        "mean steps (decided)",
    ]);

    // ---- Fig. 2 family ----------------------------------------------------
    let faithful = NUnbounded::three();
    let row = bench_protocol(&faithful, runs, budget, Mix::Random);
    push(&mut t, "Fig. 2 (corrected)", "— (control)", runs, row);

    let literal = NUnbounded::literal_fig2(3);
    let row = bench_protocol(&literal, runs, budget, Mix::Random);
    push(
        &mut t,
        "Fig. 2 literal rule",
        "leader-self gap-2 restriction",
        runs,
        row,
    );

    let no_coin = NUnbounded::ablate_always_write(3);
    let row = bench_protocol(&no_coin, runs, budget, Mix::Random);
    push(
        &mut t,
        "Fig. 2 no retain-coin",
        "symmetry-breaking coin (random sched)",
        runs,
        row,
    );
    // The no-coin variant is fully deterministic, so by Theorem 4 a
    // blocking schedule exists — and it is the simplest one imaginable:
    // plain round-robin keeps the three processors in perfect lockstep,
    // views stay symmetric-split forever, and the num fields climb without
    // bound. The faithful protocol decides in tens of steps under the very
    // same schedule.
    let row = bench_protocol(&no_coin, runs / 10, budget, Mix::RoundRobin);
    push(
        &mut t,
        "Fig. 2 no retain-coin",
        "symmetry-breaking coin (round-robin lockstep)",
        runs / 10,
        row,
    );
    let row = bench_protocol(&NUnbounded::three(), runs / 10, budget, Mix::RoundRobin);
    push(
        &mut t,
        "Fig. 2 (corrected)",
        "— (control for lockstep row)",
        runs / 10,
        row,
    );

    // ---- Fig. 3 family ----------------------------------------------------
    let faithful = ThreeBounded::new();
    let row = bench_protocol(&faithful, runs, budget, Mix::Random);
    push(&mut t, "Fig. 3 (faithful)", "— (control)", runs, row);

    let no_reread = ThreeBounded::with_options(BoundedOptions {
        reread_ahead_last: false,
        ..BoundedOptions::default()
    });
    let row = bench_protocol(&no_reread, runs, budget, Mix::Random);
    push(
        &mut t,
        "Fig. 3 no re-read",
        "'ahead is read last' rule",
        runs,
        row,
    );

    let no_t3 = ThreeBounded::with_options(BoundedOptions {
        t3: false,
        ..BoundedOptions::default()
    });
    // T3's job is unanimous-input lockstep termination: use unanimous
    // inputs under round-robin, where only coin drift can save the run.
    let row = bench_unanimous(&no_t3, runs / 10, budget);
    push(
        &mut t,
        "Fig. 3 no T3 (unanimous, round-robin)",
        "T3 history rule",
        runs / 10,
        row,
    );
    let control = bench_unanimous(&faithful, runs / 10, budget);
    push(
        &mut t,
        "Fig. 3 faithful (unanimous, round-robin)",
        "— (control for T3 row)",
        runs / 10,
        control,
    );

    let gap1 = ThreeBounded::with_options(BoundedOptions {
        decide_gap: 1,
        ..BoundedOptions::default()
    });
    let row = bench_protocol(&gap1, runs, budget, Mix::Random);
    push(&mut t, "Fig. 3 gap 1", "the 2-steps-apart rule", runs, row);

    out.push_str(&t.render());
    out.push_str(
        "\nReading: deleting the literal-rule correction or shrinking the lead gap \
         produces outright safety violations; deleting the retain-coin or T3 \
         costs liveness (budget exhaustion) in exactly the schedules the paper's \
         prose warns about — the coinless variant is deterministic, so Theorem 4 \
         guarantees a blocking schedule, and plain round-robin lockstep already \
         is one (undecided = 100% there, while the faithful control decides in \
         tens of steps under the same schedule). The re-read rule's absence is \
         measured under random search; its failure modes, if any, may require a \
         crafted adversary — the paper asserts necessity without an example, and \
         we report what the search finds rather than presume.\n",
    );
    out
}

enum Mix {
    Random,
    RoundRobin,
}

struct Row {
    violations: u64,
    undecided: u64,
    mean_steps: f64,
}

fn bench_protocol<P: Protocol + Sync>(protocol: &P, runs: u64, budget: u64, mix: Mix) -> Row {
    let inputs = [Val::A, Val::B, Val::A];
    let r = sweep(
        runs,
        |seed| match mix {
            Mix::Random => Runner::new(protocol, &inputs, RandomScheduler::new(seed))
                .seed(seed ^ 0xAB1A7E)
                .max_steps(budget)
                .run(),
            Mix::RoundRobin => Runner::new(protocol, &inputs, RoundRobin::new())
                .seed(seed ^ 0xAB1A7E)
                .max_steps(budget)
                .run(),
        },
        |o| o.total_steps,
    );
    Row {
        violations: r.violations,
        undecided: r.undecided,
        mean_steps: r.stats.mean(),
    }
}

fn bench_unanimous(protocol: &ThreeBounded, runs: u64, budget: u64) -> Row {
    let inputs = [Val::A, Val::A, Val::A];
    let r = sweep(
        runs,
        |seed| {
            Runner::new(protocol, &inputs, RoundRobin::new())
                .seed(seed)
                .max_steps(budget)
                .run()
        },
        |o| o.total_steps,
    );
    Row {
        violations: r.violations,
        undecided: r.undecided,
        mean_steps: r.stats.mean(),
    }
}

fn push(t: &mut Table, variant: &str, ablated: &str, runs: u64, row: Row) {
    t.row([
        variant.to_string(),
        ablated.to_string(),
        runs.to_string(),
        row.violations.to_string(),
        row.undecided.to_string(),
        fnum(row.mean_steps),
    ]);
}

#[cfg(test)]
mod tests {
    #[test]
    fn controls_are_clean_and_report_renders() {
        let r = super::run();
        assert!(r.contains("— (control)"), "{r}");
        // The faithful control rows have zero violations AND zero undecided:
        // find them and check.
        for line in r.lines().filter(|l| l.contains("(control)")) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            assert_eq!(cells[4], "0", "control violated safety: {line}");
            assert_eq!(cells[5], "0", "control failed liveness: {line}");
        }
    }
}
