//! EXP-1 — §3, Theorem 4: impossibility of deterministic coordination.
//!
//! For each deterministic victim protocol: classify every reachable
//! configuration by exact valence (Lemmas 1–2), then run the mechanized
//! Theorem 4 construction for a million steps and verify that nobody ever
//! decides. The paper proves existence of the infinite schedule; this
//! experiment *constructs* it.

use cil_analysis::Table;
use cil_core::deterministic::{DetRule, DetTwo};
use cil_mc::bivalence::construct_infinite_schedule;
use cil_mc::config::Config;
use cil_mc::successors;
use cil_mc::valence::{Valence, ValenceMap};
use cil_sim::Val;
use std::collections::HashSet;

const STEPS: usize = 1_000_000;

/// Runs the experiment and returns its markdown report.
pub fn run() -> String {
    let mut out = String::from("## EXP-1 — Theorem 4: no deterministic coordination (§3)\n");
    out.push_str(
        "\nPaper claim: every consistent, nontrivial deterministic protocol has an \
         infinite schedule keeping every configuration bivalent — no processor ever \
         decides. Below, the Theorem 4 induction is executed for 10^6 steps against \
         four deterministic victims (from the split initial configuration I_ab).\n\n",
    );
    let mut t = Table::new([
        "victim rule",
        "reachable configs",
        "bivalent",
        "univalent",
        "blocked",
        "initial valence",
        "steps survived",
        "anyone decided?",
    ]);
    for rule in DetRule::ALL {
        let p = DetTwo::new(rule);
        let inputs = [Val::A, Val::B];
        let map = ValenceMap::build(&p, &inputs, 1_000_000);
        let census = census(&p, &map);
        let initial_valence = match map.valence(map.initial()) {
            Valence::Bivalent(..) => "bivalent",
            Valence::Univalent(_) => "univalent",
            Valence::Blocked => "blocked",
        };
        let demo = construct_infinite_schedule(&p, &inputs, STEPS, 1_000_000);
        let (survived, decided) = match &demo {
            Ok(d) => (d.schedule.len(), d.anyone_decided),
            Err(d) => (d.schedule.len(), d.anyone_decided),
        };
        t.row([
            rule.to_string(),
            census.total.to_string(),
            census.bivalent.to_string(),
            census.univalent.to_string(),
            census.blocked.to_string(),
            initial_valence.to_string(),
            survived.to_string(),
            if decided { "YES (bug!)" } else { "no" }.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: `steps survived` = 10^6 for every victim, with no decision ever \
         made — the mechanized Theorem 4 adversary never gets stuck, exactly as the \
         induction of Lemmas 2 and 3 predicts.\n",
    );
    out
}

struct Census {
    total: usize,
    bivalent: usize,
    univalent: usize,
    blocked: usize,
}

fn census(p: &DetTwo, map: &ValenceMap<DetTwo>) -> Census {
    let mut seen: HashSet<Config<DetTwo>> = HashSet::new();
    let mut stack = vec![map.initial().clone()];
    let mut c = Census {
        total: 0,
        bivalent: 0,
        univalent: 0,
        blocked: 0,
    };
    while let Some(cfg) = stack.pop() {
        if !seen.insert(cfg.clone()) {
            continue;
        }
        c.total += 1;
        match map.valence(&cfg) {
            Valence::Bivalent(..) => c.bivalent += 1,
            Valence::Univalent(_) => c.univalent += 1,
            Valence::Blocked => c.blocked += 1,
        }
        for pid in cfg.eligible(p) {
            for (_, s) in successors(p, &cfg, pid) {
                stack.push(s);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_all_victims_and_no_decisions() {
        let r = super::run();
        for rule in [
            "always-adopt",
            "always-keep",
            "adopt-if-greater",
            "alternate",
        ] {
            assert!(r.contains(rule), "missing {rule}");
        }
        assert!(!r.contains("YES (bug!)"));
        assert!(r.contains("1000000"));
    }
}
